//! The networked ccKVS node: a [`CcNode`] behind a TCP endpoint, served by
//! an epoll reactor.
//!
//! A [`NodeServer`] binds one listener and serves three kinds of
//! connections, distinguished by their hello frame (see [`crate::wire`]):
//! client request/response sessions, incoming one-way peer protocol links,
//! and incoming miss-path RPC links. Outgoing protocol traffic to each peer
//! flows through a per-peer outbox drained by the reactor under
//! credit-based flow control.
//!
//! Concurrency model (PR 7 — every frame handled on-shard, no worker
//! pool):
//!
//! * **Reactor shards** ([`ReactorConfig::shards`] threads) own every
//!   socket. Each connection is a nonblocking state machine: a streaming
//!   [`FrameDecoder`] assembles frames from whatever chunks the socket
//!   delivers, responses accumulate in a [`reactor::WriteBuf`] and drain on
//!   writability (backpressure instead of blocking writes). Thread count is
//!   `O(shards)`, independent of connection count.
//! * **Protocol deliveries and miss-path RPC service run inline on the
//!   shard** — they are lock-protected state updates that never wait on
//!   other messages, so a shard can never deadlock against itself.
//! * **Requests that must wait suspend as continuations** instead of
//!   parking a thread. A Lin write registers a commit hook
//!   ([`CcNode::on_committed`]) keyed off the per-node ack bitmasks; the
//!   shard that delivers the final acknowledgement fires the hook, which
//!   resumes the suspended connection (via [`ShardMsg::Resume`]) on its
//!   owning shard. Miss-path operations to a remote home shard travel as
//!   correlated [`Frame::RpcReq`]/[`Frame::RpcResp`] pairs multiplexed
//!   over the crash-surviving peer links; the pending-RPC table maps each
//!   correlation id back to its suspended connection. Hot-transition
//!   bounces (`MissRetry`, stalled cache entries) re-arm a timer-wheel
//!   tick and re-run the whole operation from the cache probe. A
//!   connection has at most one suspended operation and its queued frames
//!   wait, so responses stay in request order and session program order
//!   is preserved.
//! * **Admin reconfiguration frames** run on two persistent service
//!   threads instead of ephemeral spawns: `Evict` on the admin service
//!   thread (eviction may wait for a pending Lin write to commit, which
//!   only the shards can deliver), `FlipEpoch` on the coordinator's epoch
//!   applier (whose nested evict-everywhere sweep calls back into the
//!   admin thread — two lanes, so the nesting cannot deadlock). Both
//!   resume the requesting connection like any other continuation.
//!
//! The per-peer credit window (§6.4) is driven by readiness events: a
//! stalled peer writer re-arms a 1 ms timer-wheel tick instead of parking a
//! thread, and credit returns owed to the peer still go out while stalled —
//! which keeps symmetric saturation deadlock-free exactly as the
//! thread-per-peer implementation did. Teardown drains stalled peers
//! without credits.
//!
//! Crash recovery (PR 5 — peers are now separate OS processes that die and
//! come back): every outgoing peer link is a [`PeerLink`] that survives its
//! TCP connection. Messages are retained until the peer confirms
//! *processing* them through cumulative [`Frame::Credit`] acknowledgements
//! (TCP-ack style: idempotent, loss-proof), so when a link dies the
//! unconfirmed tail is replayed after the redial handshake — exactly once,
//! in order. The handshake ([`Frame::PeerHello`] →
//! [`Frame::PeerHelloAck`] → [`Frame::PeerResume`]) carries *process
//! generations*: a restarted peer is detected on either side of either
//! link direction, its stale connections and confirmations are rejected,
//! and every local pending Lin write reissues its invalidation toward the
//! restarted (now empty, vacuously acknowledging) peer — per-node ack
//! bitmasks in the protocol engine make duplicate acknowledgements
//! harmless. While a peer is down, outbound coherence traffic parks in the
//! link's queue (bounded by [`PARK_MAX`]) and a redial thread retries with
//! exponential backoff; miss-path RPCs redial transparently within
//! [`NodeServerConfig::rpc_retry`]. The serving node keeps answering for
//! every key the dead peer does not home.

use crate::client::Conn;
use crate::metrics::{Metrics, MetricsServer};
use crate::transport::{Connection, Transport, TransportConfig, TransportListener};
use crate::wire::{write_frame, BatchBuilder, Frame, FrameDecoder};
use cckvs::node::{CachePut, CcNode, EvictHot, NodeConfig, Outgoing};
use cckvs_trace::{Event as TraceEvent, EventKind, TraceSink, NO_PEER, SHARED_LANE};
use consistency::engine::Destination;
use consistency::lamport::{NodeId, Timestamp};
use consistency::messages::ProtocolMsg;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use reactor::{Events, Interest, Poller, Token, Waker, WriteBuf};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use symcache::popularity::{CacheCoordinator, EpochConfig, HotSet};
use symcache::ReadOutcome;

/// Peer-mesh batching and credit-based flow-control knobs (§6.3/§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowConfig {
    /// Send-credit window per peer: how many protocol messages may be in
    /// flight to one peer beyond what it has confirmed processing. A fast
    /// sender (a Lin ack round fanning out) stalls — instead of growing the
    /// receiver's backlog without bound — once the window is exhausted.
    pub credit_window: u64,
    /// Maximum protocol messages coalesced into one peer-mesh batch.
    pub peer_batch_ops: usize,
    /// Corking deadline for *bulk-class* peer traffic (update broadcasts,
    /// write-backs): a partially filled bulk batch flushes when the oldest
    /// corked message has waited this long, even if the adaptive target
    /// size was never reached. Latency-class traffic (invalidations, Lin
    /// acks, RPC responses) never corks — it flushes eagerly on every
    /// pump. Sub-50µs values round up to the reactor's fine timer
    /// resolution ([`reactor::FINE_RESOLUTION`]).
    pub max_delay: Duration,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            credit_window: 128,
            peer_batch_ops: 32,
            max_delay: Duration::from_micros(200),
        }
    }
}

/// Event-loop topology knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Reactor shard threads. Connections are spread across shards
    /// round-robin; each shard owns its sockets exclusively (no
    /// cross-shard locking on the I/O path). This is the node's whole
    /// serving thread count: there is no worker pool — requests that must
    /// wait suspend as continuations and resume on their owning shard.
    pub shards: usize,
}

impl Default for ReactorConfig {
    /// Two shards per node on multi-core hosts. On a single-CPU host the
    /// default drops to one: every shard is a thread, and with more
    /// threads than cores an invalidation's delivery waits on a scheduler
    /// timeslice instead of an epoll wake — measured as 2-3x on the Lin
    /// ack-wait p99 for a loopback rack, the latency the priority lane
    /// exists to protect. Explicit [`ReactorConfig`] values are honored
    /// as given.
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2);
        Self {
            shards: if cores >= 2 { 2 } else { 1 },
        }
    }
}

/// Configuration of one networked node.
#[derive(Debug, Clone)]
pub struct NodeServerConfig {
    /// The node itself (id, deployment size, capacities, model).
    pub node: NodeConfig,
    /// Address to listen on (`127.0.0.1:0` picks an ephemeral port).
    pub listen: SocketAddr,
    /// Optional address for the plain-text metrics HTTP endpoint.
    pub metrics_listen: Option<SocketAddr>,
    /// When set, this node acts as the deployment's epoch coordinator (§4):
    /// it samples the request stream it serves, closes popularity epochs,
    /// and reconfigures the hot set of *every* node over the wire — exactly
    /// one node of a deployment should carry this.
    pub epochs: Option<EpochConfig>,
    /// Peer-mesh batching and flow-control knobs.
    pub flow: FlowConfig,
    /// Event-loop topology knobs.
    pub reactor: ReactorConfig,
    /// How long a miss-path RPC keeps redialing a dead peer before the
    /// failure surfaces to the operation. Sized to cover a supervised
    /// restart (crash detection + backoff + readiness), so a client op
    /// that raced a peer crash stalls briefly instead of erroring.
    pub rpc_retry: Duration,
    /// Starting value for the home shard's cold-version counter. An
    /// in-memory shard forgets its counter when the process dies; a
    /// replacement starting from scratch would reuse `(clock, writer)`
    /// pairs its predecessor already assigned, making cross-crash
    /// histories ambiguous. A supervisor polls the live counter over the
    /// wire ([`crate::wire::Frame::VersionFloor`]) and passes the last
    /// observation plus slack here on restart, keeping home-assigned
    /// versions monotone across the crash. 0 (the default) starts at 1.
    pub cold_version_floor: u32,
    /// Keys to *fence* at this node's home shard from boot: of the listed
    /// keys, those homed here start hot-marked, bouncing cold reads and
    /// writes with `MissRetry`. A supervisor restarting a crashed node
    /// passes the deployment's hot set (queried from a survivor via
    /// [`crate::wire::Frame::CacheKeys`]): the replacement's cache is
    /// empty, but the keys are still *hot* — live cached copies exist on
    /// every peer — so serving them from this shard's (empty, stale) cold
    /// path would fork the serialisation point. The fence lifts when the
    /// supervisor heals cache symmetry (rack-wide eviction + `HotUnmark`).
    pub hot_fence: Vec<u64>,
    /// Which fabric this node listens, dials peers and serves clients on
    /// (all three must match across a deployment). TCP by default;
    /// [`crate::transport::UdpTransport`] runs the paper-shaped
    /// unreliable-datagram fabric with userspace loss/reorder recovery.
    pub transport: TransportConfig,
}

/// Default miss-path RPC redial budget (covers a supervised peer restart).
pub const DEFAULT_RPC_RETRY: Duration = Duration::from_secs(10);

impl NodeServerConfig {
    /// A loopback node with an ephemeral port and a metrics endpoint.
    pub fn loopback(node: NodeConfig) -> Self {
        Self {
            node,
            listen: "127.0.0.1:0".parse().expect("static addr"),
            metrics_listen: Some("127.0.0.1:0".parse().expect("static addr")),
            epochs: None,
            flow: FlowConfig::default(),
            reactor: ReactorConfig::default(),
            rpc_retry: DEFAULT_RPC_RETRY,
            cold_version_floor: 0,
            hot_fence: Vec::new(),
            transport: TransportConfig::tcp(),
        }
    }

    /// Starts a [`NodeServerBuilder`] — the preferred way to assemble a
    /// node configuration (the knobs above accreted over several
    /// iterations; the builder names each one once and defaults the
    /// rest).
    pub fn builder(node: NodeConfig) -> NodeServerBuilder {
        NodeServerBuilder {
            cfg: Self::loopback(node),
        }
    }
}

/// Builder for [`NodeServerConfig`]: starts from the loopback defaults
/// (ephemeral listen port, metrics on, TCP) and overrides per knob.
///
/// ```
/// use cckvs::node::{NodeConfig, DEFAULT_KVS_THREADS};
/// use cckvs_net::server::NodeServerConfig;
/// use cckvs_net::transport::TransportKind;
/// use consistency::messages::ConsistencyModel;
///
/// let node = NodeConfig {
///     model: ConsistencyModel::Lin,
///     node: 0,
///     nodes: 1,
///     cache_capacity: 64,
///     kvs_capacity: 1024,
///     value_capacity: 64,
///     kvs_threads: DEFAULT_KVS_THREADS,
/// };
/// let cfg = NodeServerConfig::builder(node)
///     .transport_kind(TransportKind::Udp)
///     .metrics(None)
///     .shards(1)
///     .build();
/// assert_eq!(cfg.transport.kind, TransportKind::Udp);
/// ```
#[derive(Debug, Clone)]
pub struct NodeServerBuilder {
    cfg: NodeServerConfig,
}

impl NodeServerBuilder {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub fn listen(mut self, addr: SocketAddr) -> Self {
        self.cfg.listen = addr;
        self
    }

    /// Metrics HTTP endpoint address, or `None` to disable it.
    pub fn metrics(mut self, addr: Option<SocketAddr>) -> Self {
        self.cfg.metrics_listen = addr;
        self
    }

    /// Makes this node the deployment's epoch coordinator.
    pub fn epochs(mut self, epochs: Option<EpochConfig>) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Peer-mesh batching and credit flow-control knobs.
    pub fn flow(mut self, flow: FlowConfig) -> Self {
        self.cfg.flow = flow;
        self
    }

    /// Reactor shard event-loop threads.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.reactor = ReactorConfig { shards };
        self
    }

    /// Miss-path RPC redial budget.
    pub fn rpc_retry(mut self, budget: Duration) -> Self {
        self.cfg.rpc_retry = budget;
        self
    }

    /// Cold-version floor seed (supervised restarts).
    pub fn cold_version_floor(mut self, floor: u32) -> Self {
        self.cfg.cold_version_floor = floor;
        self
    }

    /// Keys fenced at the home shard from boot (supervised restarts).
    pub fn hot_fence(mut self, keys: Vec<u64>) -> Self {
        self.cfg.hot_fence = keys;
        self
    }

    /// Full transport selection, including fault injection.
    pub fn transport(mut self, transport: TransportConfig) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Transport selection by kind, with no injected faults.
    pub fn transport_kind(mut self, kind: crate::transport::TransportKind) -> Self {
        self.cfg.transport = TransportConfig { kind, faults: None };
        self
    }

    /// The assembled configuration.
    pub fn build(self) -> NodeServerConfig {
        self.cfg
    }
}

/// How long a credit-stalled peer writer waits before re-checking for
/// piggyback credit returns it owes in the other direction. This tick is
/// what makes symmetric saturation deadlock-free: even with every writer
/// stalled, each wakes up, sends a credit-only batch (credits consume no
/// credits), and unblocks its peer.
const CREDIT_STALL_TICK: Duration = Duration::from_millis(1);

/// Stall re-check tick while *latency-class* frames (invalidations, Lin
/// acks, RPC responses) are blocked on the credit window: a blocked Lin
/// writer is waiting on exactly these frames, so the priority lane
/// re-pumps at fine-timer granularity instead of the 1 ms bulk tick.
/// (The credit-return doorbell remains the primary wake; this tick is
/// the deadlock-free backstop.)
const PRIORITY_STALL_TICK: Duration = Duration::from_micros(100);

/// Time constant of the per-link bulk arrival-rate EWMA driving the
/// adaptive cork target: samples taken `dt` apart blend with weight
/// `dt / (dt + CORK_RATE_TAU)`, so the estimate forgets a burst in a few
/// milliseconds and an idle link decays toward immediate flush.
const CORK_RATE_TAU: Duration = Duration::from_millis(2);

/// Byte budget for one coalesced peer-mesh batch: coalescing stops (and
/// spills to the next batch) once a batch holds this much, keeping batches
/// far below [`crate::wire::MAX_FRAME_BYTES`]. A single message exceeding
/// the budget still travels — alone, as a bare frame.
const PEER_BATCH_MAX_BYTES: usize = 1 << 20;

/// Write-buffer high-water mark: once a connection has this much pending
/// output, the shard stops reading from it (and a peer writer stops
/// packing batches) until the socket drains below [`LOW_WATER`].
const HIGH_WATER: usize = 1 << 20;

/// Write-buffer low-water mark: reads resume below this.
const LOW_WATER: usize = 128 << 10;

/// Decoded-but-unserved frames a client connection may queue before the
/// shard stops reading from it (a pipelining client cannot buffer-bloat
/// the server; TCP pushes back instead).
const MAX_PENDING_FRAMES: usize = 256;

/// Messages parked for a *down* peer beyond this bound are dropped (and
/// counted): a peer that stays dead longer than the supervisor's restart
/// budget comes back as a fresh process with an empty cache, for which the
/// dropped coherence traffic is moot — it acknowledges reissued
/// invalidations vacuously and receives no stale state. A *transient*
/// outage long enough to overflow the park is outside this layer's
/// guarantees and is surfaced by the `parked_dropped` metric.
const PARK_MAX: usize = 1 << 16;

/// Handshake I/O timeout for one peer-link dial attempt.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// First redial delay after a peer link dies; doubles up to
/// [`REDIAL_BACKOFF_MAX`].
const REDIAL_BACKOFF_START: Duration = Duration::from_millis(50);

/// Redial backoff cap.
const REDIAL_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// How often the admin service thread, between jobs, sweeps the
/// pending-RPC table for entries past their transport deadline.
const RPC_SWEEP_TICK: Duration = Duration::from_millis(100);

/// A hot-set reconfiguration job for the coordinator's applier thread.
enum FlipJob {
    /// Apply this published hot set to the deployment.
    Apply(HotSet),
    /// A client-forced [`Frame::FlipEpoch`]: apply `hot` (closed on the
    /// serving shard) and resume the suspended connection with the
    /// response. Never coalesced — each forced flip owes its own answer.
    Forced {
        hot: HotSet,
        shard: usize,
        token: u64,
    },
    /// Stop the applier (server teardown).
    Shutdown,
}

/// A blocking request handed to the admin service thread. `Evict` is the
/// one client frame that may genuinely wait on protocol progress
/// (evicting a key with a pending Lin write blocks until the write
/// commits), so it cannot run on a shard; everything else is served
/// inline or as a continuation.
enum AdminJob {
    Evict {
        shard: usize,
        token: u64,
        key: u64,
    },
    /// Teardown poison: the service thread exits.
    Stop,
}

/// One entry of the pending correlated-RPC table: a miss-path request in
/// flight toward `peer`, awaiting its [`Frame::RpcResp`].
struct RpcPending {
    peer: usize,
    /// The inner request frame, retained so a restarted peer that
    /// confirmed processing the request (but never answered) can be asked
    /// again under the same correlation id.
    request: Frame,
    waiter: RpcWaiter,
    /// The peer-link sequence number the request was packed at (`None`
    /// until the pump packs it, and again after a restart reissue). Used
    /// on peer restart to tell "still in the replay tail" (replays
    /// automatically) from "confirmed processed by the dead process"
    /// (must be reissued — the confirmation trimmed it from the tail).
    seq: Option<u64>,
    /// Transport deadline: past this the RPC fails with a timeout (the
    /// peer stayed dead longer than [`NodeServerConfig::rpc_retry`]).
    deadline: Instant,
}

/// Who is waiting for a correlated RPC response.
enum RpcWaiter {
    /// A suspended client connection: resume it on its owning shard.
    Shard { shard: usize, token: u64 },
    /// A blocking off-shard caller (admin service thread, shutdown
    /// drain), parked on the slot's condvar.
    Blocking(Arc<BlockingSlot>),
}

/// Rendezvous for a blocking RPC caller.
#[derive(Default)]
struct BlockingSlot {
    result: Mutex<Option<io::Result<Frame>>>,
    cv: Condvar,
}

/// Per-node state of the epoch-coordinator role (present on exactly one
/// node of a deployment).
struct Churn {
    /// The popularity tracker fed by every client request this node serves.
    coord: Mutex<CacheCoordinator>,
    /// Lock-free sampling counter on the serving path: only one request in
    /// `sampling` ever touches the tracker's lock.
    observe_seq: AtomicU64,
    /// Copy of the tracker's sampling factor (hot-path use).
    sampling: u64,
    /// Keys this coordinator believes are currently installed. Maintained
    /// by the `InstallHot`/`Evict` admin handlers (reconfigurations are
    /// driven over the wire and pass through this node's own handlers, so
    /// the books stay right no matter who drives — the applier thread, a
    /// forced `FlipEpoch`, or an external admin client).
    installed: Mutex<HashSet<u64>>,
    /// Serialises whole reconfigurations (the applier thread and forced
    /// flips may race).
    reconfig: Mutex<()>,
    /// Highest epoch successfully applied: a forced flip can overtake an
    /// auto-closed epoch still queued for the applier thread, and applying
    /// the stale one afterwards would revert the hot set.
    applied_epoch: AtomicU64,
    /// Feeds the applier thread when an epoch closes on the serving path.
    flip_tx: Sender<FlipJob>,
}

/// Outcome of applying a cold (uncached-key) write at the home shard.
enum ColdPut {
    /// Applied, versioned as `ts`.
    Applied(Timestamp),
    /// The key is mid-transition into or out of the hot set; retry.
    Busy,
    /// The shard rejected the write.
    Rejected(String),
}

/// One flow-controlled item queued toward a peer. Protocol messages carry
/// their value bytes broadcast-shared plus the trace id they travel under
/// when the originating client op was sampled — the id rides the link
/// queue, the unacked replay tail and the wire envelope, so causality
/// survives batching, credit stalls and reconnect replays. Correlated
/// miss-path RPC frames ([`Frame::RpcReq`]/[`Frame::RpcResp`]) share the
/// same queue, window, retained tail and replay machinery: a severed link
/// replays an unconfirmed RPC exactly like an unconfirmed invalidation.
enum LinkItem {
    Protocol(ProtocolMsg, Option<Arc<[u8]>>, Option<u64>),
    Rpc(Frame),
}

impl LinkItem {
    /// The trace id this item travels under, if sampled.
    fn trace(&self) -> Option<u64> {
        match self {
            LinkItem::Protocol(_, _, trace) => *trace,
            LinkItem::Rpc(Frame::RpcReq { inner, .. } | Frame::RpcResp { inner, .. }) => {
                match inner.as_ref() {
                    Frame::Traced { id, .. } => Some(*id),
                    _ => None,
                }
            }
            LinkItem::Rpc(_) => None,
        }
    }

    /// The key the item concerns (trace annotation; 0 when inapplicable).
    fn key(&self) -> u64 {
        match self {
            LinkItem::Protocol(msg, _, _) => msg.key(),
            LinkItem::Rpc(_) => 0,
        }
    }

    /// Approximate payload bytes beyond the fixed frame overhead, for the
    /// batch byte budget.
    fn payload_len(&self) -> usize {
        fn frame_payload(frame: &Frame) -> usize {
            match frame {
                Frame::RpcReq { inner, .. }
                | Frame::RpcResp { inner, .. }
                | Frame::Traced { inner, .. } => frame_payload(inner),
                Frame::MissPut { value, .. }
                | Frame::MissGetResp { value }
                | Frame::WriteBack { value, .. }
                | Frame::HotMarkResp { value, .. } => value.len(),
                _ => 0,
            }
        }
        match self {
            LinkItem::Protocol(_, bytes, _) => bytes.as_deref().map_or(0, <[u8]>::len),
            LinkItem::Rpc(frame) => frame_payload(frame),
        }
    }

    /// Which peer-mesh lane the item travels in. Latency class: frames a
    /// blocked operation is waiting on right now — invalidations and acks
    /// (a Lin writer stalls until the slowest sharer acknowledges),
    /// miss-path requests and their responses (a client op is suspended on
    /// each). Bulk class: frames that move data but block nobody —
    /// update/commit broadcasts and write-backs — which keep the
    /// throughput-oriented coalescing and may cork up to
    /// [`FlowConfig::max_delay`].
    fn lane(&self) -> Lane {
        match self {
            LinkItem::Protocol(msg, _, _) => match msg {
                ProtocolMsg::Invalidation { .. } | ProtocolMsg::Ack { .. } => Lane::Latency,
                ProtocolMsg::Update { .. } => Lane::Bulk,
            },
            LinkItem::Rpc(frame) => {
                fn is_write_back(frame: &Frame) -> bool {
                    match frame {
                        Frame::Traced { inner, .. } => is_write_back(inner),
                        Frame::WriteBack { .. } => true,
                        _ => false,
                    }
                }
                match frame {
                    Frame::RpcReq { inner, .. } if is_write_back(inner) => Lane::Bulk,
                    _ => Lane::Latency,
                }
            }
        }
    }

    /// The key whose per-link FIFO order the item participates in, if any.
    /// Two items with the same conflict key on the same link must reach
    /// the peer in arrival order regardless of lane (the per-key protocol
    /// state machines tolerate cross-*key* reordering, nothing more); the
    /// enqueue path downgrades a latency item into the bulk lane when a
    /// bulk item for its key is already corked there.
    fn conflict_key(&self) -> Option<u64> {
        fn frame_key(frame: &Frame) -> Option<u64> {
            match frame {
                Frame::RpcReq { inner, .. }
                | Frame::RpcResp { inner, .. }
                | Frame::Traced { inner, .. } => frame_key(inner),
                Frame::MissGet { key }
                | Frame::MissPut { key, .. }
                | Frame::WriteBack { key, .. }
                | Frame::HotMark { key }
                | Frame::HotUnmark { key }
                | Frame::InstallHot { key, .. }
                | Frame::ActivateHot { key, .. }
                | Frame::Evict { key, .. } => Some(*key),
                _ => None,
            }
        }
        match self {
            LinkItem::Protocol(msg, _, _) => Some(msg.key()),
            LinkItem::Rpc(frame) => frame_key(frame),
        }
    }
}

/// Peer-mesh traffic class of one [`LinkItem`]; see [`LinkItem::lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    /// Drained first, flushed eagerly, never corked.
    Latency,
    /// Credit-paced coalescing with an adaptive cork.
    Bulk,
}

/// The three send queues of one peer link, under one lock (lane routing
/// and the per-key downgrade check must see a consistent snapshot).
#[derive(Default)]
struct LinkQueues {
    /// Unconfirmed tail requeued by a redial handshake. Drains strictly
    /// FIFO *before* either lane: the repack must assign each replayed
    /// item its original sequence number, and wire order is seq order.
    replay: VecDeque<LinkItem>,
    /// Latency-class items ([`Lane::Latency`]).
    latency: VecDeque<LinkItem>,
    /// Bulk-class items ([`Lane::Bulk`]), plus latency items downgraded
    /// behind a same-key bulk item to preserve per-key FIFO.
    bulk: VecDeque<LinkItem>,
    /// Conflict-key multiset of `bulk` (kept in sync by
    /// [`LinkQueues::push`]/[`LinkQueues::pop_bulk`]): makes the per-key
    /// downgrade check O(1) instead of a scan of a possibly PARK_MAX-deep
    /// parked queue.
    bulk_keys: HashMap<u64, u32>,
}

impl LinkQueues {
    fn len(&self) -> usize {
        self.replay.len() + self.latency.len() + self.bulk.len()
    }

    fn is_empty(&self) -> bool {
        self.replay.is_empty() && self.latency.is_empty() && self.bulk.is_empty()
    }

    /// Routes one freshly shipped item into its lane, downgrading a
    /// latency item whose key already has bulk traffic queued (per-key
    /// FIFO across lanes). Returns the lane it landed in.
    fn push(&mut self, item: LinkItem) -> Lane {
        let lane = match item.lane() {
            Lane::Bulk => Lane::Bulk,
            Lane::Latency => match item.conflict_key() {
                Some(key) if self.bulk_keys.contains_key(&key) => Lane::Bulk,
                _ => Lane::Latency,
            },
        };
        match lane {
            Lane::Latency => self.latency.push_back(item),
            Lane::Bulk => {
                if let Some(key) = item.conflict_key() {
                    *self.bulk_keys.entry(key).or_insert(0) += 1;
                }
                self.bulk.push_back(item);
            }
        }
        lane
    }

    /// Pops the bulk front, maintaining the conflict-key multiset.
    fn pop_bulk(&mut self) -> Option<LinkItem> {
        let item = self.bulk.pop_front()?;
        if let Some(key) = item.conflict_key() {
            if let Some(n) = self.bulk_keys.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    self.bulk_keys.remove(&key);
                }
            }
        }
        Some(item)
    }
}

/// The crash-surviving state of one outgoing peer link. The TCP connection
/// comes and goes (adopted by the owning shard while up, redialed by a
/// background thread while down); the link — queued traffic, the
/// sent-but-unconfirmed tail, and the sequence counters that make replay
/// exact — persists across reconnects.
///
/// Sequencing: flow-controlled messages toward the peer are numbered
/// 1, 2, 3, … for the life of this process. `unacked` holds messages
/// `acked_seq + 1 ..= sent_seq` in order; the peer's cumulative
/// [`Frame::Credit`] confirmations advance `acked_seq` and trim it. On
/// redial the handshake learns how far the peer really processed, drops
/// the confirmed prefix, and requeues the rest in front of `queue` — the
/// repack assigns them the same sequence numbers, so the peer (aligned by
/// [`Frame::PeerResume`]) sees every message exactly once, in order.
/// `unacked.len() == sent_seq - acked_seq` always; the credit window
/// bounds that difference.
struct PeerLink {
    /// Which reactor shard owns the link's socket (fixed: `peer % shards`,
    /// the same shard the incoming link from that peer is pinned to — so
    /// credit processing, replay and pumping never race across threads).
    shard: usize,
    /// Items not yet handed to the socket, split by lane (replay /
    /// latency / bulk). Parked here while the link is down.
    queues: Mutex<LinkQueues>,
    /// Lifetime count of bulk-class items enqueued on this link; the
    /// owning pump samples it to estimate the bulk arrival rate that
    /// drives the adaptive cork target.
    bulk_arrivals: AtomicU64,
    /// Sent items awaiting cumulative confirmation (front = oldest).
    unacked: Mutex<VecDeque<LinkItem>>,
    /// Highest sequence number handed to the socket.
    sent_seq: AtomicU64,
    /// Highest sequence number the peer confirmed processing.
    acked_seq: AtomicU64,
    /// The peer's process generation as of the last completed handshake
    /// (0 = never connected).
    peer_gen: AtomicU64,
    /// A connection for this link is adopted by the owning shard.
    up: AtomicBool,
    /// A redial thread is currently working this link.
    redialing: AtomicBool,
}

impl PeerLink {
    fn new(shard: usize) -> Self {
        Self {
            shard,
            queues: Mutex::new(LinkQueues::default()),
            bulk_arrivals: AtomicU64::new(0),
            unacked: Mutex::new(VecDeque::new()),
            sent_seq: AtomicU64::new(0),
            acked_seq: AtomicU64::new(0),
            peer_gen: AtomicU64::new(0),
            up: AtomicBool::new(false),
            redialing: AtomicBool::new(false),
        }
    }
}

/// A message into a reactor shard from another thread.
enum ShardMsg {
    /// Adopt a freshly accepted connection (role decided by its hello).
    NewConn(Box<dyn Connection>),
    /// Adopt the outgoing protocol link to `peer` (initial connect or a
    /// completed redial handshake).
    AdoptPeerOut {
        peer: usize,
        stream: Box<dyn Connection>,
    },
    /// Adopt an incoming peer-link connection migrated from another shard:
    /// its [`Frame::PeerHello`] was decoded there, but hello processing
    /// must happen on the shard that owns every connection of that peer so
    /// stale-connection teardown and the processed-count report are
    /// ordered with frame processing.
    AdoptPeerIn {
        conn: Box<ConnState>,
        from: usize,
        gen: u64,
    },
    /// An off-shard event that resumes connection `token`'s suspended
    /// operation: a Lin commit hook fired, a correlated RPC resolved, or
    /// an admin service job finished. `sent_at` is when the wake-up event
    /// happened — the gap to the continuation actually running on this
    /// shard is the `continuation_fire` phase metric (the successor of
    /// the retired worker-handoff queue wait).
    Resume {
        token: u64,
        sent_at: Instant,
        event: ResumeEvent,
    },
}

/// What woke a suspended client operation.
enum ResumeEvent {
    /// The pending Lin write committed: the shard that delivered the
    /// final acknowledgement fired the registered commit hook.
    Committed,
    /// The correlated miss-path RPC `corr` resolved with this response.
    Rpc { corr: u64, response: Frame },
    /// The correlated miss-path RPC `corr` failed (peer dead past the
    /// transport deadline, or server shutdown).
    RpcFailed { corr: u64, message: String },
    /// The admin service thread finished the suspended admin frame.
    Admin { result: io::Result<Frame> },
}

/// The cross-thread face of one reactor shard.
struct ShardShared {
    waker: Waker,
    inbox: Mutex<Vec<ShardMsg>>,
}

impl ShardShared {
    fn send(&self, msg: ShardMsg) {
        self.inbox.lock().push(msg);
        self.waker.wake();
    }
}

struct ServerInner {
    node: CcNode,
    metrics: Arc<Metrics>,
    listen_addr: SocketAddr,
    running: AtomicBool,
    /// Set once `connect_peers` has wired the outbound mesh; shards park
    /// incoming traffic until then (frames wait in decode buffers), so no
    /// protocol message is ever dropped or misrouted during boot.
    ready: AtomicBool,
    /// Signals [`NodeServer::wait`] once shutdown was initiated.
    stopped: Mutex<bool>,
    stopped_cv: Condvar,
    tags: AtomicU64,
    /// Versions assigned to miss-path (cold-key) writes applied to this
    /// node's KVS shard. The home shard is the single serialisation point
    /// for uncached keys, so ordering cold writes by *its* counter (rather
    /// than the sender's, whose counters advance independently) makes
    /// arrival order the write order — no update is silently discarded.
    /// Hot-set churn bumps the counter past every version it installs or
    /// writes back, so a cold write after an eviction always supersedes
    /// the written-back value.
    cold_versions: AtomicU64,
    /// Keys homed at this shard that are currently in (or transitioning
    /// into/out of) the hot set. While marked, cold writes bounce with
    /// `MissRetry`: the hot-set transition protocol fetches the value,
    /// fills every cache, and only then re-opens (or closes) the cold
    /// path — no write can land in the gap and be shadowed by the caches.
    hot_marks: Mutex<HashSet<u64>>,
    /// Epoch-coordinator role, when this node carries it.
    churn: Option<Churn>,
    /// This process's generation: stamps peer-link handshakes and
    /// cumulative credit confirmations, so a restarted peer (or this
    /// node's own restarted predecessor) is detected and its stale frames
    /// rejected.
    gen: u64,
    /// Outgoing one-way protocol links, indexed by peer node id (the self
    /// entry is `None`). The links exist for the server's whole life;
    /// their TCP connections come and go.
    peer_links: Vec<Option<Arc<PeerLink>>>,
    /// Highest process generation seen per peer on *incoming* links.
    peer_in_gen: Vec<AtomicU64>,
    /// Cumulative flow-controlled messages processed per peer (incoming
    /// direction), in the *peer's* sequence numbering (aligned by
    /// [`Frame::PeerResume`]). Echoed back as [`Frame::Credit`]
    /// confirmations.
    peer_recv_count: Vec<AtomicU64>,
    /// `peer_recv_count` value at the last credit doorbell per peer.
    credit_doorbell: Vec<AtomicU64>,
    /// Peer listen addresses (redials and the coordinator's admin conns).
    peer_addrs: Mutex<Vec<SocketAddr>>,
    /// Pending correlated miss-path RPCs, keyed by correlation id. An
    /// arriving [`Frame::RpcResp`] removes its entry and resumes the
    /// waiter; a response whose id is absent (duplicate after a restart
    /// reissue, or a late answer after the deadline sweep gave up) is
    /// dropped — which is what makes RPC resolution exactly-once.
    rpc_pending: Mutex<HashMap<u64, RpcPending>>,
    /// Correlation id source (monotone, never reused).
    rpc_corr: AtomicU64,
    /// Batching / flow-control knobs.
    flow: FlowConfig,
    /// Event-loop topology.
    reactor: ReactorConfig,
    /// Miss-path RPC redial budget (see [`NodeServerConfig::rpc_retry`]).
    rpc_retry: Duration,
    /// The reactor shards (set once at startup, before any I/O happens).
    shards: OnceLock<Vec<Arc<ShardShared>>>,
    /// Feeds the admin service thread (blocking `Evict` handling and the
    /// pending-RPC deadline sweep).
    admin_tx: Sender<AdminJob>,
    /// Per-node trace event collector: one lock-free ring lane per
    /// reactor shard plus a shared lane for admin and blocking paths.
    /// Drained by the metrics scraper (when enabled) and on demand by
    /// [`Frame::TraceDump`].
    sink: Arc<TraceSink>,
    /// The fabric every connection of this node runs on (the listener,
    /// peer-link dials and miss-path RPC dials all go through it).
    transport: Arc<dyn Transport>,
}

impl ServerInner {
    fn shard(&self, id: usize) -> &ShardShared {
        &self.shards.get().expect("shards wired at startup")[id]
    }

    /// An owning handle to shard `id`'s cross-thread face, for commit
    /// hooks that outlive the borrow.
    fn shard_arc(&self, id: usize) -> Arc<ShardShared> {
        Arc::clone(&self.shards.get().expect("shards wired at startup")[id])
    }

    fn link(&self, peer: usize) -> &Arc<PeerLink> {
        self.peer_links[peer]
            .as_ref()
            .expect("no peer link to self")
    }

    /// Records one trace event into `lane` — a no-op unless the op is
    /// sampled (`trace` is `Some`), so the untraced hot path pays one
    /// branch.
    fn trace_event(&self, trace: Option<u64>, lane: u8, kind: EventKind, key: u64, peer: u8) {
        if let Some(trace_id) = trace {
            self.sink.record(TraceEvent {
                trace_id,
                t_ns: cckvs_trace::now_ns(),
                key,
                node: self.node.node() as u8,
                shard: lane,
                kind,
                peer,
            });
        }
    }

    /// Ships protocol messages produced by the local node to their peers:
    /// push to the per-peer link queues, wake the owning shards. Messages
    /// for a *down* peer park in its queue (bounded by [`PARK_MAX`]) until
    /// the redial thread brings the link back.
    fn ship(&self, outgoing: Vec<Outgoing>) {
        self.ship_traced(outgoing, None);
    }

    /// [`ServerInner::ship`], stamping every queued message with the
    /// sampled op's trace id so protocol traffic this op fans out (Lin
    /// invalidations, acks, commit updates, SC broadcasts) stays causally
    /// linked across nodes. Per-peer send events are recorded here — the
    /// enqueue is the fan-out point.
    fn ship_traced(&self, outgoing: Vec<Outgoing>, trace: Option<u64>) {
        if outgoing.is_empty() {
            return;
        }
        let mut wake: Vec<usize> = Vec::new();
        let mut parked = false;
        {
            let mut push = |peer: usize, msg: ProtocolMsg, bytes: Option<Arc<[u8]>>| {
                let Some(link) = self.peer_links.get(peer).and_then(Option::as_ref) else {
                    return;
                };
                let up = link.up.load(Ordering::Acquire);
                {
                    let mut queues = link.queues.lock();
                    if !up && queues.len() >= PARK_MAX {
                        // The peer has been dead long past the restart
                        // budget; see PARK_MAX for why dropping is safe
                        // for a *restarted* (state-fresh) peer.
                        self.metrics.record_parked_drop();
                        return;
                    }
                    if queues.push(LinkItem::Protocol(msg, bytes, trace)) == Lane::Bulk {
                        link.bulk_arrivals.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.metrics.record_protocol_out(1);
                if trace.is_some() {
                    let kind = match msg {
                        ProtocolMsg::Invalidation { .. } => Some(EventKind::InvSend),
                        ProtocolMsg::Update { .. } => Some(EventKind::UpdateSend),
                        // The ack's arrival at the writer is the traced
                        // moment (AckRecv); its enqueue adds nothing.
                        ProtocolMsg::Ack { .. } => None,
                    };
                    if let Some(kind) = kind {
                        self.trace_event(trace, SHARED_LANE, kind, msg.key(), peer as u8);
                    }
                }
                // Re-check `up` AFTER the enqueue: the link can come up
                // between the load above and the push (the adoption pump
                // would then have drained an empty queue), and a parked-
                // without-wake message on an idle link would strand — a
                // Lin invalidation stuck this way blocks its writer
                // forever. Down both times → genuinely parked; the
                // adoption pump after the redial picks it up.
                if link.up.load(Ordering::Acquire) {
                    if !wake.contains(&link.shard) {
                        wake.push(link.shard);
                    }
                } else {
                    parked = true;
                }
            };
            for Outgoing { dest, msg, bytes } in outgoing {
                match dest {
                    Destination::Broadcast => {
                        for peer in 0..self.node.config().nodes {
                            if peer != self.node.node() {
                                push(peer, msg, bytes.clone());
                            }
                        }
                    }
                    Destination::To(node) => push(node.0 as usize, msg, bytes),
                }
            }
        }
        if parked {
            self.refresh_parked();
        }
        for shard in wake {
            self.shard(shard).waker.wake();
        }
    }

    /// Queues one correlated RPC frame toward `peer` on its
    /// crash-surviving link, waking the owning shard. Returns `false` if
    /// the frame had to be dropped (the peer has been down long past the
    /// restart budget and its park overflowed) — the caller fails the
    /// pending entry instead of letting it dangle to the deadline.
    fn ship_rpc(&self, peer: usize, frame: Frame) -> bool {
        let Some(link) = self.peer_links.get(peer).and_then(Option::as_ref) else {
            return false;
        };
        let up = link.up.load(Ordering::Acquire);
        {
            let mut queues = link.queues.lock();
            if !up && queues.len() >= PARK_MAX {
                self.metrics.record_parked_drop();
                return false;
            }
            if queues.push(LinkItem::Rpc(frame)) == Lane::Bulk {
                link.bulk_arrivals.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Same post-enqueue re-check as `ship_traced`: a link coming up
        // between the load and the push must not strand the frame.
        if link.up.load(Ordering::Acquire) {
            self.shard(link.shard).waker.wake();
        } else {
            self.refresh_parked();
        }
        true
    }

    /// Removes the pending-RPC entry `corr` and hands `result` to its
    /// waiter. A missing entry means the RPC already resolved (or timed
    /// out): late and duplicate responses are dropped here, which is the
    /// exactly-once guarantee.
    fn resolve_rpc(&self, corr: u64, result: io::Result<Frame>) {
        let entry = {
            let mut table = self.rpc_pending.lock();
            let entry = table.remove(&corr);
            self.metrics.set_pending_rpcs(table.len() as u64);
            entry
        };
        let Some(entry) = entry else { return };
        match entry.waiter {
            RpcWaiter::Shard { shard, token } => {
                let event = match result {
                    Ok(response) => ResumeEvent::Rpc { corr, response },
                    Err(e) => ResumeEvent::RpcFailed {
                        corr,
                        message: e.to_string(),
                    },
                };
                self.shard(shard).send(ShardMsg::Resume {
                    token,
                    sent_at: Instant::now(),
                    event,
                });
            }
            RpcWaiter::Blocking(slot) => {
                *slot.result.lock() = Some(result);
                slot.cv.notify_all();
            }
        }
    }

    /// Fails every pending RPC past its transport deadline. Run by the
    /// admin service thread between jobs.
    fn sweep_rpc_deadlines(&self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .rpc_pending
            .lock()
            .iter()
            .filter(|(_, e)| now >= e.deadline)
            .map(|(&corr, _)| corr)
            .collect();
        for corr in expired {
            self.resolve_rpc(
                corr,
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "miss-path rpc exceeded its redial budget",
                )),
            );
        }
    }

    /// Recomputes the parked-messages gauge: traffic queued behind down
    /// peer links, waiting for a redial.
    fn refresh_parked(&self) {
        let total: u64 = self
            .peer_links
            .iter()
            .flatten()
            .filter(|link| !link.up.load(Ordering::Acquire))
            .map(|link| link.queues.lock().len() as u64)
            .sum();
        self.metrics.set_parked(total);
    }

    /// Books `n` processed protocol messages from peer `from`, and — once
    /// a quarter window accumulates since the last doorbell — rings the
    /// shard owning the link toward that peer so the cumulative credit
    /// confirmation flows back even when no protocol traffic happens to be
    /// going that way (an SC update stream is one-directional; without the
    /// doorbell the sender would stall out).
    fn note_processed(&self, from: usize, n: u64) {
        if n == 0 {
            return;
        }
        let count = self.peer_recv_count[from].fetch_add(n, Ordering::AcqRel) + n;
        let since = count.saturating_sub(self.credit_doorbell[from].load(Ordering::Acquire));
        if since >= (self.flow.credit_window / 4).max(1) {
            self.credit_doorbell[from].store(count, Ordering::Release);
            if let Some(link) = self.peer_links.get(from).and_then(Option::as_ref) {
                self.shard(link.shard).waker.wake();
            }
        }
    }

    /// A peer's process died and a new one took its place (detected by a
    /// generation change on either link direction). Reissue the
    /// invalidation of every local pending Lin write the dead process
    /// never acknowledged: the original invalidation or its ack died with
    /// the old process, and the blocked writer would otherwise wait
    /// forever. The restarted peer acknowledges vacuously (its cache is
    /// empty); per-node ack bitmasks dedupe the cases where the old
    /// process *had* acknowledged.
    fn peer_restarted(&self, peer: usize) {
        let reissue = self.node.reissue_invalidations(NodeId(peer as u8));
        if !reissue.is_empty() {
            self.metrics.record_reissued(reissue.len() as u64);
            self.ship(reissue);
        }
        // In-doubt miss-path RPCs: the dead process confirmed receiving
        // the request (seq <= acked) but its answer died with it. Requeue
        // a fresh copy of the request frame under the SAME correlation id
        // — if the old answer somehow raced out first, the entry is
        // already gone and the duplicate response hits an unknown corr
        // and is dropped. Entries still in the replay window (seq >
        // acked, or not yet packed) ride the link's own replay and must
        // not be duplicated here.
        let in_doubt: Vec<(u64, Frame)> = {
            let link = self.link(peer);
            let acked = link.acked_seq.load(Ordering::Acquire);
            let mut table = self.rpc_pending.lock();
            table
                .iter_mut()
                .filter(|(_, e)| e.peer == peer && e.seq.is_some_and(|s| s <= acked))
                .map(|(&corr, e)| {
                    e.seq = None; // consumed: a second restart must not reissue again
                    (corr, e.request.clone())
                })
                .collect()
        };
        for (corr, request) in in_doubt {
            let frame = Frame::RpcReq {
                corr,
                inner: Box::new(request),
            };
            if !self.ship_rpc(peer, frame) {
                self.resolve_rpc(
                    corr,
                    Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "peer link overflowed while reissuing rpc",
                    )),
                );
            }
        }
    }

    /// Marks the outgoing link to `peer` down and spawns (at most one)
    /// redial thread that retries with exponential backoff until the link
    /// is back or the server shuts down.
    fn peer_link_down(self: &Arc<Self>, peer: usize) {
        let link = Arc::clone(self.link(peer));
        link.up.store(false, Ordering::Release);
        self.refresh_parked();
        if link.redialing.swap(true, Ordering::AcqRel) {
            return; // A redial thread is already on it.
        }
        if !self.running.load(Ordering::SeqCst) {
            link.redialing.store(false, Ordering::Release);
            return;
        }
        let inner = Arc::clone(self);
        let _ = std::thread::Builder::new()
            .name(format!("cckvs-redial-n{}-p{}", self.node.node(), peer))
            .spawn(move || {
                let mut backoff = REDIAL_BACKOFF_START;
                while inner.running.load(Ordering::SeqCst) {
                    let addr = inner.peer_addrs.lock()[peer];
                    match inner.dial_peer_handshake(peer, addr) {
                        Ok(stream) => {
                            inner.metrics.record_peer_reconnect();
                            link.redialing.store(false, Ordering::Release);
                            inner
                                .shard(link.shard)
                                .send(ShardMsg::AdoptPeerOut { peer, stream });
                            return;
                        }
                        Err(_) => {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(REDIAL_BACKOFF_MAX);
                        }
                    }
                }
                link.redialing.store(false, Ordering::Release);
            });
    }

    /// Dials the outgoing protocol link to `peer` and runs the blocking
    /// reconnect handshake: hello (stamped with this process's
    /// generation), the peer's processed-count report, replay
    /// reconciliation, and the resume announcement. On success the stream
    /// is nonblocking, role-tagged, and the link's queue front holds
    /// exactly the messages the peer has not processed; the caller hands
    /// the stream to the owning shard and marks the link up.
    fn dial_peer_handshake(
        &self,
        peer: usize,
        addr: SocketAddr,
    ) -> io::Result<Box<dyn Connection>> {
        let mut stream = self.transport.dial(addr, HANDSHAKE_TIMEOUT)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        let me = self.node.node();
        let mut hello = Vec::new();
        write_frame(
            &mut hello,
            &Frame::PeerHello {
                from: me as u8,
                gen: self.gen,
            },
        )
        .expect("vec write");
        stream.write_all(&hello)?;
        let ack = match crate::wire::read_frame(&mut stream)? {
            Some(Frame::PeerHelloAck { processed, gen }) => (processed, gen),
            Some(other) => return Err(unexpected_frame("peer-hello", &other)),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                ))
            }
        };
        let (processed, peer_gen) = ack;
        let link = self.link(peer);
        let prev_gen = link.peer_gen.swap(peer_gen, Ordering::AcqRel);
        // Reconcile: drop what the peer provably processed, requeue the
        // rest for replay with their original sequence numbers.
        let start_seq = {
            let mut queues = link.queues.lock();
            let mut unacked = link.unacked.lock();
            let acked = link.acked_seq.load(Ordering::Acquire);
            let sent = link.sent_seq.load(Ordering::Acquire);
            if processed > sent {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "peer {peer} claims {processed} processed of {sent} sent \
                         (confirmation from a different generation?)"
                    ),
                ));
            }
            if processed > acked {
                let drop_n = (processed - acked).min(unacked.len() as u64);
                for _ in 0..drop_n {
                    unacked.pop_front();
                }
                link.acked_seq.store(processed, Ordering::Release);
            }
            let replayed = unacked.len() as u64;
            if replayed > 0 {
                self.metrics.record_peer_replayed(replayed);
            }
            while let Some(item) = unacked.pop_back() {
                // A sampled op's message keeps its original trace id
                // across the replay (exactly once — the requeued item
                // IS the retained original); the Replay event marks the
                // detour on the timeline. Replayed items go to the
                // dedicated replay queue, NOT their lane: the repack must
                // hand each one its original sequence number, so they
                // drain strictly FIFO ahead of both lanes regardless of
                // class (a replayed bulk update must not be overtaken by
                // a replayed — or fresh — invalidation).
                self.trace_event(
                    item.trace(),
                    SHARED_LANE,
                    EventKind::Replay,
                    item.key(),
                    peer as u8,
                );
                queues.replay.push_front(item);
            }
            let acked_now = link.acked_seq.load(Ordering::Acquire);
            link.sent_seq.store(acked_now, Ordering::Release);
            acked_now + 1
        };
        let mut resume = Vec::new();
        write_frame(&mut resume, &Frame::PeerResume { start_seq }).expect("vec write");
        stream.write_all(&resume)?;
        stream.set_read_timeout(None)?;
        stream.set_nonblocking(true)?;
        // A different generation than last time means the old peer process
        // is gone: reissue invalidations its death may have stranded.
        if prev_gen != 0 && prev_gen != peer_gen {
            self.peer_restarted(peer);
        }
        Ok(stream)
    }

    /// The version the home shard assigns to the next cold-key write.
    fn next_cold_version(&self) -> u32 {
        // u32 wrap after 4 billion cold writes per node; acceptable for the
        // deployments this layer targets (the cache path is unaffected).
        self.cold_versions.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Ensures every future cold-write version exceeds `clock` — called
    /// whenever churn surfaces a version at this home shard (hot-key fetch,
    /// write-back arrival), so a cold write issued after an eviction can
    /// never be discarded as older than the written-back value.
    fn bump_cold_versions(&self, clock: u32) {
        self.cold_versions
            .fetch_max(u64::from(clock) + 1, Ordering::Relaxed);
    }

    /// Applies a cold (uncached-key) write to this node's shard — this node
    /// is the key's home. Checked against the hot-transition marks under
    /// their lock, so no cold write ever interleaves with a hot-set fetch
    /// or landing write-backs (it would be shadowed by the caches or
    /// clobbered by an older write-back).
    ///
    /// A key this node *itself caches* also bounces: a cached-at-home key
    /// is hot, and a cold op on a hot key only arises from cache asymmetry
    /// (a crash-restarted replica serving it through its miss path). The
    /// home is the serialisation point either way — through its cache for
    /// hot keys, through its shard for cold ones — and a cold write landing
    /// beside live cached copies would be shadowed by them forever.
    fn cold_put(&self, key: u64, value: &[u8], writer: u8) -> ColdPut {
        let marks = self.hot_marks.lock();
        if marks.contains(&key) || self.node.is_cached(key) {
            return ColdPut::Busy;
        }
        let ts = Timestamp::new(self.next_cold_version(), NodeId(writer));
        match self.node.kvs_put(key, value, ts.clock, ts.writer.0) {
            Ok(()) => ColdPut::Applied(ts),
            Err(e) => {
                ColdPut::Rejected(format!("write of key {key} rejected by home shard: {e:?}"))
            }
        }
    }

    /// Evicts `key` from the local cache, shipping a dirty value back to
    /// its (possibly remote) home shard before returning — an `EvictResp`
    /// on the wire therefore means "this replica's copy is gone *and* its
    /// last write is durable at the home".
    fn evict_key(&self, key: u64) -> io::Result<bool> {
        let existed = match self.node.evict_hot(key) {
            EvictHot::NotCached => false,
            EvictHot::Clean => true,
            EvictHot::WrittenBack { ts } => {
                self.bump_cold_versions(ts.clock);
                self.metrics.record_writeback();
                true
            }
            EvictHot::WriteBackRemote { value, ts } => {
                // The cache entry is already gone; this RPC is the only
                // copy of the dirty value, so a transient failure must not
                // drop it — retry with fresh links before giving up.
                let home = self.node.home_node(key);
                let mut attempt = 0;
                loop {
                    attempt += 1;
                    match self.rpc(
                        home,
                        &Frame::WriteBack {
                            key,
                            value: value.clone(),
                            ts,
                        },
                    ) {
                        Ok(Frame::WriteBackResp { .. }) => break,
                        Ok(other) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("unexpected write-back response {other:?}"),
                            ))
                        }
                        Err(_) if attempt < 3 => {
                            std::thread::sleep(Duration::from_millis(10 * attempt))
                        }
                        Err(e) => return Err(e),
                    }
                }
                self.metrics.record_writeback();
                true
            }
        };
        // Coordinator bookkeeping: the key left the hot set.
        if let Some(churn) = &self.churn {
            churn.installed.lock().remove(&key);
        }
        Ok(existed)
    }

    /// Serves a cold (uncached-key) read from this node's shard — this node
    /// is the key's home. Returns `None` while the key transitions into or
    /// out of the hot set: during an eviction the freshest value may still
    /// be in flight from a dirty replica, so serving the shard's copy now
    /// could hand out an older value than cached reads already returned.
    /// The caller retries; the transition fence clears within the round.
    /// A key this node itself caches bounces for the same reason as in
    /// [`ServerInner::cold_put`]: the shard's copy of a hot key is stale
    /// relative to the caches.
    fn cold_get(&self, key: u64) -> Option<Vec<u8>> {
        let marks = self.hot_marks.lock();
        if marks.contains(&key) || self.node.is_cached(key) {
            return None;
        }
        Some(self.node.kvs_get(key))
    }

    /// Feeds one served client request into the popularity tracker (no-op
    /// unless this node is the coordinator); a closed epoch is handed to
    /// the applier thread. The sampling filter runs on a lock-free counter
    /// so discarded requests never contend on the tracker.
    fn observe(&self, key: u64) {
        let Some(churn) = &self.churn else { return };
        let seq = churn.observe_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if seq % churn.sampling != 0 {
            return;
        }
        let hot = churn.coord.lock().observe_sampled(key);
        if let Some(hot) = hot {
            let _ = churn.flip_tx.send(FlipJob::Apply(hot));
        }
    }

    /// Reconfigures the deployment's symmetric caches to hold `hot`: evicts
    /// departing keys from every node (write-backs land before the cold
    /// path re-opens), then installs arriving keys on every node at the
    /// value and version their home shards store. Admin frames go over the
    /// wire to *all* nodes including this one — the same path an external
    /// driver would use, which also keeps the coordinator's bookkeeping in
    /// its own handlers.
    ///
    /// Returns `(installed, evicted)` key counts.
    fn apply_hot_set(&self, hot: &HotSet) -> io::Result<(u64, u64)> {
        let churn = self
            .churn
            .as_ref()
            .expect("apply_hot_set requires the coordinator role");
        let _serial = churn.reconfig.lock();
        // A forced flip can overtake an auto-closed epoch still queued for
        // the applier; applying the stale set afterwards would revert the
        // caches to outdated popularity data. Epoch numbers are unique and
        // monotone (one counter issues them), so skip anything not newer.
        if hot.epoch <= churn.applied_epoch.load(Ordering::Acquire) {
            return Ok((0, 0));
        }
        let target: HashSet<u64> = hot.keys.iter().copied().collect();
        let current = churn.installed.lock().clone();
        let to_evict: Vec<u64> = current.difference(&target).copied().collect();
        // Install in published (hottest-first) order.
        let to_install: Vec<u64> = hot
            .keys
            .iter()
            .copied()
            .filter(|k| !current.contains(k))
            .collect();
        let addrs = self.peer_addrs.lock().clone();
        let mut conns = addrs
            .iter()
            .map(|&addr| Conn::open(&*self.transport, addr, &Frame::ClientHello))
            .collect::<io::Result<Vec<_>>>()?;
        let mut evicted = 0u64;
        for &key in &to_evict {
            if let Err(e) = self.evict_everywhere(&mut conns, key) {
                self.abandon_key(&mut conns, key);
                return Err(e);
            }
            evicted += 1;
        }
        let mut installed = 0u64;
        for &key in &to_install {
            match self.install_everywhere(&mut conns, key) {
                Ok(true) => installed += 1,
                // A cache is full: later keys are colder and would fail
                // the same way (the key was already rolled back).
                Ok(false) => break,
                Err(e) => {
                    self.abandon_key(&mut conns, key);
                    return Err(e);
                }
            }
        }
        churn.applied_epoch.fetch_max(hot.epoch, Ordering::Release);
        self.metrics.record_epoch(hot.epoch);
        self.metrics.record_installs(installed);
        self.metrics.record_evictions(evicted);
        Ok((installed, evicted))
    }

    /// Evicts `key` from every node, then re-opens the cold path at its
    /// home shard (every replica dropped its copy and all dirty
    /// write-backs landed by then).
    fn evict_everywhere(&self, conns: &mut [Conn], key: u64) -> io::Result<()> {
        for conn in conns.iter_mut() {
            match conn.call(&Frame::Evict { key })? {
                Frame::EvictResp { .. } => {}
                other => return Err(unexpected_frame("evict", &other)),
            }
        }
        match self.rpc(self.node.home_node(key), &Frame::HotUnmark { key })? {
            Frame::HotUnmarkResp => Ok(()),
            other => Err(unexpected_frame("hot-unmark", &other)),
        }
    }

    /// Installs `key` on every node: fence the home, warm every replica,
    /// then activate. Returns `Ok(false)` (after rolling the key back) if
    /// a cache was full.
    fn install_everywhere(&self, conns: &mut [Conn], key: u64) -> io::Result<bool> {
        let home = self.node.home_node(key);
        // Mark the key hot at its home and fetch the authoritative
        // (value, version): cold writes bounce from here on, so the
        // caches cannot shadow a write accepted after the fetch.
        let (value, ts) = match self.rpc(home, &Frame::HotMark { key })? {
            Frame::HotMarkResp { value, ts } => (value, ts),
            other => return Err(unexpected_frame("hot-mark", &other)),
        };
        // Phase 1: warm every replica. Warming entries run the coherence
        // protocol but refuse client writes, so no write can commit
        // against a half-installed hot set (the unfilled replicas would
        // ack it vacuously and then shadow it with their stale fills).
        for n in 0..conns.len() {
            let ok = match conns[n].call(&Frame::InstallHot {
                key,
                value: value.clone(),
                ts,
                warm: true,
            })? {
                Frame::InstallHotResp { ok } => ok,
                other => return Err(unexpected_frame("install", &other)),
            };
            if !ok {
                // Roll the key back off the nodes that took it (symmetry)
                // and lift the fence.
                for rollback in conns.iter_mut().take(n) {
                    let _ = rollback.call(&Frame::Evict { key });
                }
                let _ = self.rpc(home, &Frame::HotUnmark { key });
                return Ok(false);
            }
        }
        // Phase 2: activate everywhere — only now do client reads and
        // writes start hitting, on a fully symmetric hot set.
        for conn in conns.iter_mut() {
            match conn.call(&Frame::ActivateHot { key })? {
                Frame::ActivateHotResp { .. } => {}
                other => return Err(unexpected_frame("activate", &other)),
            }
        }
        Ok(true)
    }

    /// Best-effort recovery when a reconfiguration step for `key` failed
    /// midway: restore the safe cold state — evict every replica (dirty
    /// copies write back where reachable), lift the home's transition
    /// fence, and drop the key from the coordinator's books so the next
    /// epoch re-derives a correct delta. Without this, a partial failure
    /// would leave the key fenced (cold writes bouncing forever) or cached
    /// on a subset of replicas that no future delta ever touches.
    fn abandon_key(&self, conns: &mut [Conn], key: u64) {
        for conn in conns.iter_mut() {
            let _ = conn.call(&Frame::Evict { key });
        }
        let _ = self.rpc(self.node.home_node(key), &Frame::HotUnmark { key });
        if let Some(churn) = &self.churn {
            churn.installed.lock().remove(&key);
        }
    }

    /// Performs a synchronous miss-path RPC against peer `home`, dialing
    /// (or re-dialing) the pooled link if needed. Slots rotate so up to
    /// [`RPC_POOL_SIZE`] RPCs to one home shard proceed concurrently.
    ///
    /// Transport failures redial with backoff for up to
    /// [`NodeServerConfig::rpc_retry`] before surfacing: a peer process
    /// crashing under a supervisor comes back within the budget, so client
    /// operations that raced the crash stall briefly instead of failing.
    fn rpc(&self, home: usize, request: &Frame) -> io::Result<Frame> {
        self.rpc_until(home, request, Instant::now() + self.rpc_retry)
    }

    fn rpc_until(&self, home: usize, request: &Frame, deadline: Instant) -> io::Result<Frame> {
        if home == self.node.node() {
            // No link to self: `apply_hot_set` drives its own home keys
            // through the same RPC surface. The mark/unmark/write-back
            // handlers never block on shard-delivered protocol traffic,
            // so serving inline is safe from any thread.
            return match serve_rpc_frame(self, SHARED_LANE, request.clone())? {
                Frame::Error { message } => {
                    Err(io::Error::new(io::ErrorKind::InvalidInput, message))
                }
                frame => Ok(frame),
            };
        }
        let slot = Arc::new(BlockingSlot::default());
        let corr = {
            // Park overflow on a long-dead peer is the only issue-side
            // failure; retry with backoff like the old pooled dialer did.
            let mut backoff = Duration::from_millis(10);
            loop {
                match self.issue_rpc(
                    home,
                    request.clone(),
                    RpcWaiter::Blocking(Arc::clone(&slot)),
                    deadline,
                ) {
                    Ok(corr) => break corr,
                    Err(e)
                        if Instant::now() >= deadline || !self.running.load(Ordering::SeqCst) =>
                    {
                        return Err(e)
                    }
                    Err(_) => {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(250));
                    }
                }
            }
        };
        let mut guard = slot.result.lock();
        loop {
            if let Some(result) = guard.take() {
                return match result? {
                    // The peer's Frame::Error answer over a healthy link:
                    // surfaced like the old Conn::call did.
                    Frame::Error { message } => {
                        Err(io::Error::new(io::ErrorKind::InvalidInput, message))
                    }
                    frame => Ok(frame),
                };
            }
            let now = Instant::now();
            if now >= deadline || !self.running.load(Ordering::SeqCst) {
                drop(guard);
                // Only the side that removes the table entry owns the
                // outcome: if the resolver got there first, its result is
                // en route to the slot — wait it out instead of reporting
                // a timeout for an RPC that actually resolved.
                let removed = {
                    let mut table = self.rpc_pending.lock();
                    let removed = table.remove(&corr).is_some();
                    self.metrics.set_pending_rpcs(table.len() as u64);
                    removed
                };
                guard = slot.result.lock();
                if removed {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "miss-path rpc exceeded its redial budget",
                    ));
                }
                loop {
                    if let Some(result) = guard.take() {
                        return match result? {
                            Frame::Error { message } => {
                                Err(io::Error::new(io::ErrorKind::InvalidInput, message))
                            }
                            frame => Ok(frame),
                        };
                    }
                    slot.cv.wait_for(&mut guard, Duration::from_millis(10));
                }
            }
            slot.cv.wait_for(&mut guard, deadline - now);
        }
    }

    /// Registers a pending-RPC continuation and queues the correlated
    /// request toward `home`'s crash-surviving peer link. The returned
    /// correlation id resolves exactly once: via [`ServerInner::resolve_rpc`]
    /// when the response frame (or a failure) arrives, or via the deadline
    /// sweep.
    fn issue_rpc(
        &self,
        home: usize,
        request: Frame,
        waiter: RpcWaiter,
        deadline: Instant,
    ) -> io::Result<u64> {
        let corr = self.rpc_corr.fetch_add(1, Ordering::Relaxed);
        {
            let mut table = self.rpc_pending.lock();
            table.insert(
                corr,
                RpcPending {
                    peer: home,
                    request: request.clone(),
                    waiter,
                    seq: None,
                    deadline,
                },
            );
            self.metrics.set_pending_rpcs(table.len() as u64);
        }
        let frame = Frame::RpcReq {
            corr,
            inner: Box::new(request),
        };
        if !self.ship_rpc(home, frame) {
            let mut table = self.rpc_pending.lock();
            table.remove(&corr);
            self.metrics.set_pending_rpcs(table.len() as u64);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!("peer {home} link unavailable for rpc"),
            ));
        }
        Ok(corr)
    }

    /// Evicts every *remote-homed* cached key, shipping dirty values back
    /// to their home shards over the `WriteBack` RPC, so the last
    /// committed write of each hot key is durable at a surviving process
    /// before this one exits. Bounded by `budget` — a key whose pending
    /// write cannot resolve (e.g. a peer down mid-drain) is skipped rather
    /// than hanging the shutdown. Returns the number of dirty values
    /// shipped.
    ///
    /// Locally-homed keys are left alone: their write-back target dies
    /// with this process either way (the KVS shard is in-memory), and the
    /// surviving replicas still cache their latest values.
    fn drain_dirty_writebacks(&self, budget: Duration) -> u64 {
        use symcache::EvictOutcome;
        let deadline = Instant::now() + budget;
        let node = &self.node;
        let mut retry: VecDeque<u64> = node
            .cache()
            .keys()
            .into_iter()
            .filter(|&key| !node.is_home(key))
            .collect();
        let mut drained = 0u64;
        while let Some(key) = retry.pop_front() {
            if Instant::now() >= deadline {
                break;
            }
            match node.cache().evict(key) {
                EvictOutcome::NotCached => {}
                EvictOutcome::Pending => {
                    // A local write is still collecting acks; give it a
                    // moment and come back.
                    std::thread::sleep(Duration::from_millis(1));
                    retry.push_back(key);
                }
                EvictOutcome::Evicted { dirty: false, .. } => {}
                EvictOutcome::Evicted {
                    value,
                    ts,
                    dirty: true,
                } => {
                    let home = node.home_node(key);
                    // The drain deadline caps each RPC's redial budget
                    // too: a dead home peer must not stretch one
                    // write-back to the full rpc_retry and blow the whole
                    // drain past the supervisor's SIGKILL patience.
                    if matches!(
                        self.rpc_until(home, &Frame::WriteBack { key, value, ts }, deadline),
                        Ok(Frame::WriteBackResp { .. })
                    ) {
                        self.metrics.record_writeback();
                        drained += 1;
                    }
                }
            }
        }
        drained
    }

    fn initiate_shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            // Wake every shard so it notices, drains its peers and exits.
            if let Some(shards) = self.shards.get() {
                for shard in shards {
                    shard.waker.wake();
                }
            }
            // Stop the admin service thread, queued behind outstanding
            // jobs, and fail every pending RPC so no continuation (or
            // blocking caller) is stranded waiting on a response that
            // will never be read.
            let _ = self.admin_tx.send(AdminJob::Stop);
            let pending: Vec<u64> = self.rpc_pending.lock().keys().copied().collect();
            for corr in pending {
                self.resolve_rpc(
                    corr,
                    Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "node shutting down",
                    )),
                );
            }
            let mut stopped = self.stopped.lock();
            *stopped = true;
            self.stopped_cv.notify_all();
        }
    }
}

/// A running networked ccKVS node.
pub struct NodeServer {
    inner: Arc<ServerInner>,
    shard_handles: Vec<std::thread::JoinHandle<()>>,
    applier_handle: Option<std::thread::JoinHandle<()>>,
    metrics_server: Option<MetricsServer>,
}

impl NodeServer {
    /// Binds the listener and starts the reactor. Peer links are not yet
    /// up: call [`NodeServer::connect_peers`] once every node of the
    /// deployment is listening.
    pub fn start(cfg: NodeServerConfig) -> io::Result<NodeServer> {
        if let Some(epochs) = &cfg.epochs {
            assert!(
                epochs.cache_entries <= cfg.node.cache_capacity,
                "epoch hot set ({} keys) exceeds cache capacity ({})",
                epochs.cache_entries,
                cfg.node.cache_capacity
            );
        }
        assert!(cfg.reactor.shards >= 1, "reactor needs at least one shard");
        assert!(
            cfg.node.nodes <= 64,
            "per-write ack bitmasks support up to 64 nodes"
        );
        // The transport binds the listener (for TCP with SO_REUSEADDR: a
        // supervisor restarting a crashed node rebinds the same port
        // while the dead process's connections may still linger in
        // TIME_WAIT; without the option the restart fails spuriously
        // with AddrInUse).
        let transport: Arc<dyn Transport> = cfg.transport.build();
        let listener = transport.listen(cfg.listen)?;
        let listen_addr = listener.local_addr()?;
        let nodes = cfg.node.nodes;
        let metrics = Arc::new(Metrics::new());
        metrics.set_reactor_shards(cfg.reactor.shards as u64);
        let (churn, flip_rx) = match cfg.epochs {
            Some(epochs) => {
                let (flip_tx, flip_rx) = unbounded();
                (
                    Some(Churn {
                        coord: Mutex::new(CacheCoordinator::new(epochs)),
                        observe_seq: AtomicU64::new(0),
                        sampling: epochs.sampling,
                        installed: Mutex::new(HashSet::new()),
                        reconfig: Mutex::new(()),
                        applied_epoch: AtomicU64::new(0),
                        flip_tx,
                    }),
                    Some(flip_rx),
                )
            }
            None => (None, None),
        };
        let (admin_tx, admin_rx) = unbounded();
        let me = cfg.node.node;
        let shard_count = cfg.reactor.shards;
        let sink = Arc::new(TraceSink::new(shard_count));
        let node = CcNode::new(cfg.node);
        let hot_fence_marks: HashSet<u64> = cfg
            .hot_fence
            .iter()
            .copied()
            .filter(|&key| node.is_home(key))
            .collect();
        let inner = Arc::new(ServerInner {
            node,
            metrics: Arc::clone(&metrics),
            listen_addr,
            running: AtomicBool::new(true),
            // A single-node deployment has no mesh to wait for.
            ready: AtomicBool::new(nodes == 1),
            stopped: Mutex::new(false),
            stopped_cv: Condvar::new(),
            tags: AtomicU64::new(1),
            cold_versions: AtomicU64::new(u64::from(cfg.cold_version_floor).max(1)),
            // Fenced-from-boot keys (crash recovery): only keys homed
            // here matter — the fence is a home-shard concept.
            hot_marks: Mutex::new(hot_fence_marks),
            churn,
            gen: process_generation(),
            peer_links: (0..nodes)
                .map(|peer| (peer != me).then(|| Arc::new(PeerLink::new(peer % shard_count))))
                .collect(),
            peer_in_gen: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            peer_recv_count: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            credit_doorbell: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            peer_addrs: Mutex::new(vec![listen_addr; nodes]),
            rpc_pending: Mutex::new(HashMap::new()),
            rpc_corr: AtomicU64::new(1),
            flow: cfg.flow,
            reactor: cfg.reactor,
            rpc_retry: cfg.rpc_retry,
            shards: OnceLock::new(),
            admin_tx,
            sink: Arc::clone(&sink),
            transport,
        });
        let metrics_server = match cfg.metrics_listen {
            Some(addr) => Some(crate::metrics::serve_http_traced(
                addr,
                format!("n{}", cfg.node.node),
                metrics,
                Some(sink),
            )?),
            None => None,
        };
        let applier_handle = match flip_rx {
            Some(rx) => {
                let applier_inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name(format!("cckvs-epochs-n{}", cfg.node.node))
                        .spawn(move || epoch_applier_loop(applier_inner, rx))?,
                )
            }
            None => None,
        };
        // The admin service thread: one detached thread serving the rare
        // blocking admin paths (Evict awaits a pending write's commit)
        // and sweeping pending-RPC deadlines. Detached so a job parked on
        // a commit that never resolves cannot hang teardown — it exits on
        // Stop poison.
        {
            let admin_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("cckvs-admin-n{}", cfg.node.node))
                .spawn(move || admin_loop(admin_inner, admin_rx))?;
        }
        // Build every shard's poller+waker before spawning any shard, so
        // the shard list is complete (and published) before the first
        // event fires.
        let mut pollers = Vec::with_capacity(cfg.reactor.shards);
        let mut shareds = Vec::with_capacity(cfg.reactor.shards);
        for _ in 0..cfg.reactor.shards {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, Token(TOKEN_WAKER))?;
            pollers.push(poller);
            shareds.push(Arc::new(ShardShared {
                waker,
                inbox: Mutex::new(Vec::new()),
            }));
        }
        inner
            .shards
            .set(shareds.clone())
            .unwrap_or_else(|_| unreachable!("shards set once"));
        let mut shard_handles = Vec::with_capacity(cfg.reactor.shards);
        let mut listener = Some(listener);
        for (id, poller) in pollers.into_iter().enumerate() {
            let shard_listener = if id == 0 { listener.take() } else { None };
            if let Some(l) = &shard_listener {
                poller.register(l.raw_fd(), Token(TOKEN_LISTENER), Interest::READ)?;
            }
            let shard_inner = Arc::clone(&inner);
            let shared = Arc::clone(&shareds[id]);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("cckvs-shard-n{}-{}", cfg.node.node, id))
                    .spawn(move || {
                        Shard::new(shard_inner, id, poller, shared, shard_listener).run()
                    })?,
            );
        }
        Ok(NodeServer {
            inner,
            shard_handles,
            applier_handle,
            metrics_server,
        })
    }

    /// The address clients and peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.listen_addr
    }

    /// The metrics endpoint address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(MetricsServer::addr)
    }

    /// The node's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The node's trace sink (drained by the metrics scraper when
    /// enabled; dumped over the wire via [`Frame::TraceDump`]).
    pub fn trace_sink(&self) -> Arc<TraceSink> {
        Arc::clone(&self.inner.sink)
    }

    /// The underlying node (diagnostics).
    pub fn node(&self) -> &CcNode {
        &self.inner.node
    }

    /// Dials the one-way protocol link to every peer, retrying for up to
    /// `timeout` per peer (nodes of a rack boot concurrently). `addrs` is
    /// indexed by node id and must include this node's own entry.
    pub fn connect_peers(&mut self, addrs: &[SocketAddr], timeout: Duration) -> io::Result<()> {
        assert_eq!(
            addrs.len(),
            self.inner.node.config().nodes,
            "one address per node"
        );
        *self.inner.peer_addrs.lock() = addrs.to_vec();
        let me = self.inner.node.node();
        for (peer, &addr) in addrs.iter().enumerate() {
            if peer == me {
                continue;
            }
            // Full reconnect handshake, retried until the peer is up (the
            // nodes of a rack boot concurrently) or the timeout runs out.
            let deadline = Instant::now() + timeout;
            let stream = loop {
                match self.inner.dial_peer_handshake(peer, addr) {
                    Ok(stream) => break stream,
                    Err(e) if Instant::now() >= deadline => return Err(e),
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            };
            let link = self.inner.link(peer);
            self.inner
                .shard(link.shard)
                .send(ShardMsg::AdoptPeerOut { peer, stream });
        }
        // Release the parked connections: incoming traffic accepted during
        // boot has been waiting in decode buffers (and TCP), never dropped
        // or served against a half-wired mesh.
        self.inner.ready.store(true, Ordering::Release);
        for shard in self.inner.shards.get().expect("shards wired") {
            shard.waker.wake();
        }
        Ok(())
    }

    /// Asks the server to stop accepting connections and shut down.
    pub fn initiate_shutdown(&self) {
        self.inner.initiate_shutdown();
    }

    /// A cheap handle for out-of-band shutdown paths (signal watchers):
    /// lets a thread that does not own the server drain write-backs and
    /// initiate shutdown while the owning thread blocks in
    /// [`NodeServer::wait`].
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Graceful-exit drain (the SIGTERM path): see
    /// [`ShutdownHandle::drain_dirty_writebacks`].
    pub fn drain_dirty_writebacks(&self, budget: Duration) -> u64 {
        self.inner.drain_dirty_writebacks(budget)
    }

    /// Blocks until the server shuts down (via [`Frame::Shutdown`] from a
    /// client or [`NodeServer::initiate_shutdown`]), then tears down the
    /// reactor.
    pub fn wait(mut self) {
        {
            let mut stopped = self.inner.stopped.lock();
            while !*stopped {
                self.inner.stopped_cv.wait(&mut stopped);
            }
        }
        self.teardown();
    }

    /// Shuts the server down and joins the reactor threads.
    pub fn shutdown(mut self) {
        self.inner.initiate_shutdown();
        self.teardown();
    }

    fn teardown(&mut self) {
        self.inner.initiate_shutdown();
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.applier_handle.take() {
            if let Some(churn) = &self.inner.churn {
                let _ = churn.flip_tx.send(FlipJob::Shutdown);
            }
            let _ = handle.join();
        }
        if let Some(server) = self.metrics_server.take() {
            server.shutdown();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Out-of-band shutdown handle (see [`NodeServer::shutdown_handle`]).
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: Arc<ServerInner>,
}

impl ShutdownHandle {
    /// Graceful-exit drain: ships dirty remote-homed cached values back to
    /// their home shards within `budget`; returns how many were shipped.
    pub fn drain_dirty_writebacks(&self, budget: Duration) -> u64 {
        self.inner.drain_dirty_writebacks(budget)
    }

    /// Asks the server to stop accepting connections and shut down
    /// (unblocks [`NodeServer::wait`]).
    pub fn initiate_shutdown(&self) {
        self.inner.initiate_shutdown();
    }
}

/// A value unique to one life of this process, monotone across restarts
/// (wall-clock nanoseconds): the peer-link generation stamp. A restarted
/// node presents a *higher* generation, which is how peers distinguish it
/// from its dead predecessor's stale connections.
///
/// Assumption: the host clock does not step *backwards* across a restart
/// (slewing is fine — restarts take well over any slew). A step-back
/// larger than the gap would make peers reject the replacement's hellos
/// as stale until wall clock passes the predecessor's stamp; deployments
/// with step-prone clocks should discipline them (the usual NTP setup
/// slews).
fn process_generation() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
        .max(1)
}

/// What serving one client frame asks of the connection state machine.
enum ClientAction {
    /// Send this response.
    Respond(Frame),
    /// The client asked the node to shut down; end the connection.
    Shutdown,
}

/// Splits a trace envelope off a frame (identity for untraced frames).
fn peel_trace(frame: Frame) -> (Option<u64>, Frame) {
    match frame {
        Frame::Traced { id, inner } => (Some(id), *inner),
        frame => (None, frame),
    }
}

/// The key a client frame refers to, for trace event annotation.
fn frame_key(frame: &Frame) -> u64 {
    match frame {
        Frame::Get { key } | Frame::Put { key, .. } => *key,
        _ => 0,
    }
}

/// Re-wraps a peeled frame in its trace envelope for a path that carries
/// frames, not `(trace, frame)` pairs.
fn rewrap_trace(trace: Option<u64>, frame: Frame) -> Frame {
    match trace {
        Some(id) => Frame::Traced {
            id,
            inner: Box::new(frame),
        },
        None => frame,
    }
}

/// Serves one *never-blocking* client frame: liveness, diagnostics and
/// the lock-protected cache-fill admin. Get/Put and the reconfiguration
/// admin frames (Evict, FlipEpoch) have continuation-based paths in
/// [`Shard::step_client`] — nothing here may wait on another message.
fn serve_inline_frame(inner: &ServerInner, frame: Frame) -> io::Result<ClientAction> {
    let response = match frame {
        Frame::TraceDump => Frame::TraceDumpResp {
            dropped: inner.sink.dropped(),
            events: inner.sink.dump(),
        },
        Frame::InstallHot {
            key,
            value,
            ts,
            warm,
        } => {
            let ok = if warm {
                inner.node.install_hot_warm(key, &value, ts)
            } else {
                inner.node.install_hot(key, &value, ts)
            };
            if ok {
                // Coordinator bookkeeping: the key joined the hot set.
                if let Some(churn) = &inner.churn {
                    churn.installed.lock().insert(key);
                }
            }
            Frame::InstallHotResp { ok }
        }
        Frame::ActivateHot { key } => Frame::ActivateHotResp {
            ok: inner.node.activate_hot(key),
        },
        Frame::Ping => Frame::Pong,
        Frame::VersionFloor => Frame::VersionFloorResp {
            clock: inner.cold_versions.load(Ordering::Relaxed) as u32,
        },
        Frame::CacheKeys => Frame::CacheKeysResp {
            keys: inner.node.cache().keys(),
        },
        Frame::Shutdown => {
            inner.initiate_shutdown();
            return Ok(ClientAction::Shutdown);
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected client frame {other:?}"),
            ))
        }
    };
    Ok(ClientAction::Respond(response))
}

/// How long an operation keeps retrying while its key transitions into or
/// out of the hot set before giving up (transitions take milliseconds;
/// this bound only matters if the coordinator dies mid-reconfiguration).
const HOT_TRANSITION_RETRY: Duration = Duration::from_secs(5);

/// First bounce-retry delay for an op whose key is mid-transition
/// (stalled cache entry, `MissRetry` answer); doubles up to
/// [`RETRY_BACKOFF_MAX`] per attempt. Stalls are usually just a Lin
/// write's invalidation window (~100µs of ack wait), so the first
/// retries ride the timer wheel's 50µs fine slots — a read that lands
/// mid-write resumes with the update instead of idling a full coarse
/// tick (1 ms, the old floor, which put a millisecond into the batched
/// read tail every time one op of a batch grazed a write).
const RETRY_BACKOFF_START: Duration = Duration::from_micros(50);
const RETRY_BACKOFF_MAX: Duration = Duration::from_millis(2);

/// Handles one non-batch frame arriving on a peer link. Returns how many
/// flow-controlled messages it consumed (credit confirmations themselves
/// are free: they must flow even when the window is closed).
fn deliver_peer_frame(
    inner: &ServerInner,
    shard: usize,
    from: usize,
    frame: Frame,
) -> io::Result<u64> {
    let (trace, frame) = peel_trace(frame);
    match frame {
        Frame::Protocol { msg, bytes } => {
            inner.metrics.record_protocol_in(1);
            if trace.is_some() {
                let kind = match msg {
                    // The ack landing at the blocked writer is its own
                    // span point: the per-peer gap between the
                    // invalidation send and this arrival is the ack wait.
                    ProtocolMsg::Ack { .. } => EventKind::AckRecv,
                    _ => EventKind::ProtocolRecv,
                };
                inner.trace_event(trace, shard as u8, kind, msg.key(), from as u8);
            }
            // Anything this delivery fans out (the ack answering an
            // invalidation, the commit update ending a round) inherits
            // the trace id — causality crosses the node boundary.
            let outgoing = inner.node.deliver(&msg, bytes.as_deref());
            inner.ship_traced(outgoing, trace);
            Ok(1)
        }
        Frame::Credit { cum, gen } => {
            // A cumulative confirmation of our own sends toward `from`.
            // Confirmations stamped with a different generation were
            // addressed to this node's dead predecessor — their counts
            // refer to its numbering and must not trim our retained tail.
            if gen != inner.gen {
                return Ok(0);
            }
            let link = inner.link(from);
            let mut unacked = link.unacked.lock();
            let sent = link.sent_seq.load(Ordering::Acquire);
            let acked = link.acked_seq.load(Ordering::Acquire);
            if cum > sent {
                // Provably impossible confirmation: stale or corrupt.
                return Ok(0);
            }
            if cum > acked {
                for _ in 0..(cum - acked).min(unacked.len() as u64) {
                    unacked.pop_front();
                }
                link.acked_seq.store(cum, Ordering::Release);
            }
            Ok(0)
        }
        Frame::RpcReq { corr, inner: req } => {
            // A correlated miss-path request multiplexed over the peer
            // link: serve it right here (every handler is a lock-protected
            // state update) and queue the answer on our own outgoing link.
            // A malformed inner frame answers Error instead of erroring
            // the whole link — the link carries unrelated traffic.
            let response = match serve_rpc_frame(inner, shard as u8, *req) {
                Ok(frame) => frame,
                Err(e) => Frame::Error {
                    message: e.to_string(),
                },
            };
            let resp = Frame::RpcResp {
                corr,
                inner: Box::new(response),
            };
            // A failed ship (link long-dead, park overflowed) drops the
            // answer; the requester's deadline sweep picks up the pieces.
            let _ = inner.ship_rpc(from, resp);
            Ok(1)
        }
        Frame::RpcResp { corr, inner: resp } => {
            inner.resolve_rpc(corr, Ok(*resp));
            Ok(1)
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected peer frame {other:?}"),
        )),
    }
}

/// Serves one miss-path RPC frame. Every arm is a lock-protected state
/// update that never waits on another message, which is what allows RPC
/// links to be served inline on a reactor shard.
fn serve_rpc_frame(inner: &ServerInner, lane: u8, frame: Frame) -> io::Result<Frame> {
    let (trace, frame) = peel_trace(frame);
    if trace.is_some() {
        let key_hint = match &frame {
            Frame::MissGet { key }
            | Frame::MissPut { key, .. }
            | Frame::WriteBack { key, .. }
            | Frame::HotMark { key }
            | Frame::HotUnmark { key } => *key,
            _ => 0,
        };
        inner.trace_event(trace, lane, EventKind::ProtocolRecv, key_hint, NO_PEER);
    }
    Ok(match frame {
        Frame::MissGet { key } => match inner.cold_get(key) {
            Some(value) => Frame::MissGetResp { value },
            // Key mid-transition: during an eviction the freshest value
            // may still be in flight from a dirty replica.
            None => Frame::MissRetry,
        },
        Frame::MissPut {
            key,
            tag: _,
            writer: writer_id,
            value,
        } => {
            // Home-assigned version: arrival order at the single home
            // shard is the write order for cold keys (the sender's tag
            // is ignored — see `serve_put`).
            match inner.cold_put(key, &value, writer_id) {
                ColdPut::Applied(ts) => Frame::MissPutResp { ts },
                ColdPut::Busy => Frame::MissRetry,
                ColdPut::Rejected(message) => Frame::Error { message },
            }
        }
        Frame::WriteBack { key, value, ts } => {
            // A peer evicted its dirty copy of a key homed here. Apply
            // versioned (every replica offers its copy; the newest
            // wins) and push the cold counter past it so later cold
            // writes supersede the written-back value.
            inner.bump_cold_versions(ts.clock);
            match inner.node.write_back(key, &value, ts) {
                Ok(applied) => Frame::WriteBackResp { applied },
                Err(e) => Frame::Error {
                    message: format!("write-back of key {key} rejected by home shard: {e:?}"),
                },
            }
        }
        Frame::HotMark { key } => {
            // Atomically close the cold write path for this key and
            // read the authoritative value+version the caches will be
            // filled with.
            let mut marks = inner.hot_marks.lock();
            marks.insert(key);
            let (value, ts) = inner.node.kvs_get_versioned(key);
            drop(marks);
            inner.bump_cold_versions(ts.clock);
            Frame::HotMarkResp { value, ts }
        }
        Frame::HotUnmark { key } => {
            inner.hot_marks.lock().remove(&key);
            Frame::HotUnmarkResp
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected rpc frame {other:?}"),
            ))
        }
    })
}

/// The admin service thread: serves the rare blocking admin jobs (an
/// Evict awaits the evicted key's pending write, then write-back RPCs
/// toward the home shard) and sweeps the pending-RPC table for entries
/// past their transport deadline. One detached thread — admin traffic is
/// reconfiguration-rate, not request-rate — and a lane of its own, so an
/// epoch flip on the applier thread can nest Evict RPCs back into this
/// node without deadlocking.
fn admin_loop(inner: Arc<ServerInner>, rx: Receiver<AdminJob>) {
    loop {
        match rx.recv_timeout(RPC_SWEEP_TICK) {
            Ok(AdminJob::Stop) => return,
            Ok(AdminJob::Evict { shard, token, key }) => {
                let result = inner
                    .evict_key(key)
                    .map(|existed| Frame::EvictResp { existed });
                inner.shard(shard).send(ShardMsg::Resume {
                    token,
                    sent_at: Instant::now(),
                    event: ResumeEvent::Admin { result },
                });
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => inner.sweep_rpc_deadlines(),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The coordinator's reconfiguration thread: applies hot sets published by
/// the popularity tracker, coalescing a backlog of timer-driven flips to
/// the newest set. A client-forced flip ([`FlipJob::Forced`]) is never
/// coalesced — each one answers exactly one suspended client connection.
/// Errors on the timer path are swallowed deliberately — the
/// installed-set bookkeeping lives in the admin handlers, so a partially
/// applied epoch simply leaves a smaller delta for the next one (the
/// system converges instead of wedging).
fn epoch_applier_loop(inner: Arc<ServerInner>, rx: Receiver<FlipJob>) {
    let mut lookahead: Option<FlipJob> = None;
    loop {
        let job = match lookahead.take() {
            Some(job) => job,
            None => match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            },
        };
        match job {
            FlipJob::Shutdown => return,
            FlipJob::Forced { hot, shard, token } => {
                let response = match inner.apply_hot_set(&hot) {
                    Ok((installed, evicted)) => Frame::FlipEpochResp {
                        epoch: hot.epoch,
                        installed: installed as u32,
                        evicted: evicted as u32,
                    },
                    Err(e) => Frame::Error {
                        message: format!("epoch flip failed: {e}"),
                    },
                };
                inner.shard(shard).send(ShardMsg::Resume {
                    token,
                    sent_at: Instant::now(),
                    event: ResumeEvent::Admin {
                        result: Ok(response),
                    },
                });
            }
            FlipJob::Apply(hot) => {
                let mut latest = hot;
                while let Ok(next) = rx.try_recv() {
                    match next {
                        FlipJob::Apply(newer) => latest = newer,
                        other => {
                            lookahead = Some(other);
                            break;
                        }
                    }
                }
                let _ = inner.apply_hot_set(&latest);
            }
        }
    }
}

fn unexpected_frame(what: &str, frame: &Frame) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected {what} response {frame:?}"),
    )
}

// ---------------------------------------------------------------------------
// The reactor shard: one event loop owning a subset of the node's sockets.
// ---------------------------------------------------------------------------

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 16;

/// A client request parked mid-execution on its owning shard. This is
/// the continuation that replaced the worker-pool handoff: instead of a
/// parked thread, the suspended state is a few dozen bytes on the
/// connection, and the event that ends the wait (the final Lin ack, the
/// RPC response frame, a wheel tick, the admin job's result) finds the
/// connection through its token and resumes it in place.
struct Suspended {
    /// Responses produced so far (request *k*'s response sits at
    /// position *k*; empty for a non-batch request).
    done: Vec<Frame>,
    /// Sub-frames not yet started.
    rest: VecDeque<Frame>,
    /// The request arrived as a [`Frame::Batch`] (decides the response
    /// shape — one coalesced batch vs. a bare frame).
    batch: bool,
    /// Trace id of the sub-request currently in flight.
    trace: Option<u64>,
    /// The sub-request currently being served.
    op: PendingOp,
    /// What it is waiting for.
    wait: Wait,
    /// Give-up deadline for hot-transition bounces of the current op.
    deadline: Instant,
    /// Next bounce-retry delay (doubles per bounce).
    backoff: Duration,
    /// The current op's one-per-logical-op metrics (op count, popularity
    /// observation) have been recorded, however many retries follow.
    counted: bool,
    /// Miss-path reads of this batch whose [`Frame::MissGet`] RPCs were
    /// issued ahead of their turn, so cold reads overlap instead of
    /// paying one serialized peer round-trip each. Responses that arrive
    /// before their sub-request runs park here; the sub-request consumes
    /// them inline.
    prefetch: Vec<PrefetchSlot>,
}

/// One prefetched miss-path read of a batched request.
struct PrefetchSlot {
    key: u64,
    corr: u64,
    state: PrefetchState,
}

enum PrefetchState {
    /// The RPC is in flight; the sub-request parks on `corr` when it
    /// runs (no second RPC is issued).
    InFlight,
    /// The response landed before the sub-request ran.
    Arrived(Frame),
    /// The RPC failed past the redial budget; surfaced to the client as
    /// a protocol error exactly like the non-prefetched path.
    Failed(String),
}

/// The operation a [`Suspended`] request is executing.
enum PendingOp {
    Get {
        key: u64,
    },
    Put {
        key: u64,
        value: Vec<u8>,
    },
    /// Evict: dispatched to the admin service thread (it awaits the
    /// pending write of the evicted key); the resume event carries the
    /// complete response.
    Evict {
        key: u64,
    },
    /// FlipEpoch: the epoch is closed on-shard, the evict/install sweep
    /// runs on the epoch applier thread.
    Flip,
    /// A never-blocking frame ([`serve_inline_frame`]'s class), served on
    /// the spot at first attempt.
    Other(Frame),
}

impl PendingOp {
    /// The key the op refers to, for trace annotation and error text.
    fn key(&self) -> u64 {
        match self {
            PendingOp::Get { key } | PendingOp::Put { key, .. } | PendingOp::Evict { key } => *key,
            PendingOp::Flip | PendingOp::Other(_) => 0,
        }
    }
}

/// What a [`Suspended`] request is waiting for.
enum Wait {
    /// Nothing — attempt (or re-attempt) the op on the next step.
    Runnable,
    /// The Lin write `(key, ts)` is collecting acks; the shard that
    /// delivers the final one fires [`ResumeEvent::Committed`] through
    /// the registered commit hook.
    LinCommit { ts: Timestamp, started: Instant },
    /// A correlated miss-path RPC is in flight toward the key's home.
    Rpc { corr: u64 },
    /// A hot-transition bounce armed a wheel tick; re-attempt when it
    /// fires.
    Retry,
    /// An admin job (Evict on the service thread, a forced epoch flip on
    /// the applier) is running off-shard.
    Admin,
}

/// One attempt at a [`PendingOp`]: what the op did this probe.
enum Attempt {
    /// Finished with this response.
    Respond(Frame),
    /// Parked; the wait's wake event re-enters the state machine.
    Park(Wait),
    /// The key is mid-transition (stalled entry, busy home shard):
    /// bounce — retry after a wheel tick, or give up past the deadline.
    Bounce,
    /// Protocol violation or unrecoverable failure: close the connection.
    Fail,
}

/// What a connection is for, decided by its hello frame.
enum Role {
    /// Hello not yet received.
    Handshake,
    /// A client request/response session.
    Client {
        /// Decoded requests waiting their turn (one request in flight at
        /// a time keeps responses in request order).
        pending: VecDeque<Frame>,
        /// The request currently parked mid-execution, if any. Boxed:
        /// most connections are between requests most of the time.
        suspended: Option<Box<Suspended>>,
    },
    /// An incoming protocol link from peer `from` whose hello was answered;
    /// the peer's [`Frame::PeerResume`] (aligning the processed counter)
    /// has not arrived yet.
    PeerInResume { from: usize },
    /// An incoming one-way protocol link from peer `from`.
    PeerIn { from: usize },
    /// An incoming miss-path RPC link.
    Rpc,
    /// The outgoing protocol link to `peer`.
    PeerOut {
        peer: usize,
        link: Arc<PeerLink>,
        builder: BatchBuilder,
        /// When the current credit stall began (metrics).
        stall_started: Option<Instant>,
        /// The cumulative processed count last confirmed toward the peer
        /// (dedupes piggybacked [`Frame::Credit`] frames; re-announcing is
        /// harmless, cumulative confirmations are idempotent).
        last_cum: u64,
        /// Adaptive bulk-batch controller for this link.
        cork: AdaptiveCork,
    },
}

/// Per-link adaptive batching state: widens bulk batches under load and
/// shrinks toward immediate flush when idle. The controller estimates the
/// link's bulk arrival rate with an EWMA (time constant [`CORK_RATE_TAU`])
/// and targets the batch one [`FlowConfig::max_delay`] of arrivals would
/// fill — so under load a cork fills to the target and flushes `full`
/// within the deadline anyway, while an idle link's target decays to 1
/// and every bulk message flushes immediately (`idle`). A partially
/// filled cork whose oldest message has waited `max_delay` flushes on the
/// fine-timer `deadline` path. Owned by the link's `Role::PeerOut`, so no
/// locking: only the owning shard's pump touches it.
struct AdaptiveCork {
    /// When the oldest currently corked bulk item began waiting.
    since: Option<Instant>,
    /// EWMA of bulk arrivals per second on this link.
    rate: f64,
    /// `PeerLink::bulk_arrivals` as of the last rate sample.
    last_arrivals: u64,
    /// When the last rate sample was taken.
    last_sample: Instant,
}

/// Why a bulk cork flushed (the `cork_flush_total` metric labels).
#[derive(Clone, Copy)]
enum CorkFlush {
    /// The adaptive target size (or the batch byte budget) was reached.
    Full,
    /// The oldest corked message waited out `max_delay`.
    Deadline,
    /// The link is idle (target decayed to 1): immediate flush.
    Idle,
}

impl AdaptiveCork {
    fn new() -> Self {
        Self {
            since: None,
            rate: 0.0,
            last_arrivals: 0,
            last_sample: Instant::now(),
        }
    }

    /// Folds the arrival counter into the rate EWMA and returns the
    /// current target bulk-batch size in `[1, max_ops]`.
    fn target(&mut self, arrivals: u64, max_ops: u64, max_delay: Duration) -> u64 {
        let dt = self.last_sample.elapsed();
        // Sample no finer than the fine-timer slot: the pump runs every
        // loop lap, and instantaneous rates over sub-µs windows are noise.
        if dt >= reactor::FINE_RESOLUTION {
            let n = arrivals.saturating_sub(self.last_arrivals);
            let inst = n as f64 / dt.as_secs_f64();
            let alpha = dt.as_secs_f64() / (dt + CORK_RATE_TAU).as_secs_f64();
            self.rate += alpha * (inst - self.rate);
            self.last_arrivals = arrivals;
            self.last_sample = Instant::now();
        }
        ((self.rate * max_delay.as_secs_f64()).round() as u64).clamp(1, max_ops.max(1))
    }
}

/// What [`Shard::step`] decided about a connection.
enum StepOutcome {
    /// Keep the connection registered on this shard.
    Keep,
    /// Close the connection.
    Close,
    /// An incoming peer link that must live on `target` (see
    /// [`Shard::accept_peer_hello`]): move the connection there with its
    /// decoded hello.
    Migrate {
        target: usize,
        from: usize,
        gen: u64,
    },
}

/// One nonblocking connection owned by a shard.
struct ConnState {
    stream: Box<dyn Connection>,
    decoder: FrameDecoder,
    writebuf: WriteBuf,
    interest: Interest,
    role: Role,
    /// The peer closed its half (read returned 0).
    eof: bool,
    /// A fatal I/O or protocol error occurred; close on next advance.
    dead: bool,
    /// A timer-wheel tick is armed for this connection (credit stall,
    /// parked-for-ready re-check or a bounce retry); dedupes arming.
    tick_armed: bool,
    /// Wake events delivered for this connection's suspended request
    /// (commit fired, RPC resolved, admin job done), drained by
    /// [`Shard::step_client`].
    resumes: VecDeque<ResumeEvent>,
}

impl ConnState {
    fn new(stream: Box<dyn Connection>, role: Role) -> ConnState {
        ConnState {
            stream,
            decoder: FrameDecoder::new(),
            writebuf: WriteBuf::new(),
            interest: Interest::READ,
            role,
            eof: false,
            dead: false,
            tick_armed: false,
            resumes: VecDeque::new(),
        }
    }
}

struct Shard {
    inner: Arc<ServerInner>,
    id: usize,
    poller: Poller,
    shared: Arc<ShardShared>,
    listener: Option<Box<dyn TransportListener>>,
    conns: HashMap<u64, Box<ConnState>>,
    /// Tokens of peer-out connections on this shard (pumped every
    /// iteration; there are at most `nodes - 1` across all shards).
    peer_out_tokens: Vec<u64>,
    next_token: u64,
    /// Round-robin accept target across shards (shard 0 only).
    next_shard: usize,
    wheel: reactor::TimerWheel,
    /// Shared read scratch: one hot buffer for every connection's socket
    /// reads, instead of a cold 64 KB tail per connection per read.
    scratch: Vec<u8>,
}

impl Shard {
    fn new(
        inner: Arc<ServerInner>,
        id: usize,
        poller: Poller,
        shared: Arc<ShardShared>,
        listener: Option<Box<dyn TransportListener>>,
    ) -> Shard {
        Shard {
            inner,
            id,
            poller,
            shared,
            listener,
            conns: HashMap::new(),
            peer_out_tokens: Vec::new(),
            next_token: TOKEN_FIRST_CONN,
            next_shard: 0,
            wheel: reactor::TimerWheel::new(),
            scratch: vec![0u8; reactor::READ_CHUNK],
        }
    }

    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        while self.inner.running.load(Ordering::SeqCst) {
            let timeout = self.wheel.next_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                continue;
            }
            self.shared.waker.drain();
            if !self.inner.running.load(Ordering::SeqCst) {
                break;
            }
            // Loop-lap: time spent processing one wakeup's worth of work
            // (poll wait excluded) — the reactor's headroom gauge.
            let lap_started = Instant::now();
            let mut dirty: Vec<u64> = Vec::new();
            let mut accept = false;
            for event in events.iter() {
                match event.token.0 {
                    TOKEN_WAKER => {}
                    TOKEN_LISTENER => accept = true,
                    token => {
                        self.handle_io(token, event.readable, event.writable, event.closed);
                        dirty.push(token);
                    }
                }
            }
            if accept {
                self.accept_burst(&mut dirty);
            }
            self.drain_inbox(&mut dirty);
            for token in self.wheel.expired() {
                if let Some(conn) = self.conns.get_mut(&token.0) {
                    conn.tick_armed = false;
                    dirty.push(token.0);
                }
            }
            // Peer-out links are few and cheap to pump; doing it every
            // iteration means a wake for "some protocol traffic shipped"
            // needs no per-outbox bookkeeping.
            dirty.extend(self.peer_out_tokens.iter().copied());
            dirty.sort_unstable();
            dirty.dedup();
            for token in dirty {
                self.advance(token);
            }
            self.inner
                .metrics
                .record_loop_lap_ns(lap_started.elapsed().as_nanos() as u64);
        }
        self.teardown();
    }

    /// Reads/writes as much as the socket allows right now; protocol
    /// progress happens in `advance`.
    fn handle_io(&mut self, token: u64, readable: bool, writable: bool, closed: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if closed {
            conn.dead = true;
            return;
        }
        if writable && !conn.writebuf.is_empty() {
            match conn.writebuf.flush_to(&mut conn.stream) {
                Ok(_) => {}
                Err(_) => conn.dead = true,
            }
        }
        if readable {
            // One bounded read per readiness event; level-triggered epoll
            // re-fires while the socket holds more.
            match conn.decoder.fill_via(&mut conn.stream, &mut self.scratch) {
                Ok(Some(0)) => conn.eof = true,
                Ok(_) => {}
                Err(_) => conn.dead = true,
            }
        }
    }

    fn accept_burst(&mut self, dirty: &mut Vec<u64>) {
        let shard_count = self.inner.reactor.shards;
        loop {
            let accepted = match self.listener.as_mut() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                // The transport tuned the connection (nonblocking, nodelay
                // for TCP) before surfacing it.
                Ok(Some(stream)) => {
                    if !self.inner.running.load(Ordering::SeqCst) {
                        return;
                    }
                    let target = self.next_shard % shard_count;
                    self.next_shard = self.next_shard.wrapping_add(1);
                    if target == self.id {
                        if let Some(token) = self.register(stream, Role::Handshake) {
                            dirty.push(token);
                        }
                    } else {
                        self.inner.shard(target).send(ShardMsg::NewConn(stream));
                    }
                }
                Ok(None) => return,
                // Transient accept errors (ECONNABORTED, EMFILE, ...) must
                // not take a healthy node offline; the listener stays
                // registered and the next readiness event retries.
                Err(_) => return,
            }
        }
    }

    fn drain_inbox(&mut self, dirty: &mut Vec<u64>) {
        let msgs = std::mem::take(&mut *self.shared.inbox.lock());
        for msg in msgs {
            match msg {
                ShardMsg::NewConn(stream) => {
                    if let Some(token) = self.register(stream, Role::Handshake) {
                        dirty.push(token);
                    }
                }
                ShardMsg::AdoptPeerOut { peer, stream } => {
                    let link = Arc::clone(self.inner.link(peer));
                    if let Some(token) = self.register(
                        stream,
                        Role::PeerOut {
                            peer,
                            link: Arc::clone(&link),
                            builder: BatchBuilder::new(),
                            stall_started: None,
                            last_cum: 0,
                            cork: AdaptiveCork::new(),
                        },
                    ) {
                        link.up.store(true, Ordering::Release);
                        self.inner.refresh_parked();
                        self.peer_out_tokens.push(token);
                        dirty.push(token);
                    } else {
                        // Registration failed: the link stays down and the
                        // redial thread tries again.
                        self.inner.peer_link_down(peer);
                    }
                }
                ShardMsg::AdoptPeerIn {
                    mut conn,
                    from,
                    gen,
                } => {
                    // Migrated from the accepting shard: run the hello
                    // processing here, where it is ordered with every
                    // other connection of this peer. Any tick armed on the
                    // old shard's wheel no longer applies.
                    conn.tick_armed = false;
                    if self.accept_peer_hello(&mut conn, from, gen) {
                        if let Some(token) = self.adopt(conn) {
                            dirty.push(token);
                        }
                    }
                }
                ShardMsg::Resume {
                    token,
                    sent_at,
                    event,
                } => {
                    // The connection may be gone (client hung up mid-wait):
                    // the event is dropped, exactly as a response write to
                    // a dead socket would have been.
                    if let Some(conn) = self.conns.get_mut(&token) {
                        self.inner
                            .metrics
                            .record_continuation_fire_ns(sent_at.elapsed().as_nanos() as u64);
                        conn.resumes.push_back(event);
                        dirty.push(token);
                    }
                }
            }
        }
    }

    fn register(&mut self, stream: Box<dyn Connection>, role: Role) -> Option<u64> {
        self.adopt(Box::new(ConnState::new(stream, role)))
    }

    /// Registers an already-built connection state (fresh, or migrated
    /// from another shard with decode-buffer residue) with this shard's
    /// poller.
    fn adopt(&mut self, conn: Box<ConnState>) -> Option<u64> {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(conn.stream.raw_fd(), Token(token), Interest::READ)
            .is_err()
        {
            return None;
        }
        self.inner.metrics.record_conn_opened();
        self.conns.insert(token, conn);
        Some(token)
    }

    /// Drives one connection's state machine as far as it can go.
    fn advance(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        match self.step(token, &mut conn) {
            StepOutcome::Migrate { target, from, gen } => {
                // Hand the connection (with its decode-buffer residue) to
                // the shard that owns every connection of this peer. The
                // open-connection gauge transfers with it.
                self.poller.deregister(conn.stream.raw_fd());
                self.inner.metrics.record_conn_closed();
                self.inner
                    .shard(target)
                    .send(ShardMsg::AdoptPeerIn { conn, from, gen });
            }
            StepOutcome::Close => self.close(token, *conn),
            StepOutcome::Keep if conn.dead => self.close(token, *conn),
            StepOutcome::Keep => {
                self.refresh_interest(token, &mut conn);
                self.conns.insert(token, conn);
            }
        }
    }

    fn step(&mut self, token: u64, conn: &mut ConnState) -> StepOutcome {
        if conn.dead {
            return StepOutcome::Close;
        }
        // Hello first: the first complete frame decides the role.
        if matches!(conn.role, Role::Handshake) {
            match conn.decoder.next_frame() {
                Ok(Some(Frame::ClientHello)) => {
                    // Client sessions move ~100-byte frames and modest
                    // request batches: cap the kernel socket buffers so
                    // thousands of connections stay cache-resident (peer
                    // links, which move 1 MiB coherence batches, keep
                    // kernel defaults). Best-effort.
                    let _ = reactor::set_socket_buffers(
                        conn.stream.raw_fd(),
                        crate::client::CONN_KERNEL_BUF_BYTES,
                    );
                    conn.role = Role::Client {
                        pending: VecDeque::new(),
                        suspended: None,
                    };
                }
                Ok(Some(Frame::PeerHello { from, gen })) => {
                    let from = usize::from(from);
                    if from >= self.inner.node.config().nodes || gen == 0 {
                        return StepOutcome::Close;
                    }
                    // Hello processing must run on the shard that owns
                    // every connection of this peer (`from % shards`, the
                    // same shard as the outgoing link): processed-count
                    // reporting and stale-connection teardown are then
                    // serialised with frame processing, which is what
                    // makes replay exactly-once.
                    let owner = from % self.inner.reactor.shards;
                    if owner != self.id {
                        return StepOutcome::Migrate {
                            target: owner,
                            from,
                            gen,
                        };
                    }
                    if !self.accept_peer_hello(conn, from, gen) {
                        return StepOutcome::Close;
                    }
                }
                Ok(Some(Frame::RpcHello { .. })) => conn.role = Role::Rpc,
                Ok(Some(_)) | Err(_) => return StepOutcome::Close,
                Ok(None) => {
                    return if conn.eof {
                        StepOutcome::Close
                    } else {
                        StepOutcome::Keep
                    }
                }
            }
        }
        // Park every serving role until the outbound peer mesh is wired:
        // serving a Lin put earlier would drop its invalidations (the
        // peer links don't exist yet) and hang the client forever, and a
        // miss-path RPC would dial a placeholder peer address. (The peer
        // handshake above is exempt — it IS how the mesh gets wired.)
        let ready = self.inner.ready.load(Ordering::Acquire);
        if !ready && !matches!(conn.role, Role::PeerOut { .. }) {
            if !conn.tick_armed {
                self.wheel.schedule(Token(token), CREDIT_STALL_TICK);
                conn.tick_armed = true;
            }
            return StepOutcome::Keep;
        }
        let close = if matches!(conn.role, Role::Client { .. }) {
            self.step_client(token, conn)
        } else if matches!(conn.role, Role::PeerInResume { .. }) {
            self.step_peer_resume(conn)
        } else if matches!(conn.role, Role::PeerIn { .. }) {
            self.step_peer_in(conn)
        } else if matches!(conn.role, Role::Rpc) {
            self.step_rpc(conn)
        } else {
            self.pump_peer_out(token, conn)
        };
        if close {
            StepOutcome::Close
        } else {
            StepOutcome::Keep
        }
    }

    /// Serves a [`Frame::PeerHello`] on the shard that owns the peer's
    /// connections: rejects stale generations, tears down this peer's
    /// older incoming connections (their buffered frames must not advance
    /// the processed counter after it is reported), detects a restarted
    /// peer, and answers with the processed-count report the dialer
    /// reconciles its replay against.
    fn accept_peer_hello(&mut self, conn: &mut ConnState, from: usize, gen: u64) -> bool {
        let inner = &self.inner;
        let cur = inner.peer_in_gen[from].load(Ordering::Acquire);
        if gen < cur {
            return false; // A connection from the peer's dead predecessor.
        }
        for other in self.conns.values_mut() {
            if matches!(
                &other.role,
                Role::PeerIn { from: f } | Role::PeerInResume { from: f } if *f == from
            ) {
                other.dead = true;
            }
        }
        if gen > cur {
            inner.peer_in_gen[from].store(gen, Ordering::Release);
            inner.peer_recv_count[from].store(0, Ordering::Release);
            inner.credit_doorbell[from].store(0, Ordering::Release);
            if cur != 0 {
                // A new process took the peer's place mid-flight: writes
                // pending on the dead process's acks must reissue.
                inner.peer_restarted(from);
            }
        }
        let processed = inner.peer_recv_count[from].load(Ordering::Acquire);
        write_frame(
            conn.writebuf.writer(),
            &Frame::PeerHelloAck {
                processed,
                gen: inner.gen,
            },
        )
        .expect("vec write");
        if conn.writebuf.flush_to(&mut conn.stream).is_err() {
            return false;
        }
        conn.role = Role::PeerInResume { from };
        true
    }

    /// Awaits the [`Frame::PeerResume`] that aligns the processed counter
    /// to the dialer's numbering, then serves any frames buffered behind
    /// it.
    fn step_peer_resume(&mut self, conn: &mut ConnState) -> bool {
        let Role::PeerInResume { from } = conn.role else {
            unreachable!("checked by caller");
        };
        match conn.decoder.next_frame() {
            Ok(Some(Frame::PeerResume { start_seq })) => {
                if start_seq == 0 {
                    return true;
                }
                self.inner.peer_recv_count[from].store(start_seq - 1, Ordering::Release);
                self.inner.credit_doorbell[from].store(start_seq - 1, Ordering::Release);
                conn.role = Role::PeerIn { from };
                self.step_peer_in(conn)
            }
            Ok(Some(_)) | Err(_) => true,
            Ok(None) => conn.eof,
        }
    }

    /// Serves a client connection: decodes requests, applies wake events
    /// to the suspended request if any, and runs requests through the
    /// continuation state machine — every frame handled right here, on
    /// this shard. One request in flight per connection keeps responses
    /// in request order.
    fn step_client(&mut self, token: u64, conn: &mut ConnState) -> bool {
        {
            let Role::Client { pending, .. } = &mut conn.role else {
                unreachable!("checked by caller");
            };
            loop {
                match conn.decoder.next_frame() {
                    Ok(Some(frame)) => pending.push_back(frame),
                    Ok(None) => break,
                    Err(_) => return true,
                }
            }
        }
        let mut resumes = std::mem::take(&mut conn.resumes);
        let Role::Client { pending, suspended } = &mut conn.role else {
            unreachable!("checked by caller");
        };
        let mut sus = suspended.take();
        let mut close = false;
        'serve: loop {
            match sus.as_deref_mut() {
                None => {
                    // Between requests: any event left over belongs to a
                    // request that already ended (they resolve exactly
                    // once, so nothing can still be waiting on one).
                    resumes.clear();
                    let Some(frame) = pending.pop_front() else {
                        break 'serve;
                    };
                    let (trace, frame) = peel_trace(frame);
                    self.inner.trace_event(
                        trace,
                        self.id as u8,
                        EventKind::Decode,
                        frame_key(&frame),
                        NO_PEER,
                    );
                    let (batch, rest) = match frame {
                        Frame::Batch { frames } => {
                            self.inner.metrics.record_batch(frames.len() as u64);
                            (true, VecDeque::from(frames))
                        }
                        // A single frame runs through the same machinery
                        // as a batch of one; re-wrap so `start_sub` peels
                        // the same trace id back out (it emits no second
                        // Decode event for non-batch requests).
                        frame => (false, VecDeque::from(vec![rewrap_trace(trace, frame)])),
                    };
                    let mut s = Box::new(Suspended {
                        done: Vec::with_capacity(rest.len()),
                        rest,
                        batch,
                        trace: None,
                        op: PendingOp::Flip,
                        wait: Wait::Runnable,
                        deadline: Instant::now() + HOT_TRANSITION_RETRY,
                        backoff: RETRY_BACKOFF_START,
                        counted: false,
                        prefetch: Vec::new(),
                    });
                    if self.start_sub(&mut s) {
                        self.prefetch_batch_reads(token, &mut s);
                        sus = Some(s);
                    } else {
                        // An empty batch: answer in kind.
                        write_frame(conn.writebuf.writer(), &Frame::Batch { frames: Vec::new() })
                            .expect("vec write");
                    }
                }
                Some(s) => {
                    let step = if let Some(event) = resumes.pop_front() {
                        match self.apply_resume(token, s, event) {
                            Some(step) => step,
                            // A stale event for a wait that already moved
                            // on: drop it.
                            None => continue 'serve,
                        }
                    } else if matches!(s.wait, Wait::Runnable | Wait::Retry) {
                        self.attempt_op(token, s)
                    } else {
                        // Parked on an external event that has not
                        // arrived yet.
                        break 'serve;
                    };
                    match step {
                        Attempt::Respond(response) => {
                            if self.finish_sub(s, response, &mut conn.writebuf) {
                                sus = None;
                            }
                        }
                        Attempt::Park(wait) => {
                            s.wait = wait;
                            if resumes.is_empty() {
                                break 'serve;
                            }
                        }
                        Attempt::Bounce => {
                            if Instant::now() >= s.deadline {
                                let key = s.op.key();
                                let giveup = Frame::Error {
                                    message: format!(
                                        "hot-set transition of key {key} did not complete"
                                    ),
                                };
                                if self.finish_sub(s, giveup, &mut conn.writebuf) {
                                    sus = None;
                                }
                            } else {
                                let delay = s.backoff;
                                s.backoff = (s.backoff * 2).min(RETRY_BACKOFF_MAX);
                                s.wait = Wait::Retry;
                                if !conn.tick_armed {
                                    self.wheel.schedule(Token(token), delay);
                                    conn.tick_armed = true;
                                }
                                break 'serve;
                            }
                        }
                        Attempt::Fail => {
                            close = true;
                            break 'serve;
                        }
                    }
                }
            }
        }
        *suspended = sus;
        if close {
            return true;
        }
        // Push what accumulated; the remainder drains on writability.
        if !conn.writebuf.is_empty() && conn.writebuf.flush_to(&mut conn.stream).is_err() {
            return true;
        }
        // EOF closes once everything decoded was served AND its responses
        // left the write buffer: a half-closing client (shutdown(WR),
        // then read the tail) must still receive every response, as the
        // blocking server guaranteed. A fully-closed peer errors the next
        // writability flush, so nothing lingers.
        conn.eof && pending.is_empty() && suspended.is_none() && conn.writebuf.is_empty()
    }

    /// Pops the next sub-frame into the current-op slot, resetting the
    /// per-op bookkeeping. Returns `false` when no sub-frames remain.
    fn start_sub(&self, s: &mut Suspended) -> bool {
        let Some(sub) = s.rest.pop_front() else {
            return false;
        };
        let (trace, sub) = peel_trace(sub);
        if s.batch {
            // Sub-frames carry their own trace envelopes: a sampled op
            // stays causally linked through the client-side coalescing.
            self.inner.trace_event(
                trace,
                self.id as u8,
                EventKind::Decode,
                frame_key(&sub),
                NO_PEER,
            );
        }
        s.trace = trace;
        s.wait = Wait::Runnable;
        s.deadline = Instant::now() + HOT_TRANSITION_RETRY;
        s.backoff = RETRY_BACKOFF_START;
        s.counted = false;
        s.op = match sub {
            Frame::Get { key } => PendingOp::Get { key },
            Frame::Put { key, value } => PendingOp::Put { key, value },
            Frame::Evict { key } => PendingOp::Evict { key },
            Frame::FlipEpoch => PendingOp::Flip,
            other => PendingOp::Other(other),
        };
        true
    }

    /// Issues the miss-path [`Frame::MissGet`] RPCs for every cold read
    /// still queued in a freshly decoded batch, so their peer round-trips
    /// overlap instead of serializing one per sub-request. Only plain
    /// reads are pipelined, and only while batch order cannot observe the
    /// reordering: a read of a key the batch wrote earlier is skipped
    /// (it must see that write), and the scan stops at the first admin
    /// frame (hot-set transitions change where a key is served from).
    fn prefetch_batch_reads(&self, token: u64, s: &mut Suspended) {
        if !s.batch {
            return;
        }
        let inner = &self.inner;
        let mut written: Vec<u64> = Vec::new();
        if let PendingOp::Put { key, .. } = &s.op {
            written.push(*key);
        }
        for sub in &s.rest {
            let (trace, frame) = match sub {
                Frame::Traced { id, inner } => (Some(*id), inner.as_ref()),
                other => (None, other),
            };
            match frame {
                Frame::Get { key } => {
                    let key = *key;
                    if written.contains(&key) || s.prefetch.iter().any(|p| p.key == key) {
                        continue;
                    }
                    let home = inner.node.home_node(key);
                    if home == inner.node.node()
                        || !matches!(inner.node.cache().read(key), ReadOutcome::Miss)
                    {
                        continue;
                    }
                    inner.trace_event(trace, self.id as u8, EventKind::MissRpc, key, home as u8);
                    let request = rewrap_trace(trace, Frame::MissGet { key });
                    let waiter = RpcWaiter::Shard {
                        shard: self.id,
                        token,
                    };
                    if let Ok(corr) =
                        inner.issue_rpc(home, request, waiter, Instant::now() + inner.rpc_retry)
                    {
                        s.prefetch.push(PrefetchSlot {
                            key,
                            corr,
                            state: PrefetchState::InFlight,
                        });
                    }
                }
                Frame::Put { key, .. } => written.push(*key),
                _ => break,
            }
        }
    }

    /// Records the finished sub-request's response and starts the next
    /// one. Returns `true` when the whole request completed (its response
    /// bytes are in the write buffer).
    fn finish_sub(&self, s: &mut Suspended, response: Frame, writebuf: &mut WriteBuf) -> bool {
        self.inner.trace_event(
            s.trace,
            self.id as u8,
            EventKind::Respond,
            s.op.key(),
            NO_PEER,
        );
        if s.batch {
            s.done.push(response);
            if self.start_sub(s) {
                return false;
            }
            let frames = std::mem::take(&mut s.done);
            write_frame(writebuf.writer(), &Frame::Batch { frames }).expect("vec write");
        } else {
            write_frame(writebuf.writer(), &response).expect("vec write");
        }
        true
    }

    /// One probe of the current op. Probes are idempotent: a bounced op
    /// re-runs the whole probe on its next tick (the key may have changed
    /// sides of the hot set in between), exactly like the worker-pool
    /// retry loops used to.
    fn attempt_op(&self, token: u64, s: &mut Suspended) -> Attempt {
        let inner = &self.inner;
        match &mut s.op {
            PendingOp::Get { key } => {
                let key = *key;
                if !s.counted {
                    s.counted = true;
                    inner.metrics.record_get();
                    inner.observe(key);
                }
                match inner.node.cache().read(key) {
                    ReadOutcome::Hit { value, ts } => {
                        inner.metrics.record_cache(true);
                        inner.metrics.record_inline_get();
                        Attempt::Respond(Frame::GetResp {
                            cached: true,
                            ts,
                            value,
                        })
                    }
                    // A stalled entry (invalidated under Lin) must not be
                    // awaited here — the update that resolves it arrives
                    // through this very shard. Bounce.
                    ReadOutcome::Stall => Attempt::Bounce,
                    ReadOutcome::Miss => {
                        // Cold path. Like cold writes, cold reads bounce
                        // while the key transitions into or out of the hot
                        // set: during an eviction the freshest value may
                        // still be in flight from a dirty replica.
                        let home = inner.node.home_node(key);
                        if home == inner.node.node() {
                            match inner.cold_get(key) {
                                Some(value) => {
                                    inner.metrics.record_cache(false);
                                    Attempt::Respond(Frame::GetResp {
                                        cached: false,
                                        ts: Timestamp::ZERO,
                                        value,
                                    })
                                }
                                None => Attempt::Bounce,
                            }
                        } else {
                            // A batch prefetch may already have this key's
                            // MissGet in flight (park on it — no second
                            // RPC) or answered (consume it inline).
                            if let Some(i) = s.prefetch.iter().position(|p| p.key == key) {
                                let slot = s.prefetch.swap_remove(i);
                                return match slot.state {
                                    PrefetchState::InFlight => {
                                        Attempt::Park(Wait::Rpc { corr: slot.corr })
                                    }
                                    PrefetchState::Arrived(Frame::MissGetResp { value }) => {
                                        inner.metrics.record_cache(false);
                                        inner.metrics.record_remote_read();
                                        inner.trace_event(
                                            s.trace,
                                            self.id as u8,
                                            EventKind::ContinuationFire,
                                            key,
                                            NO_PEER,
                                        );
                                        Attempt::Respond(Frame::GetResp {
                                            cached: false,
                                            ts: Timestamp::ZERO,
                                            value,
                                        })
                                    }
                                    PrefetchState::Arrived(Frame::MissRetry) => Attempt::Bounce,
                                    PrefetchState::Arrived(_) => Attempt::Fail,
                                    PrefetchState::Failed(message) => {
                                        Attempt::Respond(Frame::Error { message })
                                    }
                                };
                            }
                            inner.trace_event(
                                s.trace,
                                self.id as u8,
                                EventKind::MissRpc,
                                key,
                                home as u8,
                            );
                            let request = rewrap_trace(s.trace, Frame::MissGet { key });
                            match inner.issue_rpc(
                                home,
                                request,
                                RpcWaiter::Shard {
                                    shard: self.id,
                                    token,
                                },
                                Instant::now() + inner.rpc_retry,
                            ) {
                                Ok(corr) => Attempt::Park(Wait::Rpc { corr }),
                                Err(_) => Attempt::Fail,
                            }
                        }
                    }
                }
            }
            PendingOp::Put { key, value } => {
                let key = *key;
                if !s.counted {
                    s.counted = true;
                    inner.metrics.record_put();
                    inner.observe(key);
                }
                let tag = inner.tags.fetch_add(1, Ordering::Relaxed);
                match inner.node.try_cache_put(key, value, tag) {
                    Some(CachePut::Done { ts, outgoing }) => {
                        let fanout = Instant::now();
                        inner.ship_traced(outgoing, s.trace);
                        inner
                            .metrics
                            .record_fanout_ns(fanout.elapsed().as_nanos() as u64);
                        inner.metrics.record_cache(true);
                        Attempt::Respond(Frame::PutResp { cached: true, ts })
                    }
                    Some(CachePut::Pending { ts, outgoing }) => {
                        inner.trace_event(
                            s.trace,
                            self.id as u8,
                            EventKind::LinInitiate,
                            key,
                            NO_PEER,
                        );
                        // Register the commit continuation BEFORE the
                        // invalidations leave: the final ack can race back
                        // through another shard the moment they ship (and
                        // `on_committed` fires the hook immediately if the
                        // commit somehow already landed).
                        let owner = inner.shard_arc(self.id);
                        inner.node.on_committed(
                            key,
                            ts,
                            Box::new(move || {
                                owner.send(ShardMsg::Resume {
                                    token,
                                    sent_at: Instant::now(),
                                    event: ResumeEvent::Committed,
                                });
                            }),
                        );
                        let fanout = Instant::now();
                        inner.ship_traced(outgoing, s.trace);
                        inner
                            .metrics
                            .record_fanout_ns(fanout.elapsed().as_nanos() as u64);
                        inner.metrics.record_cache(true);
                        Attempt::Park(Wait::LinCommit {
                            ts,
                            started: Instant::now(),
                        })
                    }
                    // A stalled entry: bounce, exactly as for reads.
                    None => Attempt::Bounce,
                    Some(CachePut::Miss) => {
                        // Cold path: versions are assigned by the *home*
                        // shard on arrival (see `next_cold_version`); the
                        // tag on the wire is only a diagnostic hint.
                        let home = inner.node.home_node(key);
                        let me = inner.node.node() as u8;
                        if home == inner.node.node() {
                            match inner.cold_put(key, value, me) {
                                ColdPut::Applied(ts) => {
                                    inner.metrics.record_cache(false);
                                    Attempt::Respond(Frame::PutResp { cached: false, ts })
                                }
                                ColdPut::Busy => Attempt::Bounce,
                                ColdPut::Rejected(message) => {
                                    Attempt::Respond(Frame::Error { message })
                                }
                            }
                        } else {
                            inner.trace_event(
                                s.trace,
                                self.id as u8,
                                EventKind::MissRpc,
                                key,
                                home as u8,
                            );
                            let request = rewrap_trace(
                                s.trace,
                                Frame::MissPut {
                                    key,
                                    tag: tag as u32,
                                    writer: me,
                                    value: value.clone(),
                                },
                            );
                            match inner.issue_rpc(
                                home,
                                request,
                                RpcWaiter::Shard {
                                    shard: self.id,
                                    token,
                                },
                                Instant::now() + inner.rpc_retry,
                            ) {
                                Ok(corr) => Attempt::Park(Wait::Rpc { corr }),
                                Err(_) => Attempt::Fail,
                            }
                        }
                    }
                }
            }
            PendingOp::Evict { key } => {
                let key = *key;
                match inner.admin_tx.send(AdminJob::Evict {
                    shard: self.id,
                    token,
                    key,
                }) {
                    Ok(()) => Attempt::Park(Wait::Admin),
                    Err(_) => Attempt::Fail,
                }
            }
            PendingOp::Flip => match &inner.churn {
                None => Attempt::Respond(Frame::Error {
                    message: "this node does not run the epoch coordinator".to_string(),
                }),
                Some(churn) => {
                    // Close the epoch on-shard (a cheap swap under the
                    // coordinator lock); the multi-node evict/install
                    // sweep runs on the epoch applier thread, which
                    // resumes this connection when done.
                    let hot = churn.coord.lock().close_epoch();
                    match churn.flip_tx.send(FlipJob::Forced {
                        hot,
                        shard: self.id,
                        token,
                    }) {
                        Ok(()) => Attempt::Park(Wait::Admin),
                        Err(_) => Attempt::Respond(Frame::Error {
                            message: "epoch applier is not running".to_string(),
                        }),
                    }
                }
            },
            PendingOp::Other(frame) => {
                let frame = std::mem::replace(frame, Frame::Ping);
                match serve_inline_frame(inner, frame) {
                    Ok(ClientAction::Respond(response)) => Attempt::Respond(response),
                    Ok(ClientAction::Shutdown) | Err(_) => Attempt::Fail,
                }
            }
        }
    }

    /// Applies one wake event to the suspended request. Returns `None`
    /// for an event that no longer matches the current wait (each wait
    /// resolves exactly once, so a leftover is stale by construction).
    fn apply_resume(&self, token: u64, s: &mut Suspended, event: ResumeEvent) -> Option<Attempt> {
        let _ = token;
        let inner = &self.inner;
        // A response for a prefetched batch read whose sub-request has not
        // run yet: park it in the slot for inline consumption. (If the
        // sub-request is already waiting on this corr, the normal resume
        // arms below handle it.)
        if let ResumeEvent::Rpc { corr, .. } | ResumeEvent::RpcFailed { corr, .. } = &event {
            let corr = *corr;
            let waiting_on = matches!(s.wait, Wait::Rpc { corr: expected } if expected == corr);
            if !waiting_on {
                if let Some(slot) = s
                    .prefetch
                    .iter_mut()
                    .find(|p| p.corr == corr && matches!(p.state, PrefetchState::InFlight))
                {
                    slot.state = match event {
                        ResumeEvent::Rpc { response, .. } => PrefetchState::Arrived(response),
                        ResumeEvent::RpcFailed { message, .. } => PrefetchState::Failed(message),
                        _ => unreachable!("matched above"),
                    };
                    return None;
                }
            }
        }
        let step = match (event, &s.wait) {
            (ResumeEvent::Committed, Wait::LinCommit { ts, started }) => {
                inner
                    .metrics
                    .record_lin_ack_wait_ns(started.elapsed().as_nanos() as u64);
                let ts = *ts;
                inner.trace_event(
                    s.trace,
                    self.id as u8,
                    EventKind::CommitFire,
                    s.op.key(),
                    NO_PEER,
                );
                Attempt::Respond(Frame::PutResp { cached: true, ts })
            }
            (ResumeEvent::Rpc { corr, response }, Wait::Rpc { corr: expected })
                if corr == *expected =>
            {
                match &s.op {
                    PendingOp::Get { .. } => match response {
                        Frame::MissGetResp { value } => {
                            // One logical miss, however many bounces.
                            inner.metrics.record_cache(false);
                            inner.metrics.record_remote_read();
                            Attempt::Respond(Frame::GetResp {
                                cached: false,
                                ts: Timestamp::ZERO,
                                value,
                            })
                        }
                        Frame::MissRetry => Attempt::Bounce,
                        _ => Attempt::Fail,
                    },
                    PendingOp::Put { .. } => match response {
                        Frame::MissPutResp { ts } => {
                            inner.metrics.record_cache(false);
                            inner.metrics.record_remote_write();
                            Attempt::Respond(Frame::PutResp { cached: false, ts })
                        }
                        Frame::MissRetry => Attempt::Bounce,
                        // The home shard rejected the write: relay the
                        // reason to the client, as the old blocking RPC
                        // path did.
                        Frame::Error { message } => Attempt::Respond(Frame::Error { message }),
                        _ => Attempt::Fail,
                    },
                    _ => Attempt::Fail,
                }
            }
            (ResumeEvent::RpcFailed { corr, message }, Wait::Rpc { corr: expected })
                if corr == *expected =>
            {
                // Transport failure past the redial budget: surfaced to the
                // client as a protocol error, as the old pooled dialer did.
                Attempt::Respond(Frame::Error { message })
            }
            (ResumeEvent::Admin { result }, Wait::Admin) => match result {
                Ok(response) => Attempt::Respond(response),
                Err(_) => Attempt::Fail,
            },
            _ => return None,
        };
        inner.trace_event(
            s.trace,
            self.id as u8,
            EventKind::ContinuationFire,
            s.op.key(),
            NO_PEER,
        );
        Some(step)
    }

    fn step_peer_in(&mut self, conn: &mut ConnState) -> bool {
        let Role::PeerIn { from } = &conn.role else {
            unreachable!("checked by caller");
        };
        let from = *from;
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => {
                    let processed = match frame {
                        Frame::Batch { frames } => {
                            let mut processed = 0;
                            for sub in frames {
                                match deliver_peer_frame(&self.inner, self.id, from, sub) {
                                    Ok(n) => processed += n,
                                    Err(_) => return true,
                                }
                            }
                            processed
                        }
                        other => match deliver_peer_frame(&self.inner, self.id, from, other) {
                            Ok(n) => n,
                            Err(_) => return true,
                        },
                    };
                    // Book the processing: the cumulative count is echoed
                    // back as the credit confirmation that refills the
                    // sender's window (and releases its retained copies).
                    self.inner.note_processed(from, processed);
                }
                Ok(None) => break,
                Err(_) => return true,
            }
        }
        conn.eof
    }

    fn step_rpc(&mut self, conn: &mut ConnState) -> bool {
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => match serve_rpc_frame(&self.inner, self.id as u8, frame) {
                    Ok(response) => {
                        write_frame(conn.writebuf.writer(), &response).expect("vec write");
                    }
                    Err(_) => return true,
                },
                Ok(None) => break,
                Err(_) => return true,
            }
        }
        if !conn.writebuf.is_empty() && conn.writebuf.flush_to(&mut conn.stream).is_err() {
            return true;
        }
        // As for clients: serve the response tail before honouring EOF.
        conn.eof && conn.writebuf.is_empty()
    }

    /// The outbound half of one peer link: coalesces bursts of protocol
    /// traffic into [`Frame::Batch`] messages (§6.3's software-multicast
    /// amortisation) under credit-based flow control (§6.4), with the
    /// cumulative processed confirmation toward the peer piggybacked on
    /// every batch. Driven by readiness; a credit stall or a pending cork
    /// deadline arms a wheel tick instead of parking a thread.
    ///
    /// Lanes ([`LinkItem::lane`]): the replay queue drains strictly first
    /// (seq exactness), then the **latency lane** — invalidations, Lin
    /// acks, RPC traffic — which flushes eagerly on every pump and never
    /// waits on bulk coalescing or the 1 ms stall tick, then the **bulk
    /// lane** (update broadcasts, write-backs), whose flush is decided by
    /// the link's [`AdaptiveCork`]: flush when the adaptive target size is
    /// reached (`full`), when the oldest corked message has waited
    /// [`FlowConfig::max_delay`] (`deadline`), or immediately while the
    /// link is idle (`idle`). Wire order is pack order is seq order, so
    /// the per-key FIFO the protocol engines need is enforced at enqueue
    /// time ([`LinkQueues::push`]'s downgrade), not here.
    ///
    /// Every flow-controlled message moves from the link's queues into its
    /// `unacked` tail as it is packed: the socket may lose it (severed
    /// link, crashed peer), the link does not — the redial handshake
    /// replays whatever the peer did not confirm processing.
    ///
    /// Value bytes stay behind the broadcast-shared `Arc` all the way to
    /// serialisation: no per-peer copy is ever materialised.
    fn pump_peer_out(&mut self, token: u64, conn: &mut ConnState) -> bool {
        // On a datagram fabric one coalesced batch should ride one
        // datagram: cap the byte budget at the transport's datagram
        // payload size (streams keep the full budget).
        let batch_max = conn
            .stream
            .datagram_cap()
            .map_or(PEER_BATCH_MAX_BYTES, |cap| cap.min(PEER_BATCH_MAX_BYTES));
        let Role::PeerOut {
            peer,
            link,
            builder,
            stall_started,
            last_cum,
            cork,
        } = &mut conn.role
        else {
            unreachable!("checked by caller");
        };
        let peer = *peer;
        // A peer link is one-way past the handshake: bytes arriving here
        // are a protocol violation, EOF means the peer is gone.
        if conn.decoder.buffered() > 0 || conn.eof {
            return true;
        }
        let inner = &self.inner;
        let window = inner.flow.credit_window;
        let max_ops = inner.flow.peer_batch_ops.max(1) as u64;
        let max_delay = inner.flow.max_delay;
        let running = inner.running.load(Ordering::SeqCst);
        let mut stalled = false;
        // Whether replay/latency frames were among the stalled work: they
        // re-check at fine-timer granularity, not the 1 ms bulk tick.
        let mut priority_stalled = false;
        // Remaining time until the current cork's deadline, when bulk was
        // left corked this pump.
        let mut cork_deadline: Option<Duration> = None;
        loop {
            // Backpressure: stop packing while the socket is behind; the
            // writability event resumes the pump.
            if conn.writebuf.pending() > HIGH_WATER {
                break;
            }
            // Piggyback the cumulative processed confirmation first: it is
            // exempt from flow control and must go out even while this
            // link is stalled. Cumulative confirmations are idempotent, so
            // re-announcing after a reconnect costs nothing.
            let cum_now = inner.peer_recv_count[peer].load(Ordering::Acquire);
            let announced = cum_now > *last_cum;
            if announced {
                builder.push(&Frame::Credit {
                    cum: cum_now,
                    gen: inner.peer_in_gen[peer].load(Ordering::Acquire),
                });
                *last_cum = cum_now;
            }
            cork_deadline = None;
            let mut queues = link.queues.lock();
            // Adaptive bulk decision: how the corked bulk lane flushes (or
            // keeps waiting) this round.
            let target = cork.target(
                link.bulk_arrivals.load(Ordering::Relaxed),
                max_ops,
                max_delay,
            );
            let bulk_len = queues.bulk.len() as u64;
            let deadline_hit = cork.since.is_some_and(|since| since.elapsed() >= max_delay);
            let flush_reason = if bulk_len == 0 {
                None
            } else if !running {
                // Teardown drains everything; the label is moot.
                Some(CorkFlush::Full)
            } else if target > 1 && bulk_len >= target {
                Some(CorkFlush::Full)
            } else if deadline_hit {
                Some(CorkFlush::Deadline)
            } else if target <= 1 {
                Some(CorkFlush::Idle)
            } else {
                None
            };
            let bulk_release = if flush_reason.is_some() { bulk_len } else { 0 };
            let want =
                ((queues.replay.len() + queues.latency.len()) as u64 + bulk_release).min(max_ops);
            let granted = if !running {
                // Teardown drains without credits — the reverse link
                // carrying confirmations may already be gone.
                want
            } else {
                let outstanding =
                    link.sent_seq.load(Ordering::Acquire) - link.acked_seq.load(Ordering::Acquire);
                let take = want.min(window.saturating_sub(outstanding));
                if want > 0 && take == 0 {
                    // Window exhausted: note when the stall began; a wheel
                    // tick re-pumps (and keeps credit-only batches
                    // flowing, which makes symmetric saturation
                    // deadlock-free).
                    stall_started.get_or_insert_with(Instant::now);
                    stalled = true;
                    priority_stalled |= !queues.replay.is_empty() || !queues.latency.is_empty();
                } else if take > 0 {
                    if let Some(started) = stall_started.take() {
                        let stalled_ns = started.elapsed().as_nanos() as u64;
                        inner.metrics.record_credit_stall_ns(stalled_ns);
                        // If the message that waited out the stall at the
                        // queue front is traced, pin the stall onto its
                        // timeline (the `key` field carries the ns).
                        let front_trace = queues
                            .replay
                            .front()
                            .or_else(|| queues.latency.front())
                            .or_else(|| queues.bulk.front())
                            .and_then(LinkItem::trace);
                        inner.trace_event(
                            front_trace,
                            self.id as u8,
                            EventKind::CreditStall,
                            stalled_ns,
                            peer as u8,
                        );
                    }
                }
                take
            };
            let mut packed = 0u64;
            let mut latency_packed = 0u64;
            let mut bulk_packed = 0u64;
            // Trace id of the first corked bulk item flushed this batch:
            // its timeline carries the CorkWait span.
            let mut corked_trace: Option<u64> = None;
            while packed < granted {
                // Strict priority: replay (seq exactness), then the
                // latency lane, then released bulk. One wire batch may mix
                // classes — order within it is still queue order.
                let lane = if !queues.replay.is_empty() {
                    None
                } else if !queues.latency.is_empty() {
                    Some(Lane::Latency)
                } else if bulk_release > 0 && !queues.bulk.is_empty() {
                    Some(Lane::Bulk)
                } else {
                    break;
                };
                let head = match lane {
                    None => queues.replay.front(),
                    Some(Lane::Latency) => queues.latency.front(),
                    Some(Lane::Bulk) => queues.bulk.front(),
                }
                .expect("chosen queue nonempty");
                // Byte bound: op count alone would let a burst of large
                // values coalesce past MAX_FRAME_BYTES, and the receiver
                // drops an oversized frame together with the whole peer
                // link. A message that is itself large still travels —
                // alone, as a bare frame.
                let projected = builder.bytes() + 64 + head.payload_len();
                if builder.count() > 0 && projected > batch_max {
                    break;
                }
                match head {
                    LinkItem::Protocol(msg, bytes, trace) => {
                        builder.push_protocol_traced(*trace, msg, bytes.as_deref());
                    }
                    LinkItem::Rpc(frame) => builder.push(frame),
                }
                let item = match lane {
                    None => queues.replay.pop_front(),
                    Some(Lane::Latency) => queues.latency.pop_front(),
                    Some(Lane::Bulk) => queues.pop_bulk(),
                }
                .expect("head exists");
                match lane {
                    Some(Lane::Latency) => latency_packed += 1,
                    Some(Lane::Bulk) => {
                        if bulk_packed == 0 {
                            corked_trace = item.trace();
                        }
                        bulk_packed += 1;
                    }
                    None => {}
                }
                if running {
                    // Retain until the peer confirms processing: this is
                    // what the redial handshake replays.
                    let seq = link.sent_seq.fetch_add(1, Ordering::AcqRel) + 1;
                    // Pack-time seq recording: a restarted peer that
                    // confirmed processing up to this seq owes the answer
                    // — `peer_restarted` reissues exactly those entries.
                    if let LinkItem::Rpc(Frame::RpcReq { corr, .. }) = &item {
                        if let Some(entry) = inner.rpc_pending.lock().get_mut(corr) {
                            entry.seq = Some(seq);
                        }
                    }
                    link.unacked.lock().push_back(item);
                }
                packed += 1;
            }
            // Cork bookkeeping. A bulk flush books its size, its reason
            // and — when a cork was actually open — the wait it served,
            // pinned to the first corked item's trace timeline. Fully
            // drained bulk closes the cork; bulk left waiting (no flush
            // reason, or a flush truncated by the window or byte budget)
            // keeps or starts it, and its deadline arms the fine timer.
            if bulk_packed > 0 {
                inner.metrics.record_adaptive_batch(bulk_packed);
                if let Some(reason) = flush_reason {
                    match reason {
                        CorkFlush::Full => inner.metrics.record_cork_flush_full(),
                        CorkFlush::Deadline => inner.metrics.record_cork_flush_deadline(),
                        CorkFlush::Idle => inner.metrics.record_cork_flush_idle(),
                    }
                }
                if let Some(since) = cork.since {
                    let waited_ns = since.elapsed().as_nanos() as u64;
                    inner.metrics.record_cork_wait_ns(waited_ns);
                    inner.trace_event(
                        corked_trace,
                        self.id as u8,
                        EventKind::CorkWait,
                        waited_ns,
                        peer as u8,
                    );
                }
            }
            if queues.bulk.is_empty() {
                cork.since = None;
            } else {
                let since = *cork.since.get_or_insert_with(Instant::now);
                cork_deadline = Some(max_delay.saturating_sub(since.elapsed()));
            }
            if latency_packed > 0 {
                inner.metrics.record_priority_lane(latency_packed);
            }
            let nothing_left = queues.replay.is_empty()
                && queues.latency.is_empty()
                && (bulk_release == 0 || queues.bulk.is_empty());
            drop(queues);
            if builder.count() > 0 {
                // Singleton messages leave the builder as bare frames (see
                // `BatchBuilder::write_to`) — only count what actually
                // travels as a coalesced batch, or the batch-size
                // percentiles drown in ones that were never batched.
                if builder.count() > 1 && packed > 0 {
                    inner.metrics.record_batch(packed);
                }
                write_frame_builder(builder, &mut conn.writebuf);
            }
            // No progress AND no confirmation went out: nothing more can
            // happen this pump (the queues are empty, the bulk lane is
            // corked, or the window is closed — ticks handle the latter
            // two). A round that wrote only a confirmation must loop once
            // more: a pending credit frame in the builder can push the
            // head message past the batch byte budget (packed == 0), and
            // breaking there would strand the message with no timer armed
            // and no writability event coming on a one-way link. The
            // retry starts with an empty builder, where an oversized
            // message travels alone.
            if packed == 0 && !announced {
                break;
            }
            if nothing_left {
                break;
            }
        }
        if !conn.writebuf.is_empty() && conn.writebuf.flush_to(&mut conn.stream).is_err() {
            return true;
        }
        // Arm the nearest wheel tick this link needs: the credit-stall
        // re-check (fine-grained when priority frames are blocked — a Lin
        // writer is waiting on exactly those — 1 ms for bulk-only stalls)
        // and/or the pending cork deadline.
        let mut tick: Option<Duration> = None;
        if stalled && running && !link.queues.lock().is_empty() {
            tick = Some(if priority_stalled {
                PRIORITY_STALL_TICK
            } else {
                CREDIT_STALL_TICK
            });
        }
        if running {
            if let Some(remaining) = cork_deadline {
                let t = remaining.max(reactor::FINE_RESOLUTION);
                tick = Some(tick.map_or(t, |cur| cur.min(t)));
            }
        }
        if let Some(t) = tick {
            if !conn.tick_armed {
                self.wheel.schedule(Token(token), t);
                conn.tick_armed = true;
            }
        }
        false
    }

    /// Keeps epoll interest in sync with what the connection can usefully
    /// be told about: writable only while output is pending, readable
    /// unless backpressure says stop.
    fn refresh_interest(&mut self, token: u64, conn: &mut ConnState) {
        let throttled = match &conn.role {
            Role::Client { pending, suspended } => {
                // A pipelining client stops being read once enough frames
                // are queued or its responses back up; TCP pushes back to
                // the sender instead of the server buffering without
                // bound.
                pending.len() >= MAX_PENDING_FRAMES
                    || conn.writebuf.pending() >= HIGH_WATER
                    || (suspended.is_some() && pending.len() >= MAX_PENDING_FRAMES / 2)
            }
            _ => conn.writebuf.pending() >= HIGH_WATER,
        };
        let unthrottle = conn.writebuf.pending() <= LOW_WATER;
        let readable = if conn.interest.readable {
            !throttled
        } else {
            // Hysteresis: resume reading only once well below the mark.
            !throttled && unthrottle
        };
        let desired = Interest {
            readable,
            writable: !conn.writebuf.is_empty(),
        };
        if desired != conn.interest
            && self
                .poller
                .modify(conn.stream.raw_fd(), Token(token), desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    fn close(&mut self, token: u64, conn: ConnState) {
        self.poller.deregister(conn.stream.raw_fd());
        self.peer_out_tokens.retain(|&t| t != token);
        self.inner.metrics.record_conn_closed();
        // A dead outgoing peer link is a recoverable event, not an
        // amputation: mark the link down and let the redial thread bring
        // it back (unless the server is shutting down).
        if let Role::PeerOut { peer, .. } = &conn.role {
            if self.inner.running.load(Ordering::SeqCst) {
                self.inner.peer_link_down(*peer);
            }
        }
        // The stream drops here, closing the socket.
    }

    /// Shutdown path: drain every peer link without credits (blocking
    /// writes — the event loop is over), then drop all sockets.
    fn teardown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            if matches!(conn.role, Role::PeerOut { .. }) {
                let _ = conn.stream.set_nonblocking(false);
                // `running` is false, so the pump packs without credits;
                // loop until the queue is empty (a burst can arrive
                // between pumps from a shard finishing up).
                loop {
                    if self.pump_peer_out(token, &mut conn) {
                        break; // link died mid-drain; nothing more to do
                    }
                    let Role::PeerOut { link, .. } = &conn.role else {
                        unreachable!("role checked above");
                    };
                    if link.queues.lock().is_empty() {
                        break;
                    }
                }
                while !conn.writebuf.is_empty() {
                    if conn.writebuf.flush_to(&mut conn.stream).is_err() {
                        break;
                    }
                }
                let _ = conn.stream.flush();
            }
            self.close(token, *conn);
        }
    }
}

/// Writes the builder's assembled message into the write buffer.
fn write_frame_builder(builder: &mut BatchBuilder, writebuf: &mut WriteBuf) {
    builder
        .write_to(writebuf.writer())
        .expect("vec write cannot fail");
}

#[cfg(test)]
mod lane_tests {
    use super::*;

    fn ts() -> Timestamp {
        Timestamp::new(1, NodeId(0))
    }

    fn inv(key: u64) -> LinkItem {
        LinkItem::Protocol(
            ProtocolMsg::Invalidation {
                key,
                ts: ts(),
                from: NodeId(0),
            },
            None,
            None,
        )
    }

    fn ack(key: u64) -> LinkItem {
        LinkItem::Protocol(
            ProtocolMsg::Ack {
                key,
                ts: ts(),
                from: NodeId(0),
            },
            None,
            None,
        )
    }

    fn update(key: u64) -> LinkItem {
        LinkItem::Protocol(
            ProtocolMsg::Update {
                key,
                value: 7,
                ts: ts(),
                from: NodeId(0),
            },
            Some(Arc::from(vec![0u8; 8])),
            None,
        )
    }

    fn write_back(key: u64) -> LinkItem {
        LinkItem::Rpc(Frame::RpcReq {
            corr: 1,
            inner: Box::new(Frame::WriteBack {
                key,
                value: vec![1],
                ts: ts(),
            }),
        })
    }

    fn miss_get(key: u64) -> LinkItem {
        LinkItem::Rpc(Frame::RpcReq {
            corr: 2,
            inner: Box::new(Frame::MissGet { key }),
        })
    }

    /// (kind, key) fingerprint for order assertions.
    fn tag(item: &LinkItem) -> (&'static str, u64) {
        match item {
            LinkItem::Protocol(ProtocolMsg::Invalidation { key, .. }, _, _) => ("inv", *key),
            LinkItem::Protocol(ProtocolMsg::Ack { key, .. }, _, _) => ("ack", *key),
            LinkItem::Protocol(ProtocolMsg::Update { key, .. }, _, _) => ("update", *key),
            LinkItem::Rpc(frame) => ("rpc", frame_tag_key(frame)),
        }
    }

    fn frame_tag_key(frame: &Frame) -> u64 {
        match frame {
            Frame::RpcReq { inner, .. } | Frame::RpcResp { inner, .. } => frame_tag_key(inner),
            Frame::WriteBack { key, .. } | Frame::MissGet { key } => *key,
            _ => 0,
        }
    }

    /// Drains the queues in exactly the pump's lane-selection order:
    /// replay strictly first, then the latency lane, then bulk.
    fn drain(queues: &mut LinkQueues) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        loop {
            let item = if let Some(item) = queues.replay.pop_front() {
                item
            } else if let Some(item) = queues.latency.pop_front() {
                item
            } else if let Some(item) = queues.pop_bulk() {
                item
            } else {
                break;
            };
            out.push(tag(&item));
        }
        assert!(queues.is_empty());
        out
    }

    #[test]
    fn latency_frames_overtake_unrelated_bulk() {
        let mut queues = LinkQueues::default();
        assert_eq!(queues.push(update(1)), Lane::Bulk);
        assert_eq!(queues.push(inv(2)), Lane::Latency);
        assert_eq!(queues.push(ack(3)), Lane::Latency);
        assert_eq!(
            drain(&mut queues),
            vec![("inv", 2), ("ack", 3), ("update", 1)],
            "latency-class frames must jump the bulk cork, FIFO within their lane"
        );
    }

    #[test]
    fn same_key_inv_never_overtakes_its_update() {
        // An SC update broadcast for key 7 is corked; a later Lin
        // invalidation of key 7 must not pass it on the wire — the push
        // path downgrades it into the bulk lane behind the update.
        let mut queues = LinkQueues::default();
        assert_eq!(queues.push(update(7)), Lane::Bulk);
        assert_eq!(
            queues.push(inv(7)),
            Lane::Bulk,
            "same-key inv must downgrade"
        );
        assert_eq!(
            queues.push(inv(8)),
            Lane::Latency,
            "other keys keep the fast lane"
        );
        assert_eq!(
            drain(&mut queues),
            vec![("inv", 8), ("update", 7), ("inv", 7)],
            "per-key FIFO must hold across lanes"
        );
    }

    #[test]
    fn same_key_rpc_follows_corked_write_back() {
        // A miss read racing a corked write-back of the same key must
        // arrive after it (the home must see the written-back value).
        let mut queues = LinkQueues::default();
        assert_eq!(queues.push(write_back(9)), Lane::Bulk);
        assert_eq!(
            queues.push(miss_get(9)),
            Lane::Bulk,
            "same-key rpc must downgrade"
        );
        assert_eq!(queues.push(miss_get(10)), Lane::Latency);
        assert_eq!(
            drain(&mut queues),
            vec![("rpc", 10), ("rpc", 9), ("rpc", 9)],
            "write-back then its follower, in push order"
        );
    }

    #[test]
    fn replay_drains_first_and_in_fifo_order() {
        // Requeued unconfirmed tail (redial handshake) must be repacked
        // before anything else, in original order — replay frames reuse
        // their original sequence numbers and wire order is seq order.
        let mut queues = LinkQueues::default();
        queues.replay.push_back(update(1));
        queues.replay.push_back(inv(1));
        assert_eq!(queues.push(inv(2)), Lane::Latency);
        assert_eq!(queues.push(update(3)), Lane::Bulk);
        assert_eq!(
            drain(&mut queues),
            vec![("update", 1), ("inv", 1), ("inv", 2), ("update", 3)],
            "replay is strictly first, itself FIFO"
        );
    }

    #[test]
    fn downgrade_check_clears_when_bulk_drains() {
        let mut queues = LinkQueues::default();
        assert_eq!(queues.push(update(5)), Lane::Bulk);
        assert_eq!(queues.push(update(5)), Lane::Bulk);
        queues.pop_bulk();
        // One bulk item for key 5 still queued: the downgrade must hold.
        assert_eq!(queues.push(inv(5)), Lane::Bulk);
        queues.pop_bulk();
        queues.pop_bulk();
        // Bulk fully drained: key 5 latency traffic is fast again.
        assert_eq!(queues.push(inv(5)), Lane::Latency);
    }
}
