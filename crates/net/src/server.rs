//! The networked ccKVS node: a [`CcNode`] behind a TCP endpoint.
//!
//! A [`NodeServer`] binds one listener and serves three kinds of
//! connections, distinguished by their hello frame (see [`crate::wire`]):
//! client request/response sessions, incoming one-way peer protocol links,
//! and incoming miss-path RPC links. Outgoing protocol traffic to each peer
//! flows through a dedicated writer thread fed by an unbounded channel, so
//! a delivery that produces follow-on messages (an invalidation producing
//! an ack, a final ack producing the update broadcast) never blocks on
//! socket I/O — mirroring the asynchronous network threads of the
//! in-process cluster, with real sockets underneath.
//!
//! Concurrency model: one OS thread per connection (blocking I/O). An async
//! runtime would slot in at exactly this layer; the build environment has
//! no crates.io access for `tokio`, so the subsystem gates on blocking std
//! networking while keeping every protocol decision inside the
//! transport-agnostic [`CcNode`].

use crate::client::Conn;
use crate::metrics::{Metrics, MetricsServer};
use crate::wire::{read_frame, write_frame, BatchBuilder, Frame};
use cckvs::node::{CacheGet, CachePut, CcNode, EvictHot, NodeConfig, Outgoing};
use consistency::engine::Destination;
use consistency::lamport::{NodeId, Timestamp};
use consistency::messages::ProtocolMsg;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use symcache::popularity::{CacheCoordinator, EpochConfig, HotSet};

/// Peer-mesh batching and credit-based flow-control knobs (§6.3/§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowConfig {
    /// Send-credit window per peer: how many protocol messages may be in
    /// flight to one peer beyond what it has confirmed processing. A fast
    /// sender (a Lin ack round fanning out) stalls — instead of growing the
    /// receiver's backlog without bound — once the window is exhausted.
    pub credit_window: u64,
    /// Maximum protocol messages coalesced into one peer-mesh batch.
    pub peer_batch_ops: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            credit_window: 128,
            peer_batch_ops: 32,
        }
    }
}

/// Configuration of one networked node.
#[derive(Debug, Clone)]
pub struct NodeServerConfig {
    /// The node itself (id, deployment size, capacities, model).
    pub node: NodeConfig,
    /// Address to listen on (`127.0.0.1:0` picks an ephemeral port).
    pub listen: SocketAddr,
    /// Optional address for the plain-text metrics HTTP endpoint.
    pub metrics_listen: Option<SocketAddr>,
    /// When set, this node acts as the deployment's epoch coordinator (§4):
    /// it samples the request stream it serves, closes popularity epochs,
    /// and reconfigures the hot set of *every* node over the wire — exactly
    /// one node of a deployment should carry this.
    pub epochs: Option<EpochConfig>,
    /// Peer-mesh batching and flow-control knobs.
    pub flow: FlowConfig,
}

impl NodeServerConfig {
    /// A loopback node with an ephemeral port and a metrics endpoint.
    pub fn loopback(node: NodeConfig) -> Self {
        Self {
            node,
            listen: "127.0.0.1:0".parse().expect("static addr"),
            metrics_listen: Some("127.0.0.1:0".parse().expect("static addr")),
            epochs: None,
            flow: FlowConfig::default(),
        }
    }
}

/// One unit of work for a peer writer thread.
enum PeerItem {
    /// A protocol message to ship (value bytes broadcast-shared).
    Msg(ProtocolMsg, Option<Arc<[u8]>>),
    /// Wake-up only: credits are owed to this peer and should be returned
    /// even if no protocol traffic is flowing that way.
    Doorbell,
}

type PeerTx = Sender<PeerItem>;
type PeerRx = Receiver<PeerItem>;

/// How long a credit-stalled peer writer waits before re-checking for
/// piggyback credit returns it owes in the other direction. This tick is
/// what makes symmetric saturation deadlock-free: even with every writer
/// stalled, each wakes up, sends a credit-only batch (credits consume no
/// credits), and unblocks its peer.
const CREDIT_STALL_TICK: Duration = Duration::from_millis(1);

/// Byte budget for one coalesced peer-mesh batch: coalescing stops (and
/// spills to the next batch) once a batch holds this much, keeping batches
/// far below [`crate::wire::MAX_FRAME_BYTES`]. A single message exceeding
/// the budget still travels — alone, as a bare frame.
const PEER_BATCH_MAX_BYTES: usize = 1 << 20;

/// Counting semaphore over the send-credit window toward one peer.
#[derive(Debug)]
struct CreditGauge {
    avail: Mutex<u64>,
    returned: Condvar,
}

impl CreditGauge {
    fn new(window: u64) -> Self {
        Self {
            avail: Mutex::new(window),
            returned: Condvar::new(),
        }
    }

    /// Returns `n` credits (called when the peer confirms processing).
    fn put(&self, n: u64) {
        *self.avail.lock() += n;
        self.returned.notify_all();
    }

    /// Takes up to `max` credits, waiting until at least one is available
    /// or `timeout` elapses. Returns the number taken (0 on timeout).
    fn take_up_to(&self, max: u64, timeout: Duration) -> u64 {
        let mut avail = self.avail.lock();
        if *avail == 0 && self.returned.wait_for(&mut avail, timeout) {
            return 0;
        }
        let taken = (*avail).min(max);
        *avail -= taken;
        taken
    }
}

/// Number of pooled miss-path RPC links per peer: bounds how many remote
/// reads/writes to one home shard are in flight concurrently from this
/// node (each slot is one TCP connection, used under its own lock).
const RPC_POOL_SIZE: usize = 4;

struct RpcPool {
    slots: Vec<Mutex<Option<Conn>>>,
    next: AtomicU64,
}

impl RpcPool {
    fn new() -> Self {
        Self {
            slots: (0..RPC_POOL_SIZE).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }
}

/// A hot-set reconfiguration job for the coordinator's applier thread.
enum FlipJob {
    /// Apply this published hot set to the deployment.
    Apply(HotSet),
    /// Stop the applier (server teardown).
    Shutdown,
}

/// Per-node state of the epoch-coordinator role (present on exactly one
/// node of a deployment).
struct Churn {
    /// The popularity tracker fed by every client request this node serves.
    coord: Mutex<CacheCoordinator>,
    /// Lock-free sampling counter on the serving path: only one request in
    /// `sampling` ever touches the tracker's lock.
    observe_seq: AtomicU64,
    /// Copy of the tracker's sampling factor (hot-path use).
    sampling: u64,
    /// Keys this coordinator believes are currently installed. Maintained
    /// by the `InstallHot`/`Evict` admin handlers (reconfigurations are
    /// driven over the wire and pass through this node's own handlers, so
    /// the books stay right no matter who drives — the applier thread, a
    /// forced `FlipEpoch`, or an external admin client).
    installed: Mutex<HashSet<u64>>,
    /// Serialises whole reconfigurations (the applier thread and forced
    /// flips may race).
    reconfig: Mutex<()>,
    /// Highest epoch successfully applied: a forced flip can overtake an
    /// auto-closed epoch still queued for the applier thread, and applying
    /// the stale one afterwards would revert the hot set.
    applied_epoch: AtomicU64,
    /// Feeds the applier thread when an epoch closes on the serving path.
    flip_tx: Sender<FlipJob>,
}

/// Outcome of applying a cold (uncached-key) write at the home shard.
enum ColdPut {
    /// Applied, versioned as `ts`.
    Applied(Timestamp),
    /// The key is mid-transition into or out of the hot set; retry.
    Busy,
    /// The shard rejected the write.
    Rejected(String),
}

struct ServerInner {
    node: CcNode,
    metrics: Arc<Metrics>,
    listen_addr: SocketAddr,
    running: AtomicBool,
    /// Set once `connect_peers` has wired the outbound mesh; connection
    /// threads hold incoming traffic until then (TCP buffers it), so no
    /// protocol message is ever dropped or misrouted during boot.
    ready: AtomicBool,
    tags: AtomicU64,
    /// Versions assigned to miss-path (cold-key) writes applied to this
    /// node's KVS shard. The home shard is the single serialisation point
    /// for uncached keys, so ordering cold writes by *its* counter (rather
    /// than the sender's, whose counters advance independently) makes
    /// arrival order the write order — no update is silently discarded.
    /// Hot-set churn bumps the counter past every version it installs or
    /// writes back, so a cold write after an eviction always supersedes
    /// the written-back value.
    cold_versions: AtomicU64,
    /// Keys homed at this shard that are currently in (or transitioning
    /// into/out of) the hot set. While marked, cold writes bounce with
    /// `MissRetry`: the hot-set transition protocol fetches the value,
    /// fills every cache, and only then re-opens (or closes) the cold
    /// path — no write can land in the gap and be shadowed by the caches.
    hot_marks: Mutex<HashSet<u64>>,
    /// Epoch-coordinator role, when this node carries it.
    churn: Option<Churn>,
    /// Outgoing one-way protocol links, indexed by peer node id (self =
    /// `None`). Installed by `connect_peers`.
    peer_txs: Mutex<Vec<Option<PeerTx>>>,
    /// Peer listen addresses (for lazily dialed miss-path RPC links).
    peer_addrs: Mutex<Vec<SocketAddr>>,
    /// Lazily dialed miss-path RPC link pools, one per peer.
    rpc_pools: Vec<RpcPool>,
    /// Batching / flow-control knobs.
    flow: FlowConfig,
    /// Send credits toward each peer (self entry unused). Consumed by the
    /// peer writer threads, refilled by [`Frame::Credit`] returns arriving
    /// on the reverse links.
    peer_credits: Vec<CreditGauge>,
    /// Credits owed *to* each peer: protocol messages received from it and
    /// already processed, not yet confirmed back. The writer threads
    /// piggyback these on their next batch.
    credit_owed: Vec<AtomicU64>,
}

impl ServerInner {
    /// Ships protocol messages produced by the local node to their peers.
    fn ship(&self, outgoing: Vec<Outgoing>) {
        if outgoing.is_empty() {
            return;
        }
        let peers = self.peer_txs.lock();
        for Outgoing { dest, msg, bytes } in outgoing {
            match dest {
                Destination::Broadcast => {
                    for (id, tx) in peers.iter().enumerate() {
                        if let Some(tx) = tx {
                            if id != self.node.node() {
                                self.metrics.record_protocol_out(1);
                                let _ = tx.send(PeerItem::Msg(msg, bytes.clone()));
                            }
                        }
                    }
                }
                Destination::To(node) => {
                    if let Some(tx) = peers.get(node.0 as usize).and_then(Option::as_ref) {
                        self.metrics.record_protocol_out(1);
                        let _ = tx.send(PeerItem::Msg(msg, bytes));
                    }
                }
            }
        }
    }

    /// Books `n` processed protocol messages from peer `from` for credit
    /// return, and — once a quarter window accumulates — rings the writer
    /// toward that peer so the credits flow back even when no protocol
    /// traffic happens to be going that way (an SC update stream is
    /// one-directional; without the doorbell the sender would stall out).
    fn owe_credits(&self, from: usize, n: u64) {
        if n == 0 {
            return;
        }
        let owed = self.credit_owed[from].fetch_add(n, Ordering::Relaxed) + n;
        if owed >= (self.flow.credit_window / 4).max(1) {
            if let Some(tx) = self.peer_txs.lock().get(from).and_then(Option::as_ref) {
                let _ = tx.send(PeerItem::Doorbell);
            }
        }
    }

    /// Blocks until `connect_peers` has wired the outbound mesh.
    fn wait_ready(&self) {
        while !self.ready.load(Ordering::Acquire) {
            if !self.running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// The version the home shard assigns to the next cold-key write.
    fn next_cold_version(&self) -> u32 {
        // u32 wrap after 4 billion cold writes per node; acceptable for the
        // deployments this layer targets (the cache path is unaffected).
        self.cold_versions.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Ensures every future cold-write version exceeds `clock` — called
    /// whenever churn surfaces a version at this home shard (hot-key fetch,
    /// write-back arrival), so a cold write issued after an eviction can
    /// never be discarded as older than the written-back value.
    fn bump_cold_versions(&self, clock: u32) {
        self.cold_versions
            .fetch_max(u64::from(clock) + 1, Ordering::Relaxed);
    }

    /// Applies a cold (uncached-key) write to this node's shard — this node
    /// is the key's home. Checked against the hot-transition marks under
    /// their lock, so no cold write ever interleaves with a hot-set fetch
    /// or landing write-backs (it would be shadowed by the caches or
    /// clobbered by an older write-back).
    fn cold_put(&self, key: u64, value: &[u8], writer: u8) -> ColdPut {
        let marks = self.hot_marks.lock();
        if marks.contains(&key) {
            return ColdPut::Busy;
        }
        let ts = Timestamp::new(self.next_cold_version(), NodeId(writer));
        match self.node.kvs_put(key, value, ts.clock, ts.writer.0) {
            Ok(()) => ColdPut::Applied(ts),
            Err(e) => {
                ColdPut::Rejected(format!("write of key {key} rejected by home shard: {e:?}"))
            }
        }
    }

    /// Evicts `key` from the local cache, shipping a dirty value back to
    /// its (possibly remote) home shard before returning — an `EvictResp`
    /// on the wire therefore means "this replica's copy is gone *and* its
    /// last write is durable at the home".
    fn evict_key(&self, key: u64) -> io::Result<bool> {
        let existed = match self.node.evict_hot(key) {
            EvictHot::NotCached => false,
            EvictHot::Clean => true,
            EvictHot::WrittenBack { ts } => {
                self.bump_cold_versions(ts.clock);
                self.metrics.record_writeback();
                true
            }
            EvictHot::WriteBackRemote { value, ts } => {
                // The cache entry is already gone; this RPC is the only
                // copy of the dirty value, so a transient failure must not
                // drop it — retry with fresh links before giving up.
                let home = self.node.home_node(key);
                let mut attempt = 0;
                loop {
                    attempt += 1;
                    match self.rpc(
                        home,
                        &Frame::WriteBack {
                            key,
                            value: value.clone(),
                            ts,
                        },
                    ) {
                        Ok(Frame::WriteBackResp { .. }) => break,
                        Ok(other) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("unexpected write-back response {other:?}"),
                            ))
                        }
                        Err(_) if attempt < 3 => {
                            std::thread::sleep(Duration::from_millis(10 * attempt))
                        }
                        Err(e) => return Err(e),
                    }
                }
                self.metrics.record_writeback();
                true
            }
        };
        // Coordinator bookkeeping: the key left the hot set.
        if let Some(churn) = &self.churn {
            churn.installed.lock().remove(&key);
        }
        Ok(existed)
    }

    /// Serves a cold (uncached-key) read from this node's shard — this node
    /// is the key's home. Returns `None` while the key transitions into or
    /// out of the hot set: during an eviction the freshest value may still
    /// be in flight from a dirty replica, so serving the shard's copy now
    /// could hand out an older value than cached reads already returned.
    /// The caller retries; the transition fence clears within the round.
    fn cold_get(&self, key: u64) -> Option<Vec<u8>> {
        let marks = self.hot_marks.lock();
        if marks.contains(&key) {
            return None;
        }
        Some(self.node.kvs_get(key))
    }

    /// Feeds one served client request into the popularity tracker (no-op
    /// unless this node is the coordinator); a closed epoch is handed to
    /// the applier thread. The sampling filter runs on a lock-free counter
    /// so discarded requests never contend on the tracker.
    fn observe(&self, key: u64) {
        let Some(churn) = &self.churn else { return };
        let seq = churn.observe_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if seq % churn.sampling != 0 {
            return;
        }
        let hot = churn.coord.lock().observe_sampled(key);
        if let Some(hot) = hot {
            let _ = churn.flip_tx.send(FlipJob::Apply(hot));
        }
    }

    /// Reconfigures the deployment's symmetric caches to hold `hot`: evicts
    /// departing keys from every node (write-backs land before the cold
    /// path re-opens), then installs arriving keys on every node at the
    /// value and version their home shards store. Admin frames go over the
    /// wire to *all* nodes including this one — the same path an external
    /// driver would use, which also keeps the coordinator's bookkeeping in
    /// its own handlers.
    ///
    /// Returns `(installed, evicted)` key counts.
    fn apply_hot_set(&self, hot: &HotSet) -> io::Result<(u64, u64)> {
        let churn = self
            .churn
            .as_ref()
            .expect("apply_hot_set requires the coordinator role");
        let _serial = churn.reconfig.lock();
        // A forced flip can overtake an auto-closed epoch still queued for
        // the applier; applying the stale set afterwards would revert the
        // caches to outdated popularity data. Epoch numbers are unique and
        // monotone (one counter issues them), so skip anything not newer.
        if hot.epoch <= churn.applied_epoch.load(Ordering::Acquire) {
            return Ok((0, 0));
        }
        let target: HashSet<u64> = hot.keys.iter().copied().collect();
        let current = churn.installed.lock().clone();
        let to_evict: Vec<u64> = current.difference(&target).copied().collect();
        // Install in published (hottest-first) order.
        let to_install: Vec<u64> = hot
            .keys
            .iter()
            .copied()
            .filter(|k| !current.contains(k))
            .collect();
        let addrs = self.peer_addrs.lock().clone();
        let mut conns = addrs
            .iter()
            .map(|&addr| Conn::open(addr, &Frame::ClientHello))
            .collect::<io::Result<Vec<_>>>()?;
        let mut evicted = 0u64;
        for &key in &to_evict {
            if let Err(e) = self.evict_everywhere(&mut conns, key) {
                self.abandon_key(&mut conns, key);
                return Err(e);
            }
            evicted += 1;
        }
        let mut installed = 0u64;
        for &key in &to_install {
            match self.install_everywhere(&mut conns, key) {
                Ok(true) => installed += 1,
                // A cache is full: later keys are colder and would fail
                // the same way (the key was already rolled back).
                Ok(false) => break,
                Err(e) => {
                    self.abandon_key(&mut conns, key);
                    return Err(e);
                }
            }
        }
        churn.applied_epoch.fetch_max(hot.epoch, Ordering::Release);
        self.metrics.record_epoch(hot.epoch);
        self.metrics.record_installs(installed);
        self.metrics.record_evictions(evicted);
        Ok((installed, evicted))
    }

    /// Evicts `key` from every node, then re-opens the cold path at its
    /// home shard (every replica dropped its copy and all dirty
    /// write-backs landed by then).
    fn evict_everywhere(&self, conns: &mut [Conn], key: u64) -> io::Result<()> {
        for conn in conns.iter_mut() {
            match conn.call(&Frame::Evict { key })? {
                Frame::EvictResp { .. } => {}
                other => return Err(unexpected_frame("evict", &other)),
            }
        }
        match self.rpc(self.node.home_node(key), &Frame::HotUnmark { key })? {
            Frame::HotUnmarkResp => Ok(()),
            other => Err(unexpected_frame("hot-unmark", &other)),
        }
    }

    /// Installs `key` on every node: fence the home, warm every replica,
    /// then activate. Returns `Ok(false)` (after rolling the key back) if
    /// a cache was full.
    fn install_everywhere(&self, conns: &mut [Conn], key: u64) -> io::Result<bool> {
        let home = self.node.home_node(key);
        // Mark the key hot at its home and fetch the authoritative
        // (value, version): cold writes bounce from here on, so the
        // caches cannot shadow a write accepted after the fetch.
        let (value, ts) = match self.rpc(home, &Frame::HotMark { key })? {
            Frame::HotMarkResp { value, ts } => (value, ts),
            other => return Err(unexpected_frame("hot-mark", &other)),
        };
        // Phase 1: warm every replica. Warming entries run the coherence
        // protocol but refuse client writes, so no write can commit
        // against a half-installed hot set (the unfilled replicas would
        // ack it vacuously and then shadow it with their stale fills).
        for n in 0..conns.len() {
            let ok = match conns[n].call(&Frame::InstallHot {
                key,
                value: value.clone(),
                ts,
                warm: true,
            })? {
                Frame::InstallHotResp { ok } => ok,
                other => return Err(unexpected_frame("install", &other)),
            };
            if !ok {
                // Roll the key back off the nodes that took it (symmetry)
                // and lift the fence.
                for rollback in conns.iter_mut().take(n) {
                    let _ = rollback.call(&Frame::Evict { key });
                }
                let _ = self.rpc(home, &Frame::HotUnmark { key });
                return Ok(false);
            }
        }
        // Phase 2: activate everywhere — only now do client reads and
        // writes start hitting, on a fully symmetric hot set.
        for conn in conns.iter_mut() {
            match conn.call(&Frame::ActivateHot { key })? {
                Frame::ActivateHotResp { .. } => {}
                other => return Err(unexpected_frame("activate", &other)),
            }
        }
        Ok(true)
    }

    /// Best-effort recovery when a reconfiguration step for `key` failed
    /// midway: restore the safe cold state — evict every replica (dirty
    /// copies write back where reachable), lift the home's transition
    /// fence, and drop the key from the coordinator's books so the next
    /// epoch re-derives a correct delta. Without this, a partial failure
    /// would leave the key fenced (cold writes bouncing forever) or cached
    /// on a subset of replicas that no future delta ever touches.
    fn abandon_key(&self, conns: &mut [Conn], key: u64) {
        for conn in conns.iter_mut() {
            let _ = conn.call(&Frame::Evict { key });
        }
        let _ = self.rpc(self.node.home_node(key), &Frame::HotUnmark { key });
        if let Some(churn) = &self.churn {
            churn.installed.lock().remove(&key);
        }
    }

    /// Performs a synchronous miss-path RPC against peer `home`, dialing
    /// (or re-dialing) the pooled link if needed. Slots rotate so up to
    /// [`RPC_POOL_SIZE`] RPCs to one home shard proceed concurrently.
    fn rpc(&self, home: usize, request: &Frame) -> io::Result<Frame> {
        let pool = &self.rpc_pools[home];
        let slot = pool.next.fetch_add(1, Ordering::Relaxed) as usize % pool.slots.len();
        let mut guard = pool.slots[slot].lock();
        if guard.is_none() {
            let addr = self.peer_addrs.lock()[home];
            *guard = Some(Conn::open(
                addr,
                &Frame::RpcHello {
                    from: self.node.node() as u8,
                },
            )?);
        }
        let conn = guard.as_mut().expect("dialed above");
        let result = conn.call(request);
        // Drop broken links so the next call re-dials; an InvalidInput
        // error is the peer's Frame::Error answer over a healthy link.
        if matches!(&result, Err(e) if e.kind() != io::ErrorKind::InvalidInput) {
            *guard = None;
        }
        result
    }

    fn initiate_shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            // Unblock the accept loop.
            let _ = TcpStream::connect(self.listen_addr);
        }
    }
}

/// A running networked ccKVS node.
pub struct NodeServer {
    inner: Arc<ServerInner>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    applier_handle: Option<std::thread::JoinHandle<()>>,
    writer_handles: Vec<std::thread::JoinHandle<()>>,
    metrics_server: Option<MetricsServer>,
}

impl NodeServer {
    /// Binds the listener and starts accepting connections. Peer links are
    /// not yet up: call [`NodeServer::connect_peers`] once every node of
    /// the deployment is listening.
    pub fn start(cfg: NodeServerConfig) -> io::Result<NodeServer> {
        if let Some(epochs) = &cfg.epochs {
            assert!(
                epochs.cache_entries <= cfg.node.cache_capacity,
                "epoch hot set ({} keys) exceeds cache capacity ({})",
                epochs.cache_entries,
                cfg.node.cache_capacity
            );
        }
        let listener = TcpListener::bind(cfg.listen)?;
        let listen_addr = listener.local_addr()?;
        let nodes = cfg.node.nodes;
        let metrics = Arc::new(Metrics::new());
        let (churn, flip_rx) = match cfg.epochs {
            Some(epochs) => {
                let (flip_tx, flip_rx) = unbounded();
                (
                    Some(Churn {
                        coord: Mutex::new(CacheCoordinator::new(epochs)),
                        observe_seq: AtomicU64::new(0),
                        sampling: epochs.sampling,
                        installed: Mutex::new(HashSet::new()),
                        reconfig: Mutex::new(()),
                        applied_epoch: AtomicU64::new(0),
                        flip_tx,
                    }),
                    Some(flip_rx),
                )
            }
            None => (None, None),
        };
        let inner = Arc::new(ServerInner {
            node: CcNode::new(cfg.node),
            metrics: Arc::clone(&metrics),
            listen_addr,
            running: AtomicBool::new(true),
            // A single-node deployment has no mesh to wait for.
            ready: AtomicBool::new(nodes == 1),
            tags: AtomicU64::new(1),
            cold_versions: AtomicU64::new(1),
            hot_marks: Mutex::new(HashSet::new()),
            churn,
            peer_txs: Mutex::new(vec![None; nodes]),
            peer_addrs: Mutex::new(vec![listen_addr; nodes]),
            rpc_pools: (0..nodes).map(|_| RpcPool::new()).collect(),
            flow: cfg.flow,
            peer_credits: (0..nodes)
                .map(|_| CreditGauge::new(cfg.flow.credit_window))
                .collect(),
            credit_owed: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        });
        let metrics_server = match cfg.metrics_listen {
            Some(addr) => Some(crate::metrics::serve_http(
                addr,
                format!("n{}", cfg.node.node),
                metrics,
            )?),
            None => None,
        };
        let applier_handle = match flip_rx {
            Some(rx) => {
                let applier_inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name(format!("cckvs-epochs-n{}", cfg.node.node))
                        .spawn(move || epoch_applier_loop(applier_inner, rx))?,
                )
            }
            None => None,
        };
        let accept_inner = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name(format!("cckvs-accept-n{}", cfg.node.node))
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(NodeServer {
            inner,
            accept_handle: Some(accept_handle),
            applier_handle,
            writer_handles: Vec::new(),
            metrics_server,
        })
    }

    /// The address clients and peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.listen_addr
    }

    /// The metrics endpoint address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(MetricsServer::addr)
    }

    /// The node's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The underlying node (diagnostics).
    pub fn node(&self) -> &CcNode {
        &self.inner.node
    }

    /// Dials the one-way protocol link to every peer, retrying for up to
    /// `timeout` per peer (nodes of a rack boot concurrently). `addrs` is
    /// indexed by node id and must include this node's own entry.
    pub fn connect_peers(&mut self, addrs: &[SocketAddr], timeout: Duration) -> io::Result<()> {
        assert_eq!(
            addrs.len(),
            self.inner.node.config().nodes,
            "one address per node"
        );
        *self.inner.peer_addrs.lock() = addrs.to_vec();
        let me = self.inner.node.node();
        for (peer, &addr) in addrs.iter().enumerate() {
            if peer == me {
                continue;
            }
            let stream = dial_with_retry(addr, timeout)?;
            stream.set_nodelay(true)?;
            let mut writer = BufWriter::new(stream);
            write_frame(&mut writer, &Frame::PeerHello { from: me as u8 })?;
            writer.flush()?;
            let (tx, rx): (PeerTx, PeerRx) = unbounded();
            let writer_inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("cckvs-peer-n{me}-to-n{peer}"))
                .spawn(move || peer_writer_loop(writer_inner, peer, writer, rx))?;
            self.writer_handles.push(handle);
            self.inner.peer_txs.lock()[peer] = Some(tx);
        }
        // Release the connection threads: incoming traffic accepted during
        // boot has been parked in wait_ready (and TCP buffers), never
        // dropped or served against a half-wired mesh.
        self.inner.ready.store(true, Ordering::Release);
        Ok(())
    }

    /// Asks the server to stop accepting connections.
    pub fn initiate_shutdown(&self) {
        self.inner.initiate_shutdown();
    }

    /// Blocks until the server shuts down (via [`Frame::Shutdown`] from a
    /// client or [`NodeServer::initiate_shutdown`]), then tears down peer
    /// links.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.teardown();
    }

    /// Shuts the server down and joins its threads.
    pub fn shutdown(mut self) {
        self.inner.initiate_shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.teardown();
    }

    fn teardown(&mut self) {
        // Dropping the senders disconnects the channels; writer threads
        // drain and exit, closing their sockets (peers see EOF).
        for tx in self.inner.peer_txs.lock().iter_mut() {
            *tx = None;
        }
        for handle in self.writer_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.applier_handle.take() {
            if let Some(churn) = &self.inner.churn {
                let _ = churn.flip_tx.send(FlipJob::Shutdown);
            }
            let _ = handle.join();
        }
        if let Some(server) = self.metrics_server.take() {
            server.shutdown();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.inner.initiate_shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.teardown();
    }
}

fn dial_with_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) {
    let mut conn_id = 0u64;
    while inner.running.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            // Transient accept errors (ECONNABORTED, EMFILE, ...) must not
            // take a healthy node offline; back off briefly and retry.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if !inner.running.load(Ordering::SeqCst) {
            break;
        }
        conn_id += 1;
        let conn_inner = Arc::clone(&inner);
        let name = format!("cckvs-conn-n{}-{}", inner.node.node(), conn_id);
        // Connection threads are detached: they exit on EOF when the remote
        // side closes, and the process/test tears sockets down on shutdown.
        let _ = std::thread::Builder::new().name(name).spawn(move || {
            let _ = serve_connection(stream, conn_inner);
        });
    }
}

fn serve_connection(stream: TcpStream, inner: Arc<ServerInner>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    match read_frame(&mut reader)? {
        // Hold every connection until the outbound peer mesh is wired:
        // serving a Lin put earlier would drop its invalidations (the
        // writer links don't exist yet) and hang the client forever, and
        // a miss-path RPC would dial a placeholder peer address.
        Some(Frame::ClientHello) => {
            inner.wait_ready();
            client_loop(&mut reader, &mut writer, &inner)
        }
        Some(Frame::PeerHello { from }) => {
            if usize::from(from) >= inner.node.config().nodes {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("peer hello from unknown node {from}"),
                ));
            }
            inner.wait_ready();
            peer_receive_loop(&mut reader, usize::from(from), &inner)
        }
        Some(Frame::RpcHello { .. }) => {
            inner.wait_ready();
            rpc_serve_loop(&mut reader, &mut writer, &inner)
        }
        Some(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected hello frame, got {other:?}"),
        )),
        None => Ok(()),
    }
}

/// What serving one client frame asks of the connection loop.
enum ClientAction {
    /// Send this response.
    Respond(Frame),
    /// The client asked the node to shut down; end the connection.
    Shutdown,
}

fn client_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    inner: &ServerInner,
) -> io::Result<()> {
    while let Some(frame) = read_frame(reader)? {
        match frame {
            // A coalesced request batch: serve every sub-frame in order and
            // answer with ONE response batch — request k's response is at
            // position k. The single write+flush at the end is the
            // server-side half of the client's coalescing win.
            Frame::Batch { frames } => {
                inner.metrics.record_batch(frames.len() as u64);
                let mut responses = Vec::with_capacity(frames.len());
                for sub in frames {
                    match serve_client_frame(inner, sub)? {
                        ClientAction::Respond(response) => responses.push(response),
                        ClientAction::Shutdown => return Ok(()),
                    }
                }
                write_frame(writer, &Frame::Batch { frames: responses })?;
                writer.flush()?;
            }
            frame => match serve_client_frame(inner, frame)? {
                ClientAction::Respond(response) => {
                    write_frame(writer, &response)?;
                    writer.flush()?;
                }
                ClientAction::Shutdown => return Ok(()),
            },
        }
    }
    Ok(())
}

/// Serves one (non-batch) client frame. Shared by the single-frame and
/// batched paths, so batching changes the framing and nothing else.
fn serve_client_frame(inner: &ServerInner, frame: Frame) -> io::Result<ClientAction> {
    let response = match frame {
        Frame::Get { key } => {
            inner.metrics.record_get();
            inner.observe(key);
            serve_get(inner, key)?
        }
        Frame::Put { key, value } => {
            inner.metrics.record_put();
            inner.observe(key);
            serve_put(inner, key, &value)?
        }
        Frame::InstallHot {
            key,
            value,
            ts,
            warm,
        } => {
            let ok = if warm {
                inner.node.install_hot_warm(key, &value, ts)
            } else {
                inner.node.install_hot(key, &value, ts)
            };
            if ok {
                // Coordinator bookkeeping: the key joined the hot set.
                if let Some(churn) = &inner.churn {
                    churn.installed.lock().insert(key);
                }
            }
            Frame::InstallHotResp { ok }
        }
        Frame::ActivateHot { key } => Frame::ActivateHotResp {
            ok: inner.node.activate_hot(key),
        },
        Frame::Evict { key } => Frame::EvictResp {
            existed: inner.evict_key(key)?,
        },
        Frame::FlipEpoch => match &inner.churn {
            None => Frame::Error {
                message: "this node does not run the epoch coordinator".to_string(),
            },
            Some(churn) => {
                let hot = churn.coord.lock().close_epoch();
                match inner.apply_hot_set(&hot) {
                    Ok((installed, evicted)) => Frame::FlipEpochResp {
                        epoch: hot.epoch,
                        installed: installed as u32,
                        evicted: evicted as u32,
                    },
                    Err(e) => Frame::Error {
                        message: format!("epoch flip failed: {e}"),
                    },
                }
            }
        },
        Frame::Ping => Frame::Pong,
        Frame::Shutdown => {
            inner.initiate_shutdown();
            return Ok(ClientAction::Shutdown);
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected client frame {other:?}"),
            ))
        }
    };
    Ok(ClientAction::Respond(response))
}

fn serve_get(inner: &ServerInner, key: u64) -> io::Result<Frame> {
    let deadline = Instant::now() + HOT_TRANSITION_RETRY;
    let mut backoff = Duration::from_micros(50);
    loop {
        if let CacheGet::Hit { value, ts } = inner.node.cache_get(key) {
            inner.metrics.record_cache(true);
            return Ok(Frame::GetResp {
                cached: true,
                ts,
                value,
            });
        }
        // Cold path. Like cold writes, cold reads bounce while the key
        // transitions into or out of the hot set: during an eviction the
        // freshest value may still be in flight from a dirty replica, and
        // serving the shard's current copy would hand out an older value
        // than cached reads already returned.
        let home = inner.node.home_node(key);
        let value = if home == inner.node.node() {
            inner.cold_get(key)
        } else {
            match inner.rpc(home, &Frame::MissGet { key })? {
                Frame::MissGetResp { value } => Some(value),
                Frame::MissRetry => None,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected rpc response {other:?}"),
                    ))
                }
            }
        };
        match value {
            Some(value) => {
                // One logical miss, however many bounce retries it took.
                inner.metrics.record_cache(false);
                if home != inner.node.node() {
                    inner.metrics.record_remote_read();
                }
                return Ok(Frame::GetResp {
                    cached: false,
                    ts: consistency::lamport::Timestamp::ZERO,
                    value,
                });
            }
            None if Instant::now() >= deadline => {
                return Ok(Frame::Error {
                    message: format!("hot-set transition of key {key} did not complete"),
                });
            }
            None => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(2));
            }
        }
    }
}

/// How long an operation keeps retrying while its key transitions into or
/// out of the hot set before giving up (transitions take milliseconds;
/// this bound only matters if the coordinator dies mid-reconfiguration).
const HOT_TRANSITION_RETRY: Duration = Duration::from_secs(5);

fn serve_put(inner: &ServerInner, key: u64, value: &[u8]) -> io::Result<Frame> {
    let deadline = Instant::now() + HOT_TRANSITION_RETRY;
    let mut backoff = Duration::from_micros(50);
    loop {
        let tag = inner.tags.fetch_add(1, Ordering::Relaxed);
        match inner.node.cache_put(key, value, tag) {
            CachePut::Done { ts, outgoing } => {
                inner.ship(outgoing);
                inner.metrics.record_cache(true);
                return Ok(Frame::PutResp { cached: true, ts });
            }
            CachePut::Pending { ts, outgoing } => {
                inner.ship(outgoing);
                // Blocking write (Lin): the peer-receive thread that
                // delivers the final ack signals the commit.
                inner.node.wait_committed(key, ts);
                inner.metrics.record_cache(true);
                return Ok(Frame::PutResp { cached: true, ts });
            }
            CachePut::Miss => {}
        }
        let home = inner.node.home_node(key);
        let me = inner.node.node() as u8;
        // Cold path: versions are assigned by the *home* shard on arrival
        // (see `next_cold_version`); the tag on the wire is only a hint for
        // diagnostics. Sender-side counters advance independently and would
        // silently drop later writes. A `Busy`/`MissRetry` answer means the
        // key is mid-transition between the hot set and the cold path —
        // retry the whole probe, it lands on whichever side wins.
        let ts = if home == inner.node.node() {
            match inner.cold_put(key, value, me) {
                ColdPut::Applied(ts) => Some(ts),
                ColdPut::Busy => None,
                ColdPut::Rejected(message) => return Ok(Frame::Error { message }),
            }
        } else {
            match inner.rpc(
                home,
                &Frame::MissPut {
                    key,
                    tag: tag as u32,
                    writer: me,
                    value: value.to_vec(),
                },
            ) {
                Ok(Frame::MissPutResp { ts }) => Some(ts),
                Ok(Frame::MissRetry) => None,
                // The home shard rejected the write (Frame::Error over
                // a healthy link): relay the reason to the client.
                Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                    return Ok(Frame::Error {
                        message: e.to_string(),
                    })
                }
                Err(e) => return Err(e),
                Ok(other) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected rpc response {other:?}"),
                    ))
                }
            }
        };
        match ts {
            Some(ts) => {
                // One logical miss, however many bounce retries it took.
                inner.metrics.record_cache(false);
                if home != inner.node.node() {
                    inner.metrics.record_remote_write();
                }
                return Ok(Frame::PutResp { cached: false, ts });
            }
            None if Instant::now() >= deadline => {
                return Ok(Frame::Error {
                    message: format!("hot-set transition of key {key} did not complete"),
                });
            }
            None => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(2));
            }
        }
    }
}

fn peer_receive_loop(
    reader: &mut BufReader<TcpStream>,
    from: usize,
    inner: &ServerInner,
) -> io::Result<()> {
    while let Some(frame) = read_frame(reader)? {
        let processed = match frame {
            Frame::Batch { frames } => {
                let mut processed = 0;
                for sub in frames {
                    processed += deliver_peer_frame(inner, from, sub)?;
                }
                processed
            }
            other => deliver_peer_frame(inner, from, other)?,
        };
        // Confirm processing back to the sender: these returns are what
        // refill its credit window toward this node.
        inner.owe_credits(from, processed);
    }
    Ok(())
}

/// Handles one non-batch frame arriving on a peer link. Returns how many
/// flow-controlled messages it consumed (credit returns themselves are
/// free: they must flow even when the window is closed).
fn deliver_peer_frame(inner: &ServerInner, from: usize, frame: Frame) -> io::Result<u64> {
    match frame {
        Frame::Protocol { msg, bytes } => {
            inner.metrics.record_protocol_in(1);
            let outgoing = inner.node.deliver(&msg, bytes.as_deref());
            inner.ship(outgoing);
            Ok(1)
        }
        Frame::Credit { n } => {
            inner.peer_credits[from].put(u64::from(n));
            Ok(0)
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected peer frame {other:?}"),
        )),
    }
}

fn rpc_serve_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    inner: &ServerInner,
) -> io::Result<()> {
    while let Some(frame) = read_frame(reader)? {
        let response = match frame {
            Frame::MissGet { key } => match inner.cold_get(key) {
                Some(value) => Frame::MissGetResp { value },
                // Key mid-transition: during an eviction the freshest value
                // may still be in flight from a dirty replica.
                None => Frame::MissRetry,
            },
            Frame::MissPut {
                key,
                tag: _,
                writer: writer_id,
                value,
            } => {
                // Home-assigned version: arrival order at the single home
                // shard is the write order for cold keys (the sender's tag
                // is ignored — see `serve_put`).
                match inner.cold_put(key, &value, writer_id) {
                    ColdPut::Applied(ts) => Frame::MissPutResp { ts },
                    ColdPut::Busy => Frame::MissRetry,
                    ColdPut::Rejected(message) => Frame::Error { message },
                }
            }
            Frame::WriteBack { key, value, ts } => {
                // A peer evicted its dirty copy of a key homed here. Apply
                // versioned (every replica offers its copy; the newest
                // wins) and push the cold counter past it so later cold
                // writes supersede the written-back value.
                inner.bump_cold_versions(ts.clock);
                match inner.node.write_back(key, &value, ts) {
                    Ok(applied) => Frame::WriteBackResp { applied },
                    Err(e) => Frame::Error {
                        message: format!("write-back of key {key} rejected by home shard: {e:?}"),
                    },
                }
            }
            Frame::HotMark { key } => {
                // Atomically close the cold write path for this key and
                // read the authoritative value+version the caches will be
                // filled with.
                let mut marks = inner.hot_marks.lock();
                marks.insert(key);
                let (value, ts) = inner.node.kvs_get_versioned(key);
                drop(marks);
                inner.bump_cold_versions(ts.clock);
                Frame::HotMarkResp { value, ts }
            }
            Frame::HotUnmark { key } => {
                inner.hot_marks.lock().remove(&key);
                Frame::HotUnmarkResp
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected rpc frame {other:?}"),
                ))
            }
        };
        write_frame(writer, &response)?;
        writer.flush()?;
    }
    Ok(())
}

/// The outbound half of one peer link: coalesces bursts of protocol
/// traffic into [`Frame::Batch`] messages (§6.3's software-multicast
/// amortisation) under credit-based flow control (§6.4), with credit
/// returns owed to the peer piggybacked on every batch.
///
/// Value bytes stay behind the broadcast-shared `Arc` all the way to
/// serialisation: no per-peer copy is ever materialised.
fn peer_writer_loop(
    inner: Arc<ServerInner>,
    peer: usize,
    mut writer: BufWriter<TcpStream>,
    rx: PeerRx,
) {
    let gauge = &inner.peer_credits[peer];
    let owed = &inner.credit_owed[peer];
    let max_ops = inner.flow.peer_batch_ops.max(1) as u64;
    let mut queue: VecDeque<(ProtocolMsg, Option<Arc<[u8]>>)> = VecDeque::new();
    let mut builder = BatchBuilder::new();
    let mut stall_started: Option<Instant> = None;
    // `open` turns false when the channel disconnects (server teardown);
    // the queue is then drained without flow control — the reverse link
    // carrying credit returns may already be gone, and blocking on it
    // would hang shutdown.
    let mut open = true;
    while open || !queue.is_empty() {
        if open {
            if queue.is_empty() && owed.load(Ordering::Relaxed) == 0 {
                // Idle: wait for traffic or a credit doorbell.
                match rx.recv() {
                    Ok(PeerItem::Msg(msg, bytes)) => queue.push_back((msg, bytes)),
                    Ok(PeerItem::Doorbell) => {}
                    Err(_) => open = false,
                }
            }
            loop {
                match rx.try_recv() {
                    Ok(PeerItem::Msg(msg, bytes)) => queue.push_back((msg, bytes)),
                    Ok(PeerItem::Doorbell) => {}
                    Err(TryRecvError::Empty) => break,
                    // Teardown must be noticed HERE too: a writer stalled
                    // on credits never reaches the blocking recv above, and
                    // missing the disconnect would leave it ticking forever
                    // with NodeServer::shutdown joined on it.
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
        }
        // Piggyback credit returns first: they are exempt from flow control
        // and must go out even while this writer is itself stalled.
        let returns = owed.swap(0, Ordering::Relaxed);
        if returns > 0 {
            builder.push(&Frame::Credit {
                n: returns.min(u64::from(u32::MAX)) as u32,
            });
        }
        let want = (queue.len() as u64).min(max_ops);
        let granted = if want == 0 {
            0
        } else if open {
            let taken = gauge.take_up_to(want, CREDIT_STALL_TICK);
            if taken == 0 {
                // Window exhausted: note when the stall began, send any
                // credit-only payload assembled above, and tick again.
                stall_started.get_or_insert_with(Instant::now);
            } else if let Some(started) = stall_started.take() {
                inner
                    .metrics
                    .record_credit_stall_ns(started.elapsed().as_nanos() as u64);
            }
            taken
        } else {
            want
        };
        let mut packed = 0u64;
        while packed < granted {
            let (msg, bytes) = queue.front().expect("granted <= queue.len()");
            // Byte bound: op count alone would let a burst of large values
            // coalesce past MAX_FRAME_BYTES, and the receiver drops an
            // oversized frame together with the whole peer link. A message
            // that is itself large still travels — alone, as a bare frame.
            let projected = builder.bytes() + 64 + bytes.as_deref().map_or(0, <[u8]>::len);
            if builder.count() > 0 && projected > PEER_BATCH_MAX_BYTES {
                break;
            }
            builder.push_protocol(msg, bytes.as_deref());
            queue.pop_front();
            packed += 1;
        }
        if packed < granted {
            // Credits for the messages this batch had no room for go back
            // to the window; they will be re-taken when their turn comes.
            gauge.put(granted - packed);
        }
        if builder.count() > 0 {
            // Singleton messages leave the builder as bare frames (see
            // `BatchBuilder::write_to`) — only count what actually travels
            // as a coalesced batch, or the batch-size percentiles drown in
            // ones that were never batched.
            if builder.count() > 1 && packed > 0 {
                inner.metrics.record_batch(packed);
            }
            // Write and flush the whole coalesced message: the batch is
            // the amortisation, and an unflushed batch is invisible to the
            // peer — holding one back while stalled on credits (or while
            // blocking for traffic) would deadlock the window.
            if builder.write_to(&mut writer).is_err() || writer.flush().is_err() {
                return;
            }
        }
    }
    let _ = writer.flush();
}

/// The coordinator's reconfiguration thread: applies hot sets published by
/// the popularity tracker, coalescing a backlog to the newest set. Errors
/// are swallowed deliberately — the installed-set bookkeeping lives in the
/// admin handlers, so a partially applied epoch simply leaves a smaller
/// delta for the next one (the system converges instead of wedging).
fn epoch_applier_loop(inner: Arc<ServerInner>, rx: Receiver<FlipJob>) {
    loop {
        let mut latest = match rx.recv() {
            Ok(FlipJob::Apply(hot)) => hot,
            Ok(FlipJob::Shutdown) | Err(_) => return,
        };
        let mut stop = false;
        while let Ok(next) = rx.try_recv() {
            match next {
                FlipJob::Apply(hot) => latest = hot,
                FlipJob::Shutdown => {
                    stop = true;
                    break;
                }
            }
        }
        let _ = inner.apply_hot_set(&latest);
        if stop {
            return;
        }
    }
}

fn unexpected_frame(what: &str, frame: &Frame) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected {what} response {frame:?}"),
    )
}
