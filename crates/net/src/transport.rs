//! The transport seam: how ccKVS endpoints move framed bytes.
//!
//! The paper's rack runs its coherence protocol over two-sided RDMA UD —
//! *unreliable datagrams* — while everything above the socket in this
//! reproduction (per-connection state machines, credit-gated peer links,
//! the PR 5 replay machinery) only ever assumed an ordered byte stream
//! with readiness events. This module makes that seam explicit:
//!
//! * [`Transport`] — dial and listen; produces [`Connection`]s and a
//!   [`TransportListener`].
//! * [`Connection`] — an ordered byte stream ([`Read`] + [`Write`]) with
//!   the readiness hooks the epoll reactor needs: a raw fd to register,
//!   blocking-mode control for the boot-time peer handshake, and a
//!   [`Connection::datagram_cap`] hint so batching layers keep one
//!   sub-batch within one datagram.
//! * [`TcpTransport`] — the original path, byte-for-byte: `SO_REUSEADDR`
//!   listener, `TCP_NODELAY` connections.
//! * [`UdpTransport`] — the paper-shaped fabric: every connection is a
//!   connected UDP socket pair carrying sequence-numbered datagrams with
//!   cumulative acks, retransmission, reorder buffering and duplicate
//!   suppression — the same discipline the `PeerLink` replay layer
//!   applies at frame granularity, here applied at datagram granularity
//!   so *every* connection (client, peer, RPC) survives loss. A
//!   [`FaultPlan`] injects deterministic drop/duplicate/reorder faults
//!   for the lossy-rack e2es.
//!
//! # UDP framing and recovery
//!
//! Datagrams are typed: `SYN`/`SYN-ACK` (connection handshake, nonce
//! matched), `DATA {seq, payload}`, `ACK {cum}`, `FIN {seq}`. Payloads
//! are capped at [`MAX_DATAGRAM_BYTES`]; the serving layer's peer pump
//! reads [`Connection::datagram_cap`] and sizes coherence sub-batches to
//! fit, so one batch normally rides one datagram. Sequence numbers count
//! datagrams; the receiver delivers the contiguous prefix, parks
//! out-of-order arrivals in a bounded reorder buffer, drops duplicates
//! and re-acks them. Senders retain every datagram until its sequence
//! number is covered by a cumulative ack — retained traffic is
//! retransmitted on an exponential timer by one process-wide pacer
//! thread (spawned lazily on first UDP use: the TCP path keeps its exact
//! thread census). A connection with no ack progress for
//! [`UDP_DEAD_AFTER`] is marked broken and surfaces an error on its next
//! use, which feeds the existing redial/generation machinery unchanged.
//!
//! Accepting is connection-per-socket: the listener socket only ever
//! sees `SYN`s; each accepted connection gets a fresh connected socket
//! (so ICMP errors and epoll readiness behave per-connection, exactly
//! like TCP fds), and the `SYN-ACK` is sent *from* that socket so the
//! dialer learns the connection address from its source.

use crate::wire::MAX_DATAGRAM_BYTES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::os::fd::{AsRawFd, RawFd};
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Which wire fabric a deployment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// Kernel TCP streams (the original serving-layer path).
    #[default]
    Tcp,
    /// Unreliable datagrams with userspace recovery (the paper's fabric
    /// shape).
    Udp,
    /// The deterministic in-process fabric ([`crate::sim::SimNet`]) the
    /// model checker schedules explicitly. Not constructible from CLI
    /// flags or topology files: a sim connection only means something
    /// relative to the hub that owns its event queue.
    Sim,
}

impl TransportKind {
    /// Stable label (`"tcp"` / `"udp"` / `"sim"`); the first two are the
    /// tokens the CLI flags and topology files use.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Tcp => "tcp",
            TransportKind::Udp => "udp",
            TransportKind::Sim => "sim",
        }
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tcp" => Ok(TransportKind::Tcp),
            "udp" => Ok(TransportKind::Udp),
            "sim" => Err(
                "the sim transport is in-process only (tests and the model checker \
                 build it from cckvs_net::sim::SimNet); deployments use tcp or udp"
                    .to_string(),
            ),
            other => Err(format!("unknown transport `{other}` (tcp|udp)")),
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic datagram fault injection for the lossy-rack e2es:
/// each percentage is rolled independently per datagram *send* (including
/// retransmissions, so recovery itself is exercised under loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultPlan {
    /// Percent of datagrams silently dropped.
    pub drop_pct: u8,
    /// Percent of datagrams sent twice.
    pub dup_pct: u8,
    /// Percent of datagrams held back and released after the next send
    /// (pairwise reordering; an idle connection's held datagram is
    /// released by the pacer).
    pub reorder_pct: u8,
    /// RNG seed; each connection derives its own stream from it.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan dropping, duplicating and reordering `pct`% of datagrams.
    pub fn uniform(pct: u8, seed: u64) -> FaultPlan {
        FaultPlan {
            drop_pct: pct,
            dup_pct: pct,
            reorder_pct: pct,
            seed,
        }
    }

    fn is_noop(&self) -> bool {
        self.drop_pct == 0 && self.dup_pct == 0 && self.reorder_pct == 0
    }
}

/// Transport selection plus its knobs — the value carried by
/// `NodeServerConfig`/`RackConfig`/`ClientBuilder`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportConfig {
    /// The fabric.
    pub kind: TransportKind,
    /// Datagram fault injection (UDP only; ignored by TCP).
    pub faults: Option<FaultPlan>,
}

impl TransportConfig {
    /// Plain TCP (the default).
    pub fn tcp() -> TransportConfig {
        TransportConfig::default()
    }

    /// UDP datagrams with loss recovery, no injected faults.
    pub fn udp() -> TransportConfig {
        TransportConfig {
            kind: TransportKind::Udp,
            faults: None,
        }
    }

    /// UDP with an injected [`FaultPlan`].
    pub fn udp_with_faults(faults: FaultPlan) -> TransportConfig {
        TransportConfig {
            kind: TransportKind::Udp,
            faults: Some(faults),
        }
    }

    /// Instantiates the transport this config describes.
    pub fn build(&self) -> Arc<dyn Transport> {
        match self.kind {
            TransportKind::Tcp => Arc::new(TcpTransport),
            TransportKind::Udp => Arc::new(UdpTransport {
                faults: self.faults.filter(|f| !f.is_noop()),
            }),
            TransportKind::Sim => panic!(
                "sim transport endpoints are relative to an in-process hub; \
                 build them via cckvs_net::sim::SimNet, not TransportConfig"
            ),
        }
    }
}

/// An established, ordered, reliable byte stream over some fabric.
///
/// The serving layer drives connections exactly the way it drove
/// `TcpStream`s: nonblocking reads/writes from shard event loops (with
/// the raw fd registered for level-triggered readiness), and blocking
/// reads with a timeout during the boot-time peer handshake. `read`
/// returning `Ok(0)` means the peer closed; `WouldBlock` means starved.
/// `write` never returns `Ok(0)`.
pub trait Connection: Read + Write + Send + fmt::Debug {
    /// The fd to register with the reactor's poller for readiness.
    fn raw_fd(&self) -> RawFd;

    /// Switches between nonblocking (event-loop) and blocking
    /// (handshake/teardown) operation.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// Read timeout for blocking-mode reads.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// The remote address.
    fn peer_addr(&self) -> io::Result<SocketAddr>;

    /// A second handle to the same connection (for split reader/writer
    /// ownership in blocking clients).
    fn try_clone(&self) -> io::Result<Box<dyn Connection>>;

    /// `Some(cap)` when the fabric is datagram-based and writers should
    /// keep one logical batch within `cap` bytes so it rides a single
    /// datagram. `None` for streams.
    fn datagram_cap(&self) -> Option<usize> {
        None
    }
}

/// A bound, nonblocking listener producing [`Connection`]s.
pub trait TransportListener: Send {
    /// Accepts one ready connection; `Ok(None)` when none is pending.
    /// Returned connections are nonblocking and tuned for event-loop use.
    fn accept(&mut self) -> io::Result<Option<Box<dyn Connection>>>;

    /// The bound address (with the ephemeral port resolved).
    fn local_addr(&self) -> io::Result<SocketAddr>;

    /// The fd to register with the poller for accept readiness.
    fn raw_fd(&self) -> RawFd;
}

/// A connection fabric: how to listen and how to dial.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Which fabric this is.
    fn kind(&self) -> TransportKind;

    /// Binds a nonblocking listener.
    fn listen(&self, addr: SocketAddr) -> io::Result<Box<dyn TransportListener>>;

    /// Dials `addr`, completing within `timeout`. The returned connection
    /// is *blocking* (handshakes run on it directly); callers switch it
    /// to nonblocking before handing it to an event loop.
    fn dial(&self, addr: SocketAddr, timeout: Duration) -> io::Result<Box<dyn Connection>>;
}

// ---------------------------------------------------------------------------
// TCP: the original path, unchanged behavior behind the trait.
// ---------------------------------------------------------------------------

/// Kernel TCP streams — the serving layer's original fabric.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpTransport;

impl Transport for TcpTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }

    fn listen(&self, addr: SocketAddr) -> io::Result<Box<dyn TransportListener>> {
        let listener = reactor::listen_reuseaddr(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Box::new(TcpListenerAdapter { listener }))
    }

    fn dial(&self, addr: SocketAddr, timeout: Duration) -> io::Result<Box<dyn Connection>> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Box::new(TcpConnection { stream }))
    }
}

struct TcpListenerAdapter {
    listener: std::net::TcpListener,
}

impl TransportListener for TcpListenerAdapter {
    fn accept(&mut self) -> io::Result<Option<Box<dyn Connection>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                // A conn that refuses tuning is dropped, as before: it
                // would otherwise serve with latency-hostile Nagle.
                if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                    return Ok(None);
                }
                Ok(Some(Box::new(TcpConnection { stream })))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    fn raw_fd(&self) -> RawFd {
        self.listener.as_raw_fd()
    }
}

/// A [`Connection`] over one `TcpStream`.
#[derive(Debug)]
pub struct TcpConnection {
    stream: TcpStream,
}

impl Read for TcpConnection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpConnection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Connection for TcpConnection {
    fn raw_fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.stream.set_nonblocking(nonblocking)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    fn try_clone(&self) -> io::Result<Box<dyn Connection>> {
        Ok(Box::new(TcpConnection {
            stream: self.stream.try_clone()?,
        }))
    }
}

// ---------------------------------------------------------------------------
// UDP: sequence numbers + cumulative acks + retransmission over datagrams.
// ---------------------------------------------------------------------------

/// Datagram type tags.
const DG_SYN: u8 = 1;
const DG_SYNACK: u8 = 2;
const DG_DATA: u8 = 3;
const DG_ACK: u8 = 4;
const DG_FIN: u8 = 5;

/// `DATA`/`FIN` header: type byte + u64 sequence number.
const DG_HDR: usize = 1 + 8;

/// Initial retransmission timeout (doubles per retry, capped).
const UDP_RTO_MIN: Duration = Duration::from_millis(20);
/// Retransmission timeout cap.
const UDP_RTO_MAX: Duration = Duration::from_millis(500);
/// Longest the pacer thread sleeps between passes. The actual sleep is
/// deadline-driven — it wakes at the nearest retained datagram's RTO,
/// floored at the reactor's fine timer resolution — so an idle fabric
/// ticks at this cadence while a loss burst retransmits on time.
const UDP_PACER_TICK: Duration = Duration::from_millis(5);
/// A connection with retained traffic and no cumulative-ack progress for
/// this long is broken: the peer is gone. Mirrors a TCP RST feeding the
/// redial machinery.
pub const UDP_DEAD_AFTER: Duration = Duration::from_secs(10);
/// How long a dropped connection lingers to retransmit its `FIN` and ack
/// the peer's.
const UDP_LINGER: Duration = Duration::from_secs(2);
/// Dialer SYN retry cadence.
const UDP_DIAL_RETRY: Duration = Duration::from_millis(100);
/// Out-of-order datagrams parked per connection before further
/// out-of-window arrivals are dropped (retransmission recovers them).
const UDP_REORDER_CAP: usize = 4096;
/// Retransmissions per connection per pacer tick (burst cap).
const UDP_RETX_BURST: usize = 64;
/// How long the listener remembers a handshake so duplicate `SYN`s get
/// the same `SYN-ACK` instead of a second connection.
const UDP_HANDSHAKE_MEMORY: Duration = Duration::from_secs(10);

/// Unreliable datagrams with userspace loss/reorder recovery.
#[derive(Debug, Clone, Copy, Default)]
pub struct UdpTransport {
    /// Injected datagram faults, applied to every connection this
    /// transport creates (both sides of loopback tests usually share one
    /// plan; each connection derives an independent RNG stream).
    pub faults: Option<FaultPlan>,
}

impl Transport for UdpTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Udp
    }

    fn listen(&self, addr: SocketAddr) -> io::Result<Box<dyn TransportListener>> {
        let sock = UdpSocket::bind(addr)?;
        sock.set_nonblocking(true)?;
        Ok(Box::new(UdpListener {
            sock,
            faults: self.faults,
            pending: HashMap::new(),
        }))
    }

    fn dial(&self, addr: SocketAddr, timeout: Duration) -> io::Result<Box<dyn Connection>> {
        let bind_addr: SocketAddr = if addr.is_ipv4() {
            "0.0.0.0:0".parse().expect("static addr")
        } else {
            "[::]:0".parse().expect("static addr")
        };
        let sock = UdpSocket::bind(bind_addr)?;
        sock.set_read_timeout(Some(UDP_DIAL_RETRY))?;
        let nonce: u64 = rand::thread_rng().gen();
        let mut syn = [0u8; DG_HDR];
        syn[0] = DG_SYN;
        syn[1..DG_HDR].copy_from_slice(&nonce.to_le_bytes());
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 64];
        // SYN → SYN-ACK, retrying on silence. The SYN-ACK's *source*
        // address is the fresh per-connection socket the listener bound;
        // connecting to it pins this socket pair together (and lets ICMP
        // errors from a dead peer surface as recv errors, like RSTs).
        sock.send_to(&syn, addr)?;
        loop {
            match sock.recv_from(&mut buf) {
                Ok((n, from))
                    if n >= DG_HDR
                        && buf[0] == DG_SYNACK
                        && buf[1..DG_HDR] == nonce.to_le_bytes() =>
                {
                    sock.connect(from)?;
                    sock.set_read_timeout(None)?;
                    return Ok(Box::new(UdpConnection::establish(
                        sock,
                        conn_faults(self.faults, nonce),
                    )));
                }
                Ok(_) => {} // stray datagram; keep waiting
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("udp dial to {addr} timed out"),
                        ));
                    }
                    sock.send_to(&syn, addr)?;
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                    // ICMP port-unreachable from a previous SYN: the
                    // listener isn't up (yet). Keep retrying within the
                    // budget — boot-time peer dials race node starts.
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(UDP_DIAL_RETRY);
                    sock.send_to(&syn, addr)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Derives one connection's fault stream from the transport plan.
fn conn_faults(plan: Option<FaultPlan>, nonce: u64) -> Option<Faults> {
    plan.filter(|p| !p.is_noop()).map(|plan| Faults {
        rng: StdRng::seed_from_u64(plan.seed ^ nonce),
        plan,
    })
}

struct UdpListener {
    sock: UdpSocket,
    faults: Option<FaultPlan>,
    /// Recently answered handshakes: a duplicate `SYN` (ours got a lost
    /// `SYN-ACK`, or the dialer retried early) re-sends the same
    /// `SYN-ACK` from the same connection socket instead of minting a
    /// second connection.
    pending: HashMap<(SocketAddr, u64), (UdpSocket, Instant)>,
}

impl TransportListener for UdpListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn Connection>>> {
        let mut buf = [0u8; 64];
        loop {
            match self.sock.recv_from(&mut buf) {
                Ok((n, from)) => {
                    if n < DG_HDR || buf[0] != DG_SYN {
                        continue; // the listener socket only speaks SYN
                    }
                    let nonce =
                        u64::from_le_bytes(buf[1..DG_HDR].try_into().expect("header length"));
                    let mut synack = [0u8; DG_HDR];
                    synack[0] = DG_SYNACK;
                    synack[1..DG_HDR].copy_from_slice(&nonce.to_le_bytes());
                    if let Some((conn_sock, _)) = self.pending.get(&(from, nonce)) {
                        let _ = conn_sock.send(&synack);
                        continue;
                    }
                    let local_ip = self.sock.local_addr()?.ip();
                    let conn_sock = UdpSocket::bind(SocketAddr::new(local_ip, 0))?;
                    conn_sock.connect(from)?;
                    conn_sock.set_nonblocking(true)?;
                    let _ = conn_sock.send(&synack);
                    let now = Instant::now();
                    self.pending.retain(|_, (_, expires)| *expires > now);
                    self.pending.insert(
                        (from, nonce),
                        (conn_sock.try_clone()?, now + UDP_HANDSHAKE_MEMORY),
                    );
                    return Ok(Some(Box::new(UdpConnection::establish(
                        conn_sock,
                        conn_faults(self.faults, nonce),
                    ))));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    fn raw_fd(&self) -> RawFd {
        self.sock.as_raw_fd()
    }
}

/// Per-connection fault stream.
struct Faults {
    plan: FaultPlan,
    rng: StdRng,
}

impl Faults {
    fn roll(&mut self, pct: u8) -> bool {
        pct > 0 && self.rng.gen_range(0..100u8) < pct
    }
}

/// One retained (unacknowledged) outbound datagram.
struct Retained {
    seq: u64,
    bytes: Vec<u8>,
    sent_at: Instant,
    tries: u32,
}

/// Mutable reliability state of one UDP connection.
struct UdpState {
    /// Next outbound `DATA`/`FIN` sequence number.
    next_seq: u64,
    /// Outbound datagrams retained until covered by a cumulative ack.
    unacked: VecDeque<Retained>,
    /// Highest cumulative ack received (all seqs below it confirmed).
    peer_acked: u64,
    /// Next inbound sequence number to deliver.
    recv_next: u64,
    /// Out-of-order inbound datagrams: seq → (is_fin, payload).
    reorder: BTreeMap<u64, (bool, Vec<u8>)>,
    /// In-order payloads ready for `read` (front chunk partially
    /// consumed up to `delivery_off`).
    delivery: VecDeque<Vec<u8>>,
    delivery_off: usize,
    /// The peer's `FIN` was delivered in order: reads return EOF once
    /// `delivery` drains.
    eof: bool,
    fin_sent: bool,
    /// Terminal failure (`TimedOut` for retransmit exhaustion,
    /// `ConnectionRefused`/`ConnectionReset` for ICMP errors).
    broken: Option<io::ErrorKind>,
    /// Inbound `DATA`/`FIN` arrived since the last ack we sent.
    ack_needed: bool,
    faults: Option<Faults>,
    /// Reorder-fault holdback slot: one datagram waiting to be released
    /// after the next send (or by the pacer when idle).
    holdback: Option<Vec<u8>>,
    /// Last time the cumulative ack advanced (or the retained queue was
    /// empty); staleness beyond [`UDP_DEAD_AFTER`] breaks the connection.
    last_progress: Instant,
}

/// The shared core of one UDP connection: the connected socket plus
/// reliability state. Handles (`UdpConnection`) and the pacer share it.
struct UdpIo {
    sock: UdpSocket,
    state: Mutex<UdpState>,
}

impl fmt::Debug for UdpIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpIo").field("sock", &self.sock).finish()
    }
}

fn send_raw(sock: &UdpSocket, bytes: &[u8]) {
    // Best-effort: a full socket buffer loses the datagram exactly like
    // the network would, and the retransmission timer recovers it.
    let _ = sock.send(bytes);
}

/// Sends one datagram through the connection's fault plan (drop,
/// duplicate, pairwise reorder via the holdback slot).
fn send_datagram(sock: &UdpSocket, st: &mut UdpState, bytes: &[u8]) {
    let Some(faults) = st.faults.as_mut() else {
        send_raw(sock, bytes);
        return;
    };
    if faults.roll(faults.plan.drop_pct) {
        return;
    }
    if faults.roll(faults.plan.reorder_pct) && st.holdback.is_none() {
        st.holdback = Some(bytes.to_vec());
        return;
    }
    let dup = faults.roll(faults.plan.dup_pct);
    send_raw(sock, bytes);
    if dup {
        send_raw(sock, bytes);
    }
    if let Some(held) = st.holdback.take() {
        send_raw(sock, &held);
    }
}

/// Retransmission timeout for the `tries`-th retry.
fn rto(tries: u32) -> Duration {
    UDP_RTO_MIN
        .saturating_mul(1u32 << tries.min(8))
        .min(UDP_RTO_MAX)
}

impl UdpIo {
    /// Applies one inbound datagram to the reliability state.
    fn process_datagram(&self, st: &mut UdpState, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        match bytes[0] {
            DG_DATA | DG_FIN if bytes.len() >= DG_HDR => {
                let seq = u64::from_le_bytes(bytes[1..DG_HDR].try_into().expect("header length"));
                let payload = &bytes[DG_HDR..];
                st.ack_needed = true;
                if payload.len() > MAX_DATAGRAM_BYTES {
                    return; // oversized: not ours, drop
                }
                if seq >= st.recv_next
                    && st.reorder.len() < UDP_REORDER_CAP
                    && !st.reorder.contains_key(&seq)
                {
                    st.reorder
                        .insert(seq, (bytes[0] == DG_FIN, payload.to_vec()));
                }
                // Deliver the newly contiguous prefix.
                while let Some((is_fin, payload)) = st.reorder.remove(&st.recv_next) {
                    st.recv_next += 1;
                    if is_fin {
                        st.eof = true;
                    } else if !payload.is_empty() {
                        st.delivery.push_back(payload);
                    }
                }
            }
            DG_ACK if bytes.len() >= DG_HDR => {
                let cum = u64::from_le_bytes(bytes[1..DG_HDR].try_into().expect("header length"));
                if cum > st.peer_acked {
                    st.peer_acked = cum;
                    st.last_progress = Instant::now();
                    while st.unacked.front().is_some_and(|r| r.seq < cum) {
                        st.unacked.pop_front();
                    }
                }
            }
            // Duplicate handshake datagrams straggling in: ignore.
            _ => {}
        }
    }

    /// Sends the cumulative ack if inbound traffic warranted one.
    fn flush_ack(&self, st: &mut UdpState) {
        if !st.ack_needed {
            return;
        }
        st.ack_needed = false;
        let mut ack = [0u8; DG_HDR];
        ack[0] = DG_ACK;
        ack[1..DG_HDR].copy_from_slice(&st.recv_next.to_le_bytes());
        send_datagram(&self.sock, st, &ack);
    }

    /// One pacer pass: release a stale holdback, retransmit overdue
    /// retained datagrams, detect a dead peer.
    fn pacer_tick(&self, now: Instant) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        if st.broken.is_some() {
            return;
        }
        self.pacer_tick_locked(&mut st, now);
    }

    /// Drains inbound datagrams the connection socket has pending while a
    /// dropped connection lingers, so the peer's `FIN` still gets acked.
    fn linger_tick(&self, now: Instant) -> bool {
        let Ok(mut st) = self.state.lock() else {
            return true;
        };
        if st.broken.is_some() {
            return true;
        }
        let mut buf = vec![0u8; MAX_DATAGRAM_BYTES + DG_HDR];
        while let Ok(n) = self.sock.recv(&mut buf) {
            let bytes = buf[..n].to_vec();
            self.process_datagram(&mut st, &bytes);
        }
        self.flush_ack(&mut st);
        self.pacer_tick_locked(&mut st, now);
        st.unacked.is_empty()
    }

    /// Like [`UdpIo::pacer_tick`] with the state already locked.
    fn pacer_tick_locked(&self, st: &mut UdpState, now: Instant) {
        if let Some(held) = st.holdback.take() {
            send_raw(&self.sock, &held);
        }
        if st.unacked.is_empty() {
            st.last_progress = now;
            return;
        }
        if now.duration_since(st.last_progress) > UDP_DEAD_AFTER {
            st.broken = Some(io::ErrorKind::TimedOut);
            return;
        }
        let mut resend = Vec::new();
        for (i, r) in st.unacked.iter_mut().enumerate() {
            if resend.len() >= UDP_RETX_BURST {
                break;
            }
            if now.duration_since(r.sent_at) >= rto(r.tries) {
                r.sent_at = now;
                r.tries += 1;
                resend.push(i);
            }
        }
        for i in resend {
            let bytes = st.unacked[i].bytes.clone();
            send_datagram(&self.sock, st, &bytes);
        }
    }

    /// Time until this connection's earliest retransmission deadline
    /// (zero when one is already overdue); `None` when nothing is
    /// retained, held back, or the connection is broken.
    fn next_due(&self, now: Instant) -> Option<Duration> {
        let st = self.state.lock().ok()?;
        if st.broken.is_some() {
            return None;
        }
        if st.holdback.is_some() {
            return Some(Duration::ZERO);
        }
        st.unacked
            .iter()
            .map(|r| (r.sent_at + rto(r.tries)).saturating_duration_since(now))
            .min()
    }
}

/// The process-wide retransmission pacer: one lazily spawned thread
/// ticking every live UDP connection. TCP-only deployments never spawn
/// it, keeping their exact thread census.
struct Pacer {
    conns: Mutex<Vec<Weak<UdpIo>>>,
    closing: Mutex<Vec<(Arc<UdpIo>, Instant)>>,
}

fn pacer() -> &'static Pacer {
    static PACER: OnceLock<&'static Pacer> = OnceLock::new();
    PACER.get_or_init(|| {
        let pacer: &'static Pacer = Box::leak(Box::new(Pacer {
            conns: Mutex::new(Vec::new()),
            closing: Mutex::new(Vec::new()),
        }));
        std::thread::Builder::new()
            .name("cckvs-udp-pacer".to_string())
            .spawn(move || {
                let mut sleep_for = UDP_PACER_TICK;
                loop {
                    std::thread::sleep(sleep_for);
                    let now = Instant::now();
                    let live: Vec<Arc<UdpIo>> = {
                        let mut conns = pacer.conns.lock().expect("pacer registry");
                        conns.retain(|w| w.strong_count() > 0);
                        conns.iter().filter_map(Weak::upgrade).collect()
                    };
                    for io in &live {
                        io.pacer_tick(now);
                    }
                    let lingering: Vec<(Arc<UdpIo>, Instant)> = {
                        let mut closing = pacer.closing.lock().expect("pacer closing");
                        std::mem::take(&mut *closing)
                    };
                    let mut keep = Vec::new();
                    for (io, deadline) in lingering {
                        if now < deadline && !io.linger_tick(now) {
                            keep.push((io, deadline));
                        }
                    }
                    pacer.closing.lock().expect("pacer closing").extend(keep);
                    // Deadline-driven cadence: wake at the nearest retained
                    // datagram's RTO instead of a fixed tick, floored at the
                    // reactor fine-timer resolution (sleeping shorter than
                    // the clock can honour just spins) and capped at the
                    // idle tick so new registrations are picked up promptly.
                    let now = Instant::now();
                    sleep_for = live
                        .iter()
                        .filter_map(|io| io.next_due(now))
                        .min()
                        .unwrap_or(UDP_PACER_TICK)
                        .clamp(reactor::FINE_RESOLUTION, UDP_PACER_TICK);
                }
            })
            .expect("spawn udp pacer");
        pacer
    })
}

/// One handle to a UDP connection. Cloned handles (reader/writer splits)
/// share the same [`UdpIo`]; the last handle to drop sends the `FIN` and
/// parks the core with the pacer until it is acknowledged.
pub struct UdpConnection {
    io: Arc<UdpIo>,
    /// Receive scratch, sized for the largest datagram we ever send.
    scratch: Vec<u8>,
}

impl fmt::Debug for UdpConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpConnection")
            .field("io", &self.io)
            .finish()
    }
}

impl UdpConnection {
    fn establish(sock: UdpSocket, faults: Option<Faults>) -> UdpConnection {
        let io = Arc::new(UdpIo {
            sock,
            state: Mutex::new(UdpState {
                next_seq: 0,
                unacked: VecDeque::new(),
                peer_acked: 0,
                recv_next: 0,
                reorder: BTreeMap::new(),
                delivery: VecDeque::new(),
                delivery_off: 0,
                eof: false,
                fin_sent: false,
                broken: None,
                ack_needed: false,
                faults,
                holdback: None,
                last_progress: Instant::now(),
            }),
        });
        pacer()
            .conns
            .lock()
            .expect("pacer registry")
            .push(Arc::downgrade(&io));
        UdpConnection {
            io,
            scratch: vec![0u8; MAX_DATAGRAM_BYTES + DG_HDR],
        }
    }

    /// Copies delivered in-order bytes into `buf`; `None` when starved.
    fn take_delivered(st: &mut UdpState, buf: &mut [u8]) -> Option<usize> {
        let mut copied = 0;
        while copied < buf.len() {
            let Some(front) = st.delivery.front() else {
                break;
            };
            let avail = &front[st.delivery_off..];
            let n = avail.len().min(buf.len() - copied);
            buf[copied..copied + n].copy_from_slice(&avail[..n]);
            copied += n;
            if n == avail.len() {
                st.delivery.pop_front();
                st.delivery_off = 0;
            } else {
                st.delivery_off += n;
            }
        }
        (copied > 0).then_some(copied)
    }
}

impl Read for UdpConnection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            {
                let mut st = self.io.state.lock().expect("udp state");
                if let Some(kind) = st.broken {
                    return Err(io::Error::new(kind, "udp connection broken"));
                }
                if let Some(n) = Self::take_delivered(&mut st, buf) {
                    self.io.flush_ack(&mut st);
                    return Ok(n);
                }
                if st.eof {
                    self.io.flush_ack(&mut st);
                    return Ok(0);
                }
            }
            // Not holding the state lock across the (possibly blocking)
            // recv: the pacer must stay free to retransmit meanwhile.
            match self.io.sock.recv(&mut self.scratch) {
                Ok(n) => {
                    let mut st = self.io.state.lock().expect("udp state");
                    // Borrow juggling: process_datagram needs &mut state
                    // while the bytes live in self.scratch.
                    let bytes = std::mem::take(&mut self.scratch);
                    self.io.process_datagram(&mut st, &bytes[..n]);
                    self.scratch = bytes;
                    // Ack opportunistically even when the datagram was
                    // out of order: the sender prunes and the e2e's
                    // duplicate storm stays bounded.
                    self.io.flush_ack(&mut st);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(e);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionRefused
                        || e.kind() == io::ErrorKind::ConnectionReset =>
                {
                    // ICMP unreachable: the peer process is gone. Mark
                    // broken so writes fail too, then surface it.
                    let mut st = self.io.state.lock().expect("udp state");
                    st.broken = Some(e.kind());
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Write for UdpConnection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.io.state.lock().expect("udp state");
        if let Some(kind) = st.broken {
            return Err(io::Error::new(kind, "udp connection broken"));
        }
        if st.fin_sent {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "udp connection closed",
            ));
        }
        // Unbounded send-side retention: the write always succeeds and the
        // datagrams stay retained until cumulatively acked. Backpressure is
        // the serving layer's job (credit windows, request/response
        // pacing); a datagram socket is "always writable", so refusing
        // bytes here would only buy an EPOLLOUT busy-spin.
        for chunk in buf.chunks(MAX_DATAGRAM_BYTES) {
            let seq = st.next_seq;
            st.next_seq += 1;
            let mut dgram = Vec::with_capacity(DG_HDR + chunk.len());
            dgram.push(DG_DATA);
            dgram.extend_from_slice(&seq.to_le_bytes());
            dgram.extend_from_slice(chunk);
            send_datagram(&self.io.sock, &mut st, &dgram);
            st.unacked.push_back(Retained {
                seq,
                bytes: dgram,
                sent_at: Instant::now(),
                tries: 0,
            });
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Connection for UdpConnection {
    fn raw_fd(&self) -> RawFd {
        self.io.sock.as_raw_fd()
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.io.sock.set_nonblocking(nonblocking)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.io.sock.set_read_timeout(timeout)
    }

    fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.io.sock.peer_addr()
    }

    fn try_clone(&self) -> io::Result<Box<dyn Connection>> {
        Ok(Box::new(UdpConnection {
            io: Arc::clone(&self.io),
            scratch: vec![0u8; MAX_DATAGRAM_BYTES + DG_HDR],
        }))
    }

    fn datagram_cap(&self) -> Option<usize> {
        Some(MAX_DATAGRAM_BYTES)
    }
}

impl Drop for UdpConnection {
    fn drop(&mut self) {
        // Only the last handle closes the connection (reader/writer
        // splits share the core; the pacer holds only weak refs).
        if Arc::strong_count(&self.io) != 1 {
            return;
        }
        let mut st = self.io.state.lock().expect("udp state");
        if st.broken.is_some() || st.fin_sent {
            return;
        }
        st.fin_sent = true;
        let seq = st.next_seq;
        st.next_seq += 1;
        let mut fin = [0u8; DG_HDR];
        fin[0] = DG_FIN;
        fin[1..DG_HDR].copy_from_slice(&seq.to_le_bytes());
        send_datagram(&self.io.sock, &mut st, &fin);
        st.unacked.push_back(Retained {
            seq,
            bytes: fin.to_vec(),
            sent_at: Instant::now(),
            tries: 0,
        });
        self.io.flush_ack(&mut st);
        drop(st);
        // Linger nonblocking so the pacer can retransmit the FIN and ack
        // the peer's without ever blocking its tick.
        let _ = self.io.sock.set_nonblocking(true);
        pacer()
            .closing
            .lock()
            .expect("pacer closing")
            .push((Arc::clone(&self.io), Instant::now() + UDP_LINGER));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(transport: &dyn Transport) -> (Box<dyn Connection>, Box<dyn Connection>) {
        let mut listener = transport
            .listen("127.0.0.1:0".parse().expect("static addr"))
            .expect("listen");
        let addr = listener.local_addr().expect("local addr");
        let dialer = std::thread::spawn({
            let transport: TransportConfig = match transport.kind() {
                TransportKind::Tcp => TransportConfig::tcp(),
                TransportKind::Udp => TransportConfig::udp(),
                TransportKind::Sim => unreachable!("sim transports are not under test here"),
            };
            move || transport.build().dial(addr, Duration::from_secs(5))
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            if let Some(conn) = listener.accept().expect("accept") {
                break conn;
            }
            assert!(Instant::now() < deadline, "accept timed out");
            std::thread::sleep(Duration::from_millis(1));
        };
        (dialer.join().expect("dial thread").expect("dial"), accepted)
    }

    #[test]
    fn transport_kind_parses_its_labels() {
        assert_eq!("tcp".parse(), Ok(TransportKind::Tcp));
        assert_eq!("udp".parse(), Ok(TransportKind::Udp));
        assert!(TransportKind::from_str("sctp").is_err());
        assert_eq!(TransportKind::Udp.label(), "udp");
    }

    #[test]
    fn tcp_roundtrip_through_the_trait() {
        let (mut client, mut server) = pair(&TcpTransport);
        server.set_nonblocking(false).expect("blocking");
        client.write_all(b"hello transport").expect("write");
        client.flush().expect("flush");
        let mut buf = [0u8; 15];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hello transport");
        assert!(client.datagram_cap().is_none());
    }

    #[test]
    fn udp_roundtrip_through_the_trait() {
        let (mut client, mut server) = pair(&UdpTransport::default());
        server.set_nonblocking(false).expect("blocking");
        server
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        client.write_all(b"hello datagrams").expect("write");
        let mut buf = [0u8; 15];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hello datagrams");
        // And the other direction.
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        server.write_all(b"pong").expect("write");
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"pong");
        assert_eq!(client.datagram_cap(), Some(MAX_DATAGRAM_BYTES));
    }

    #[test]
    fn udp_delivers_large_transfers_in_order_under_faults() {
        let transport = UdpTransport {
            faults: Some(FaultPlan::uniform(10, 42)),
        };
        let (mut client, mut server) = pair(&transport);
        server.set_nonblocking(false).expect("blocking");
        server
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        // Spans many datagrams; every byte position is distinguishable.
        let payload: Vec<u8> = (0..(3 * MAX_DATAGRAM_BYTES + 1234))
            .map(|i| (i % 251) as u8)
            .collect();
        let sent = payload.clone();
        let writer = std::thread::spawn(move || {
            client.write_all(&payload).expect("write");
            client // keep the handle alive until the reader is done
        });
        let mut got = vec![0u8; sent.len()];
        server.read_exact(&mut got).expect("read");
        assert_eq!(got, sent, "loss/reorder/dup must be invisible above");
        drop(writer.join().expect("writer"));
    }

    #[test]
    fn udp_fin_surfaces_as_eof() {
        let (client, mut server) = pair(&UdpTransport::default());
        server.set_nonblocking(false).expect("blocking");
        server
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        drop(client);
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).expect("read EOF");
        assert_eq!(n, 0, "peer close must read as EOF");
    }

    #[test]
    fn udp_nonblocking_read_starves_cleanly() {
        let (_client, mut server) = pair(&UdpTransport::default());
        // Accepted conns are nonblocking already; a read with nothing
        // pending must report WouldBlock, never spin or panic.
        let mut buf = [0u8; 8];
        let err = server.read(&mut buf).expect_err("starved");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn udp_dial_times_out_against_silence() {
        // A bound socket that never answers SYNs: dial must give up
        // within its budget instead of hanging.
        let sink = UdpSocket::bind("127.0.0.1:0").expect("bind sink");
        let addr = sink.local_addr().expect("local addr");
        let err = UdpTransport::default()
            .dial(addr, Duration::from_millis(300))
            .expect_err("no listener answers");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
