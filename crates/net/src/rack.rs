//! Rack launcher: boots an N-node networked ccKVS deployment.
//!
//! [`Rack::launch`] starts every node as a real TCP endpoint (one
//! [`crate::server::NodeServer`] each, threads within this process), wires
//! the full peer mesh, and installs the coordinator's hot set over the
//! wire — the same admin frames a multi-process deployment driven by the
//! `cckvs-node` binary uses. Per-process deployment is the recorded
//! follow-on; the wire protocol already carries everything those processes
//! need.

use crate::client::{flip_epoch_via, install_hot_set_via, EpochFlip};
use crate::server::{FlowConfig, NodeServer, NodeServerConfig, ReactorConfig};
use crate::transport::TransportConfig;
use cckvs::node::{NodeConfig, DEFAULT_KVS_THREADS};
use consistency::messages::ConsistencyModel;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;
use symcache::EpochConfig;

/// Node id of the rack's epoch coordinator when epochs are enabled (§4:
/// one node suffices because load balancing shows every node the same
/// access distribution).
pub const COORDINATOR_NODE: usize = 0;

/// Configuration of a rack deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackConfig {
    /// Consistency model for the symmetric caches.
    pub model: ConsistencyModel,
    /// Number of server nodes.
    pub nodes: usize,
    /// Symmetric-cache capacity (hot keys) per node.
    pub cache_capacity: usize,
    /// Back-end KVS capacity (objects) per node.
    pub kvs_capacity: usize,
    /// Maximum value size in bytes.
    pub value_capacity: usize,
    /// Whether each node exposes a metrics HTTP endpoint.
    pub metrics: bool,
    /// When set, node [`COORDINATOR_NODE`] tracks popularity over the
    /// requests it serves and churns the hot set of the whole rack at
    /// every epoch (live install/evict over the wire with dirty
    /// write-backs).
    pub epochs: Option<EpochConfig>,
    /// Peer-mesh batching and credit-based flow-control knobs, applied to
    /// every node.
    pub flow: FlowConfig,
    /// Reactor topology (shard event-loop threads), applied to every node.
    pub reactor: ReactorConfig,
    /// The fabric every node listens on and dials peers over (client
    /// sessions and admin traffic must use the same one).
    pub transport: TransportConfig,
}

impl RackConfig {
    /// A small loopback rack suitable for tests and examples.
    pub fn small(model: ConsistencyModel, nodes: usize) -> Self {
        Self {
            model,
            nodes,
            cache_capacity: 256,
            kvs_capacity: 4096,
            value_capacity: 64,
            metrics: true,
            epochs: None,
            flow: FlowConfig::default(),
            reactor: ReactorConfig::default(),
            transport: TransportConfig::tcp(),
        }
    }

    /// The same rack on a different fabric.
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// [`RackConfig::small`], with the fabric taken from the
    /// `CCKVS_TRANSPORT` environment variable when set (`tcp`/`udp`).
    /// This is how CI runs the same e2e matrix on both fabrics without
    /// duplicating every test; an unset or invalid value means TCP.
    pub fn small_from_env(model: ConsistencyModel, nodes: usize) -> Self {
        let mut cfg = Self::small(model, nodes);
        if let Ok(value) = std::env::var("CCKVS_TRANSPORT") {
            if let Ok(kind) = value.parse() {
                cfg.transport.kind = kind;
            }
        }
        cfg
    }
}

/// A running rack of networked ccKVS nodes.
pub struct Rack {
    servers: Vec<NodeServer>,
    transport: TransportConfig,
}

impl Rack {
    /// Boots the rack: binds every node, then wires the peer mesh.
    pub fn launch(cfg: RackConfig) -> io::Result<Rack> {
        assert!(cfg.nodes > 0, "rack needs at least one node");
        let mut servers = (0..cfg.nodes)
            .map(|n| {
                let node = NodeConfig {
                    model: cfg.model,
                    node: n,
                    nodes: cfg.nodes,
                    cache_capacity: cfg.cache_capacity,
                    kvs_capacity: cfg.kvs_capacity,
                    value_capacity: cfg.value_capacity,
                    kvs_threads: DEFAULT_KVS_THREADS,
                };
                let mut server_cfg = NodeServerConfig::loopback(node);
                server_cfg.flow = cfg.flow;
                server_cfg.reactor = cfg.reactor;
                server_cfg.transport = cfg.transport;
                if !cfg.metrics {
                    server_cfg.metrics_listen = None;
                }
                if n == COORDINATOR_NODE {
                    server_cfg.epochs = cfg.epochs;
                }
                NodeServer::start(server_cfg)
            })
            .collect::<io::Result<Vec<_>>>()?;
        let addrs: Vec<SocketAddr> = servers.iter().map(NodeServer::addr).collect();
        for server in &mut servers {
            server.connect_peers(&addrs, Duration::from_secs(5))?;
        }
        Ok(Rack {
            servers,
            transport: cfg.transport,
        })
    }

    /// The fabric this rack was launched on — client sessions must dial
    /// it with a matching [`TransportConfig`].
    pub fn transport(&self) -> TransportConfig {
        self.transport
    }

    /// A [`crate::client::ClientBuilder`] pre-targeted at this rack: the
    /// node addresses and the rack's transport are already set.
    pub fn client(&self) -> crate::client::ClientBuilder {
        crate::client::Client::builder(&self.client_addrs()).transport(self.transport)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.servers.len()
    }

    /// The client-facing address of every node, indexed by node id.
    pub fn client_addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(NodeServer::addr).collect()
    }

    /// The metrics endpoint of every node (when enabled).
    pub fn metrics_addrs(&self) -> Vec<Option<SocketAddr>> {
        self.servers.iter().map(NodeServer::metrics_addr).collect()
    }

    /// One node's server (diagnostics / metrics).
    pub fn server(&self, node: usize) -> &NodeServer {
        &self.servers[node]
    }

    /// Installs the coordinator's hot set into every node over the wire.
    pub fn install_hot_set(&self, entries: &[(u64, Vec<u8>)]) -> io::Result<()> {
        install_hot_set_via(&*self.transport.build(), &self.client_addrs(), entries)
    }

    /// Evicts keys from every node over the wire (dirty values are written
    /// back to their home shards before this returns).
    pub fn evict_hot_set(&self, keys: &[u64]) -> io::Result<()> {
        crate::client::evict_hot_set_via(&*self.transport.build(), &self.client_addrs(), keys)
    }

    /// Forces the epoch coordinator to close the current popularity epoch
    /// and reconfigure the rack's hot set now. Requires the rack to have
    /// been launched with [`RackConfig::epochs`] set.
    pub fn flip_epoch(&self) -> io::Result<EpochFlip> {
        flip_epoch_via(
            &*self.transport.build(),
            self.servers[COORDINATOR_NODE].addr(),
        )
    }

    /// Shuts every node down and joins their threads.
    pub fn shutdown(self) {
        for server in self.servers {
            server.shutdown();
        }
    }
}
