//! Lightweight metrics registry with a plain-text HTTP endpoint.
//!
//! Every [`crate::server::NodeServer`] (and optionally every
//! [`crate::client::Client`]) owns a [`Metrics`] registry: lock-free
//! counters for the serving breakdown (hits / misses / remote reads /
//! protocol traffic) plus an exact latency histogram reusing
//! [`simnet::stats::Histogram`]. The registry renders in the Prometheus
//! text exposition format and can be served over a minimal HTTP/1.0
//! endpoint ([`serve_http`]) so a rack can be scraped with `curl` while a
//! workload runs.

use parking_lot::Mutex;
use reactor::{Events, Interest, Poller, Token, Waker, WriteBuf};
use simnet::Histogram;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time copy of every counter plus latency percentiles (ns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Client GET requests served.
    pub gets: u64,
    /// Client PUT requests served.
    pub puts: u64,
    /// Operations served by the symmetric cache.
    pub cache_hits: u64,
    /// Operations that missed the cache.
    pub cache_misses: u64,
    /// Miss-path reads forwarded to a remote home shard.
    pub remote_reads: u64,
    /// Miss-path writes forwarded to a remote home shard.
    pub remote_writes: u64,
    /// Consistency-protocol messages received from peers.
    pub protocol_in: u64,
    /// Consistency-protocol messages sent to peers.
    pub protocol_out: u64,
    /// Highest hot-set epoch applied (coordinator node only).
    pub epoch: u64,
    /// Keys installed into the symmetric cache by hot-set reconfigurations.
    pub installs: u64,
    /// Keys evicted from the symmetric cache by hot-set reconfigurations.
    pub evictions: u64,
    /// Dirty evicted values written back to their home shards.
    pub writebacks: u64,
    /// Coalesced wire batches handled (client request batches served, or
    /// peer-mesh batches written, depending on which side records).
    pub batches: u64,
    /// Total operations carried inside those batches.
    pub batched_ops: u64,
    /// Median batch size in ops.
    pub batch_ops_p50: u64,
    /// 99th-percentile batch size in ops.
    pub batch_ops_p99: u64,
    /// Connections accepted over the node's lifetime (client, peer and
    /// rpc links alike).
    pub conns_accepted: u64,
    /// Connections currently registered with the reactor.
    pub conns_open: u64,
    /// Reactor shard threads serving this node.
    pub reactor_shards: u64,
    /// Worker threads executing blocking request handlers.
    pub reactor_workers: u64,
    /// Request jobs dispatched to the worker pool.
    pub worker_jobs: u64,
    /// Client GETs answered inline on a reactor shard (cache hit without a
    /// worker-pool hop).
    pub inline_gets: u64,
    /// Times a peer writer exhausted its credit window and had to wait for
    /// returns before sending.
    pub credit_stalls: u64,
    /// Total nanoseconds spent stalled on exhausted credit windows.
    pub credit_stall_ns: u64,
    /// 99th-percentile single credit stall in nanoseconds.
    pub credit_stall_p99_ns: u64,
    /// Successful peer-link reconnects (redial handshakes completed).
    pub peer_reconnects: u64,
    /// Retained protocol messages replayed to peers after reconnects.
    pub peer_replayed: u64,
    /// Invalidations reissued toward restarted peers for pending writes.
    pub reissued_invalidations: u64,
    /// Protocol messages currently parked behind down peer links (gauge).
    pub parked_messages: u64,
    /// Messages dropped because a dead peer's park overflowed.
    pub parked_dropped: u64,
    /// Number of recorded latency samples.
    pub latency_count: usize,
    /// Mean operation latency in nanoseconds.
    pub latency_mean_ns: f64,
    /// Median operation latency in nanoseconds.
    pub latency_p50_ns: u64,
    /// 99th-percentile operation latency in nanoseconds.
    pub latency_p99_ns: u64,
}

impl MetricsSnapshot {
    /// Fraction of operations served by the symmetric cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    gets: AtomicU64,
    puts: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    remote_reads: AtomicU64,
    remote_writes: AtomicU64,
    protocol_in: AtomicU64,
    protocol_out: AtomicU64,
    epoch: AtomicU64,
    installs: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    batches: AtomicU64,
    batched_ops: AtomicU64,
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    reactor_shards: AtomicU64,
    reactor_workers: AtomicU64,
    worker_jobs: AtomicU64,
    inline_gets: AtomicU64,
    credit_stalls: AtomicU64,
    credit_stall_ns: AtomicU64,
    peer_reconnects: AtomicU64,
    peer_replayed: AtomicU64,
    reissued_invalidations: AtomicU64,
    parked_messages: AtomicU64,
    parked_dropped: AtomicU64,
    batch_sizes: Mutex<Histogram>,
    credit_stall_hist: Mutex<Histogram>,
    latency: Mutex<Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client GET.
    pub fn record_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a client PUT.
    pub fn record_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records whether an operation hit the symmetric cache.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a miss-path read forwarded to a remote home shard.
    pub fn record_remote_read(&self) {
        self.remote_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss-path write forwarded to a remote home shard.
    pub fn record_remote_write(&self) {
        self.remote_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` protocol messages received from peers.
    pub fn record_protocol_in(&self, n: u64) {
        self.protocol_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` protocol messages sent to peers.
    pub fn record_protocol_out(&self, n: u64) {
        self.protocol_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Records that hot-set epoch `epoch` was applied (gauge; flips may be
    /// applied out of order when forced and automatic flips race, so the
    /// highest epoch wins).
    pub fn record_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Records `n` keys installed by a hot-set reconfiguration.
    pub fn record_installs(&self, n: u64) {
        self.installs.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` keys evicted by a hot-set reconfiguration.
    pub fn record_evictions(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a dirty evicted value written back to its home shard.
    pub fn record_writeback(&self) {
        self.writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced wire batch carrying `ops` operations.
    pub fn record_batch(&self, ops: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_ops.fetch_add(ops, Ordering::Relaxed);
        self.batch_sizes.lock().record(ops);
    }

    /// Records one accepted connection now registered with the reactor.
    pub fn record_conn_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection leaving the reactor.
    pub fn record_conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the reactor topology gauges (shard and worker thread counts).
    pub fn set_reactor_threads(&self, shards: u64, workers: u64) {
        self.reactor_shards.store(shards, Ordering::Relaxed);
        self.reactor_workers.store(workers, Ordering::Relaxed);
    }

    /// Records one request job handed to the worker pool.
    pub fn record_worker_job(&self) {
        self.worker_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one client GET answered inline on a reactor shard.
    pub fn record_inline_get(&self) {
        self.inline_gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one credit-window stall of `nanos` nanoseconds on a peer
    /// writer (the writer had traffic to send but no credits left).
    pub fn record_credit_stall_ns(&self, nanos: u64) {
        self.credit_stalls.fetch_add(1, Ordering::Relaxed);
        self.credit_stall_ns.fetch_add(nanos, Ordering::Relaxed);
        self.credit_stall_hist.lock().record(nanos);
    }

    /// Records one successful peer-link reconnect (redial handshake
    /// completed after the previous connection died).
    pub fn record_peer_reconnect(&self) {
        self.peer_reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` retained protocol messages replayed to a peer after a
    /// reconnect (the peer had not confirmed processing them).
    pub fn record_peer_replayed(&self, n: u64) {
        self.peer_replayed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` invalidations reissued toward a restarted peer on
    /// behalf of pending Lin writes it never acknowledged.
    pub fn record_reissued(&self, n: u64) {
        self.reissued_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the parked-messages gauge: protocol traffic queued behind
    /// down peer links, waiting for a redial.
    pub fn set_parked(&self, n: u64) {
        self.parked_messages.store(n, Ordering::Relaxed);
    }

    /// Records one message dropped because a dead peer's park overflowed.
    pub fn record_parked_drop(&self) {
        self.parked_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one end-to-end operation latency in nanoseconds.
    pub fn record_latency_ns(&self, nanos: u64) {
        self.latency.lock().record(nanos);
    }

    /// Takes a consistent snapshot (percentiles computed here).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latency = self.latency.lock();
        let latency_count = latency.count();
        let (p50, p99, mean) = if latency_count == 0 {
            (0, 0, 0.0)
        } else {
            (
                latency.percentile(50.0),
                latency.percentile(99.0),
                latency.mean(),
            )
        };
        let (batch_ops_p50, batch_ops_p99) = {
            let mut sizes = self.batch_sizes.lock();
            if sizes.count() == 0 {
                (0, 0)
            } else {
                (sizes.percentile(50.0), sizes.percentile(99.0))
            }
        };
        let credit_stall_p99_ns = {
            let mut stalls = self.credit_stall_hist.lock();
            if stalls.count() == 0 {
                0
            } else {
                stalls.percentile(99.0)
            }
        };
        MetricsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            remote_reads: self.remote_reads.load(Ordering::Relaxed),
            remote_writes: self.remote_writes.load(Ordering::Relaxed),
            protocol_in: self.protocol_in.load(Ordering::Relaxed),
            protocol_out: self.protocol_out.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            reactor_shards: self.reactor_shards.load(Ordering::Relaxed),
            reactor_workers: self.reactor_workers.load(Ordering::Relaxed),
            worker_jobs: self.worker_jobs.load(Ordering::Relaxed),
            inline_gets: self.inline_gets.load(Ordering::Relaxed),
            batch_ops_p50,
            batch_ops_p99,
            credit_stalls: self.credit_stalls.load(Ordering::Relaxed),
            credit_stall_ns: self.credit_stall_ns.load(Ordering::Relaxed),
            credit_stall_p99_ns,
            peer_reconnects: self.peer_reconnects.load(Ordering::Relaxed),
            peer_replayed: self.peer_replayed.load(Ordering::Relaxed),
            reissued_invalidations: self.reissued_invalidations.load(Ordering::Relaxed),
            parked_messages: self.parked_messages.load(Ordering::Relaxed),
            parked_dropped: self.parked_dropped.load(Ordering::Relaxed),
            latency_count,
            latency_mean_ns: mean,
            latency_p50_ns: p50,
            latency_p99_ns: p99,
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self, node_label: &str) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP cckvs_{name} {help}\n# TYPE cckvs_{name} counter\ncckvs_{name}{{node=\"{node_label}\"}} {value}\n"
            ));
        };
        counter("gets_total", "Client GET requests served.", snap.gets);
        counter("puts_total", "Client PUT requests served.", snap.puts);
        counter(
            "cache_hits_total",
            "Operations served by the symmetric cache.",
            snap.cache_hits,
        );
        counter(
            "cache_misses_total",
            "Operations that missed the symmetric cache.",
            snap.cache_misses,
        );
        counter(
            "remote_reads_total",
            "Miss-path reads forwarded to a remote home shard.",
            snap.remote_reads,
        );
        counter(
            "remote_writes_total",
            "Miss-path writes forwarded to a remote home shard.",
            snap.remote_writes,
        );
        counter(
            "protocol_in_total",
            "Consistency-protocol messages received.",
            snap.protocol_in,
        );
        counter(
            "protocol_out_total",
            "Consistency-protocol messages sent.",
            snap.protocol_out,
        );
        counter(
            "installs_total",
            "Keys installed into the symmetric cache by hot-set churn.",
            snap.installs,
        );
        counter(
            "evictions_total",
            "Keys evicted from the symmetric cache by hot-set churn.",
            snap.evictions,
        );
        counter(
            "writebacks_total",
            "Dirty evicted values written back to their home shards.",
            snap.writebacks,
        );
        counter(
            "batches_total",
            "Coalesced wire batches handled.",
            snap.batches,
        );
        counter(
            "batched_ops_total",
            "Operations carried inside coalesced wire batches.",
            snap.batched_ops,
        );
        counter(
            "conns_accepted_total",
            "Connections accepted over the node's lifetime.",
            snap.conns_accepted,
        );
        counter(
            "worker_jobs_total",
            "Request jobs dispatched to the worker pool.",
            snap.worker_jobs,
        );
        counter(
            "inline_gets_total",
            "Client GETs answered inline on a reactor shard.",
            snap.inline_gets,
        );
        counter(
            "credit_stalls_total",
            "Peer-writer stalls on an exhausted credit window.",
            snap.credit_stalls,
        );
        counter(
            "credit_stall_ns_total",
            "Nanoseconds spent stalled on exhausted credit windows.",
            snap.credit_stall_ns,
        );
        counter(
            "peer_reconnects_total",
            "Peer-link redial handshakes completed after a connection died.",
            snap.peer_reconnects,
        );
        counter(
            "peer_replayed_total",
            "Retained protocol messages replayed to peers after reconnects.",
            snap.peer_replayed,
        );
        counter(
            "reissued_invalidations_total",
            "Invalidations reissued toward restarted peers for pending writes.",
            snap.reissued_invalidations,
        );
        counter(
            "parked_dropped_total",
            "Messages dropped because a dead peer's park overflowed.",
            snap.parked_dropped,
        );
        for (suffix, value) in [
            ("batch_ops_p50", snap.batch_ops_p50),
            ("batch_ops_p99", snap.batch_ops_p99),
            ("credit_stall_p99_ns", snap.credit_stall_p99_ns),
            ("conns_open", snap.conns_open),
            ("reactor_shards", snap.reactor_shards),
            ("reactor_workers", snap.reactor_workers),
            ("parked_messages", snap.parked_messages),
        ] {
            out.push_str(&format!(
                "# TYPE cckvs_{suffix} gauge\ncckvs_{suffix}{{node=\"{node_label}\"}} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# HELP cckvs_epoch Highest hot-set epoch applied on this node.\n\
             # TYPE cckvs_epoch gauge\ncckvs_epoch{{node=\"{node_label}\"}} {}\n",
            snap.epoch
        ));
        out.push_str(&format!(
            "# HELP cckvs_hit_rate Fraction of operations served by the symmetric cache.\n\
             # TYPE cckvs_hit_rate gauge\ncckvs_hit_rate{{node=\"{node_label}\"}} {:.6}\n",
            snap.hit_rate()
        ));
        for (suffix, value) in [
            ("count", snap.latency_count as u64),
            ("p50_ns", snap.latency_p50_ns),
            ("p99_ns", snap.latency_p99_ns),
        ] {
            out.push_str(&format!(
                "# TYPE cckvs_latency_{suffix} gauge\ncckvs_latency_{suffix}{{node=\"{node_label}\"}} {value}\n"
            ));
        }
        out
    }
}

/// Handle to a running metrics HTTP endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    waker: Arc<Waker>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The address the endpoint listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

/// Most concurrent scrape connections the endpoint holds; beyond this the
/// accept loop stops taking new sockets until one finishes. A scrape storm
/// therefore costs bounded memory and zero threads — the old
/// thread-per-scrape endpoint could be driven to thread exhaustion by
/// aggressive (or stuck) scrapers.
const MAX_SCRAPE_CONNS: usize = 128;

/// Request-head bytes read before answering regardless (a scrape target,
/// not a router — the path is irrelevant and giant heads are hostile).
const MAX_REQUEST_HEAD: usize = 8 * 1024;

const SCRAPE_TOKEN_WAKER: u64 = 0;
const SCRAPE_TOKEN_LISTENER: u64 = 1;

struct ScrapeConn {
    stream: TcpStream,
    head: Vec<u8>,
    response: WriteBuf,
    responding: bool,
}

/// Serves `metrics.render()` over HTTP/1.0 on `addr` (`0` port allowed),
/// from a single-thread reactor loop with a bounded connection set.
///
/// The endpoint answers every request path with the full registry — it is a
/// scrape target, not a router.
pub fn serve_http(
    addr: SocketAddr,
    node_label: String,
    metrics: Arc<Metrics>,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let poller = Poller::new()?;
    poller.register(
        listener.as_raw_fd(),
        Token(SCRAPE_TOKEN_LISTENER),
        Interest::READ,
    )?;
    let waker = Arc::new(Waker::new(&poller, Token(SCRAPE_TOKEN_WAKER))?);
    let running = Arc::new(AtomicBool::new(true));
    let thread_running = Arc::clone(&running);
    let thread_waker = Arc::clone(&waker);
    let handle = std::thread::Builder::new()
        .name(format!("cckvs-metrics-{node_label}"))
        .spawn(move || {
            scrape_loop(
                listener,
                poller,
                thread_waker,
                thread_running,
                node_label,
                metrics,
            )
        })?;
    Ok(MetricsServer {
        addr: local,
        running,
        waker,
        handle: Some(handle),
    })
}

fn scrape_loop(
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    running: Arc<AtomicBool>,
    node_label: String,
    metrics: Arc<Metrics>,
) {
    let mut events = Events::with_capacity(64);
    let mut conns: HashMap<u64, ScrapeConn> = HashMap::new();
    let mut next_token = 16u64;
    let mut listener_paused = false;
    while running.load(Ordering::SeqCst) {
        if poller.wait(&mut events, None).is_err() {
            continue;
        }
        waker.drain();
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let mut touched: Vec<u64> = Vec::new();
        let mut accept = false;
        for event in events.iter() {
            match event.token.0 {
                SCRAPE_TOKEN_WAKER => {}
                SCRAPE_TOKEN_LISTENER => accept = true,
                token => touched.push(token),
            }
        }
        if accept {
            while conns.len() < MAX_SCRAPE_CONNS {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let token = next_token;
                        next_token += 1;
                        if poller
                            .register(stream.as_raw_fd(), Token(token), Interest::READ)
                            .is_ok()
                        {
                            conns.insert(
                                token,
                                ScrapeConn {
                                    stream,
                                    head: Vec::new(),
                                    response: WriteBuf::new(),
                                    responding: false,
                                },
                            );
                            touched.push(token);
                        }
                    }
                    // WouldBlock and transient errors alike: retry on the
                    // next readiness event instead of dying.
                    Err(_) => break,
                }
            }
        }
        for token in touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let mut done = false;
            if !conn.responding {
                // Accumulate the request head until a blank line (or the
                // cap, or EOF — tolerate clients that close early).
                let mut buf = [0u8; 1024];
                let complete = loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => break true,
                        Ok(n) => {
                            conn.head.extend_from_slice(&buf[..n]);
                            if conn.head.len() >= MAX_REQUEST_HEAD
                                || conn.head.windows(4).any(|w| w == b"\r\n\r\n")
                            {
                                break true;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            done = true;
                            break false;
                        }
                    }
                };
                if complete && !done {
                    let body = metrics.render(&node_label);
                    conn.response.push(
                        format!(
                            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                            body.len(),
                            body
                        )
                        .as_bytes(),
                    );
                    conn.responding = true;
                    let _ = poller.modify(conn.stream.as_raw_fd(), Token(token), Interest::WRITE);
                }
            }
            if conn.responding && !done {
                match conn.response.flush_to(&mut conn.stream) {
                    Ok(true) => done = true,
                    Ok(false) => {}
                    Err(_) => done = true,
                }
            }
            if done {
                let conn = conns.remove(&token).expect("present above");
                poller.deregister(conn.stream.as_raw_fd());
            }
        }
        // The bounded set acts as accept backpressure: pause the listener
        // registration while full so epoll does not spin on pending
        // connections, resume once a slot frees up.
        if !listener_paused && conns.len() >= MAX_SCRAPE_CONNS {
            poller.deregister(listener.as_raw_fd());
            listener_paused = true;
        } else if listener_paused
            && conns.len() < MAX_SCRAPE_CONNS
            && poller
                .register(
                    listener.as_raw_fd(),
                    Token(SCRAPE_TOKEN_LISTENER),
                    Interest::READ,
                )
                .is_ok()
        {
            listener_paused = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn counters_and_hit_rate() {
        let m = Metrics::new();
        for _ in 0..3 {
            m.record_get();
            m.record_cache(true);
        }
        m.record_put();
        m.record_cache(false);
        m.record_remote_read();
        m.record_protocol_out(2);
        let snap = m.snapshot();
        assert_eq!(snap.gets, 3);
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.remote_reads, 1);
        assert_eq!(snap.protocol_out, 2);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn latency_percentiles() {
        let m = Metrics::new();
        for ns in 1..=100u64 {
            m.record_latency_ns(ns * 1000);
        }
        let snap = m.snapshot();
        assert_eq!(snap.latency_count, 100);
        assert_eq!(snap.latency_p50_ns, 50_000);
        assert_eq!(snap.latency_p99_ns, 99_000);
        assert!(snap.latency_mean_ns > 0.0);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let m = Metrics::new();
        m.record_get();
        m.record_cache(true);
        let text = m.render("n0");
        assert!(text.contains("cckvs_gets_total{node=\"n0\"} 1"));
        assert!(text.contains("# TYPE cckvs_hit_rate gauge"));
        assert!(text.contains("cckvs_hit_rate{node=\"n0\"} 1.000000"));
    }

    #[test]
    fn churn_counters_surface_in_snapshot_and_render() {
        let m = Metrics::new();
        m.record_epoch(3);
        m.record_epoch(2); // out-of-order apply: the gauge keeps the max
        m.record_installs(5);
        m.record_evictions(4);
        m.record_writeback();
        m.record_writeback();
        let snap = m.snapshot();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.installs, 5);
        assert_eq!(snap.evictions, 4);
        assert_eq!(snap.writebacks, 2);
        let text = m.render("n1");
        assert!(text.contains("cckvs_epoch{node=\"n1\"} 3"));
        assert!(text.contains("cckvs_installs_total{node=\"n1\"} 5"));
        assert!(text.contains("cckvs_evictions_total{node=\"n1\"} 4"));
        assert!(text.contains("cckvs_writebacks_total{node=\"n1\"} 2"));
    }

    #[test]
    fn batch_and_credit_metrics_surface_in_snapshot_and_render() {
        let m = Metrics::new();
        for ops in [1u64, 8, 8, 16] {
            m.record_batch(ops);
        }
        m.record_credit_stall_ns(5_000);
        m.record_credit_stall_ns(15_000);
        let snap = m.snapshot();
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.batched_ops, 33);
        assert_eq!(snap.batch_ops_p50, 8);
        assert_eq!(snap.batch_ops_p99, 16);
        assert_eq!(snap.credit_stalls, 2);
        assert_eq!(snap.credit_stall_ns, 20_000);
        assert_eq!(snap.credit_stall_p99_ns, 15_000);
        let text = m.render("n2");
        assert!(text.contains("cckvs_batches_total{node=\"n2\"} 4"));
        assert!(text.contains("cckvs_batched_ops_total{node=\"n2\"} 33"));
        assert!(text.contains("cckvs_credit_stalls_total{node=\"n2\"} 2"));
        assert!(text.contains("cckvs_batch_ops_p99{node=\"n2\"} 16"));
    }

    #[test]
    fn scrape_storm_is_served_without_extra_threads() {
        let metrics = Arc::new(Metrics::new());
        metrics.record_get();
        let server = serve_http(
            "127.0.0.1:0".parse().unwrap(),
            "storm".to_string(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let addr = server.addr();
        // Concurrent scrapers hammering the endpoint: every request gets a
        // complete, valid response, from the single reactor thread.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..40 {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
                        let mut response = String::new();
                        stream.read_to_string(&mut response).unwrap();
                        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
                        assert!(response.contains("cckvs_gets_total"));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn http_endpoint_serves_metrics() {
        let metrics = Arc::new(Metrics::new());
        metrics.record_get();
        metrics.record_cache(true);
        let server = serve_http(
            "127.0.0.1:0".parse().unwrap(),
            "n9".to_string(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        assert!(response.contains("cckvs_gets_total{node=\"n9\"} 1"));
        server.shutdown();
    }
}
