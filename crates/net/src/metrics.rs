//! Lightweight metrics registry with a plain-text HTTP endpoint.
//!
//! Every [`crate::server::NodeServer`] (and optionally every
//! [`crate::client::Client`]) owns a [`Metrics`] registry: lock-free
//! counters for the serving breakdown (hits / misses / remote reads /
//! protocol traffic) plus bounded, lock-free latency histograms — an
//! end-to-end one and per-phase ones (Lin ack wait, continuation fire,
//! invalidation fan-out) that attribute where a slow write spends its
//! time. The registry renders in the Prometheus text exposition format
//! and can be served over a minimal HTTP/1.0 endpoint ([`serve_http`])
//! so a rack can be scraped with `curl` while a workload runs.
//!
//! Histograms are fixed-bucket log-linear ([`AtomicHistogram`]): 16
//! sub-buckets per power of two, so storage is a constant ~8 KB per
//! histogram no matter how many samples land (a raw-sample `Vec` grew 8 B
//! per op — 80 MB per 10M-op run) and quantile estimates stay within
//! 1/16 ≈ 6% of exact. Recording is one atomic add on a bucket counter;
//! the hottest histograms are additionally striped across lanes
//! ([`ShardedHistogram`]) keyed by recording thread, so reactor shards
//! never contend on a cache line — the previous
//! mutex-guarded histogram serialized every operation on one lock.

use reactor::{Events, Interest, Poller, Token, Waker, WriteBuf};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Exact single-value buckets at the head of the layout (values `0..16`).
const LINEAR_BUCKETS: usize = 16;

/// Sub-buckets per power of two above the linear range.
const SUB_BUCKETS: usize = 16;

/// Total buckets: the linear head plus 16 sub-buckets for each power of
/// two from 2^4 through 2^63.
const BUCKETS: usize = LINEAR_BUCKETS + 60 * SUB_BUCKETS;

/// Lanes used by the hot-path [`ShardedHistogram`]s.
const HISTOGRAM_LANES: usize = 8;

fn bucket_index(value: u64) -> usize {
    if value < LINEAR_BUCKETS as u64 {
        value as usize
    } else {
        // value in [2^k, 2^(k+1)) with k >= 4; the top four bits below
        // the leading one select the sub-bucket.
        let k = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (k - 4)) & (SUB_BUCKETS as u64 - 1)) as usize;
        LINEAR_BUCKETS + (k - 4) * SUB_BUCKETS + sub
    }
}

/// Largest value mapping to bucket `idx` (inclusive).
fn bucket_upper_edge(idx: usize) -> u64 {
    if idx < LINEAR_BUCKETS {
        idx as u64
    } else {
        let k = (idx - LINEAR_BUCKETS) / SUB_BUCKETS + 4;
        let m = ((idx - LINEAR_BUCKETS) % SUB_BUCKETS) as u64;
        // The final bucket's edge (2^64 - 1) wraps through zero.
        ((16 + m + 1) << (k - 4)).wrapping_sub(1)
    }
}

/// A bounded lock-free histogram: log-linear fixed buckets, one relaxed
/// atomic add per sample, constant memory forever.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram (allocates its full fixed bucket array).
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Heap bytes held — constant for the histogram's lifetime.
    pub fn heap_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<AtomicU64>()
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Per-thread lane picker for [`ShardedHistogram`]: each recording
/// thread is pinned to one lane for its lifetime, so concurrent
/// recorders touch distinct cache lines.
fn histogram_lane(lanes: usize) -> usize {
    use std::cell::Cell;
    static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static LANE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    LANE.with(|lane| {
        let mut id = lane.get();
        if id == usize::MAX {
            id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            lane.set(id);
        }
        id % lanes
    })
}

/// A lane-striped [`AtomicHistogram`] for the hottest recording sites:
/// every thread records into its own lane, lanes merge at snapshot time.
#[derive(Debug)]
pub struct ShardedHistogram {
    lanes: Vec<AtomicHistogram>,
}

impl Default for ShardedHistogram {
    fn default() -> Self {
        Self::new(HISTOGRAM_LANES)
    }
}

impl ShardedHistogram {
    /// A histogram striped over `lanes` lanes (minimum 1).
    pub fn new(lanes: usize) -> Self {
        ShardedHistogram {
            lanes: (0..lanes.max(1)).map(|_| AtomicHistogram::new()).collect(),
        }
    }

    /// Records one sample into the calling thread's lane.
    pub fn record(&self, value: u64) {
        self.lanes[histogram_lane(self.lanes.len())].record(value);
    }

    /// Samples recorded across all lanes.
    pub fn count(&self) -> u64 {
        self.lanes.iter().map(AtomicHistogram::count).sum()
    }

    /// Heap bytes held — constant for the histogram's lifetime.
    pub fn heap_bytes(&self) -> usize {
        self.lanes.iter().map(AtomicHistogram::heap_bytes).sum()
    }

    /// A merged point-in-time copy of every lane.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = self.lanes[0].snapshot();
        for lane in &self.lanes[1..] {
            merged.merge(&lane.snapshot());
        }
        merged
    }
}

/// A point-in-time copy of an [`AtomicHistogram`]'s buckets, with
/// quantile and export helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Adds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; other.buckets.len()];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `p`-th percentile (0 < p ≤ 100) as the upper edge of the
    /// bucket holding that rank — within 1/16 above the exact sample.
    /// Returns 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0);
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_edge(idx);
            }
        }
        bucket_upper_edge(self.buckets.len() - 1)
    }

    /// The occupied buckets as `(inclusive upper edge, count)` pairs, in
    /// ascending edge order — the full distribution, exportable.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_upper_edge(idx), n))
            .collect()
    }
}

/// A point-in-time copy of every counter plus latency percentiles (ns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Client GET requests served.
    pub gets: u64,
    /// Client PUT requests served.
    pub puts: u64,
    /// Operations served by the symmetric cache.
    pub cache_hits: u64,
    /// Operations that missed the cache.
    pub cache_misses: u64,
    /// Miss-path reads forwarded to a remote home shard.
    pub remote_reads: u64,
    /// Miss-path writes forwarded to a remote home shard.
    pub remote_writes: u64,
    /// Consistency-protocol messages received from peers.
    pub protocol_in: u64,
    /// Consistency-protocol messages sent to peers.
    pub protocol_out: u64,
    /// Highest hot-set epoch applied (coordinator node only).
    pub epoch: u64,
    /// Keys installed into the symmetric cache by hot-set reconfigurations.
    pub installs: u64,
    /// Keys evicted from the symmetric cache by hot-set reconfigurations.
    pub evictions: u64,
    /// Dirty evicted values written back to their home shards.
    pub writebacks: u64,
    /// Coalesced wire batches handled (client request batches served, or
    /// peer-mesh batches written, depending on which side records).
    pub batches: u64,
    /// Total operations carried inside those batches.
    pub batched_ops: u64,
    /// Median batch size in ops.
    pub batch_ops_p50: u64,
    /// 99th-percentile batch size in ops.
    pub batch_ops_p99: u64,
    /// Connections accepted over the node's lifetime (client, peer and
    /// rpc links alike).
    pub conns_accepted: u64,
    /// Connections currently registered with the reactor.
    pub conns_open: u64,
    /// Reactor shard threads serving this node.
    pub reactor_shards: u64,
    /// Worker threads executing blocking request handlers. Always zero
    /// since the continuation refactor removed the worker pool — kept on
    /// the scrape surface so deployments (and CI) can assert the
    /// zero-worker steady state.
    pub reactor_workers: u64,
    /// Client GETs answered inline on a reactor shard (cache hit without a
    /// worker-pool hop).
    pub inline_gets: u64,
    /// Times a peer writer exhausted its credit window and had to wait for
    /// returns before sending.
    pub credit_stalls: u64,
    /// Total nanoseconds spent stalled on exhausted credit windows.
    pub credit_stall_ns: u64,
    /// 99th-percentile single credit stall in nanoseconds.
    pub credit_stall_p99_ns: u64,
    /// Latency-class frames (invalidations, Lin acks, RPC traffic) sent
    /// through the peer mesh's priority lane.
    pub priority_lane_frames: u64,
    /// Bulk corks flushed because the adaptive target size (or byte
    /// budget) was reached.
    pub cork_flush_full: u64,
    /// Bulk corks flushed because the oldest message waited out the
    /// `max_delay` deadline.
    pub cork_flush_deadline: u64,
    /// Bulk messages flushed immediately because the link was idle (the
    /// adaptive target had decayed to 1).
    pub cork_flush_idle: u64,
    /// Median flushed bulk-batch size chosen by the adaptive controller.
    pub adaptive_batch_p50: u64,
    /// 99th-percentile flushed bulk-batch size.
    pub adaptive_batch_p99: u64,
    /// Bulk flushes that served a nonzero cork wait.
    pub cork_wait_count: u64,
    /// Median time a corked bulk batch waited before flushing (ns).
    pub cork_wait_p50_ns: u64,
    /// 99th-percentile cork wait (ns).
    pub cork_wait_p99_ns: u64,
    /// Successful peer-link reconnects (redial handshakes completed).
    pub peer_reconnects: u64,
    /// Retained protocol messages replayed to peers after reconnects.
    pub peer_replayed: u64,
    /// Invalidations reissued toward restarted peers for pending writes.
    pub reissued_invalidations: u64,
    /// Protocol messages currently parked behind down peer links (gauge).
    pub parked_messages: u64,
    /// Messages dropped because a dead peer's park overflowed.
    pub parked_dropped: u64,
    /// Number of recorded latency samples.
    pub latency_count: usize,
    /// Mean operation latency in nanoseconds.
    pub latency_mean_ns: f64,
    /// Median operation latency in nanoseconds.
    pub latency_p50_ns: u64,
    /// 99th-percentile operation latency in nanoseconds.
    pub latency_p99_ns: u64,
    /// The full end-to-end latency distribution as
    /// `(inclusive upper edge ns, count)` bucket pairs.
    pub latency_buckets: Vec<(u64, u64)>,
    /// Lin writes that waited for invalidation acks.
    pub lin_ack_wait_count: u64,
    /// Median time a Lin write spent waiting for its ack round (ns).
    pub lin_ack_wait_p50_ns: u64,
    /// 99th-percentile Lin ack wait (ns).
    pub lin_ack_wait_p99_ns: u64,
    /// Suspended ops whose continuation resume was timed (replaces the
    /// retired worker-handoff phase: the continuation fire is the only
    /// hop left between an op's wake-up event and its response).
    pub continuation_fire_count: u64,
    /// Median time from a suspended op's wake-up event (final ack, RPC
    /// response, admin completion) to its continuation running on the
    /// owning shard (ns).
    pub continuation_fire_p50_ns: u64,
    /// 99th-percentile continuation fire (ns).
    pub continuation_fire_p99_ns: u64,
    /// Correlated RPCs awaiting a response right now (gauge). Leaked
    /// entries here mean a suspended op will hang until its deadline.
    pub pending_rpcs: u64,
    /// Writes whose coherence fan-out (enqueue toward every peer) was
    /// timed.
    pub fanout_count: u64,
    /// Median fan-out time (ns).
    pub fanout_p50_ns: u64,
    /// 99th-percentile fan-out time (ns).
    pub fanout_p99_ns: u64,
    /// Median reactor shard loop lap (one poll + dispatch round, ns).
    pub loop_lap_p50_ns: u64,
    /// 99th-percentile reactor shard loop lap (ns).
    pub loop_lap_p99_ns: u64,
    /// Trace events recorded into this node's sink.
    pub trace_events: u64,
    /// Trace events dropped because a sink ring lane was full.
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Fraction of operations served by the symmetric cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    gets: AtomicU64,
    puts: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    remote_reads: AtomicU64,
    remote_writes: AtomicU64,
    protocol_in: AtomicU64,
    protocol_out: AtomicU64,
    epoch: AtomicU64,
    installs: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    batches: AtomicU64,
    batched_ops: AtomicU64,
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    reactor_shards: AtomicU64,
    reactor_workers: AtomicU64,
    inline_gets: AtomicU64,
    credit_stalls: AtomicU64,
    credit_stall_ns: AtomicU64,
    peer_reconnects: AtomicU64,
    peer_replayed: AtomicU64,
    reissued_invalidations: AtomicU64,
    parked_messages: AtomicU64,
    parked_dropped: AtomicU64,
    pending_rpcs: AtomicU64,
    trace_events: AtomicU64,
    trace_dropped: AtomicU64,
    priority_lane_frames: AtomicU64,
    cork_flush_full: AtomicU64,
    cork_flush_deadline: AtomicU64,
    cork_flush_idle: AtomicU64,
    batch_sizes: AtomicHistogram,
    adaptive_batch: AtomicHistogram,
    credit_stall_hist: AtomicHistogram,
    cork_wait: AtomicHistogram,
    latency: ShardedHistogram,
    lin_ack_wait: ShardedHistogram,
    continuation_fire: ShardedHistogram,
    fanout: ShardedHistogram,
    loop_lap: ShardedHistogram,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client GET.
    pub fn record_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a client PUT.
    pub fn record_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records whether an operation hit the symmetric cache.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a miss-path read forwarded to a remote home shard.
    pub fn record_remote_read(&self) {
        self.remote_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss-path write forwarded to a remote home shard.
    pub fn record_remote_write(&self) {
        self.remote_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` protocol messages received from peers.
    pub fn record_protocol_in(&self, n: u64) {
        self.protocol_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` protocol messages sent to peers.
    pub fn record_protocol_out(&self, n: u64) {
        self.protocol_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Records that hot-set epoch `epoch` was applied (gauge; flips may be
    /// applied out of order when forced and automatic flips race, so the
    /// highest epoch wins).
    pub fn record_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Records `n` keys installed by a hot-set reconfiguration.
    pub fn record_installs(&self, n: u64) {
        self.installs.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` keys evicted by a hot-set reconfiguration.
    pub fn record_evictions(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a dirty evicted value written back to its home shard.
    pub fn record_writeback(&self) {
        self.writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced wire batch carrying `ops` operations.
    pub fn record_batch(&self, ops: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_ops.fetch_add(ops, Ordering::Relaxed);
        self.batch_sizes.record(ops);
    }

    /// Records one accepted connection now registered with the reactor.
    pub fn record_conn_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection leaving the reactor.
    pub fn record_conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the reactor topology gauge. The worker-thread gauge it used
    /// to pair with is pinned at zero: every frame is handled on-shard,
    /// and `cckvs_reactor_workers` stays on the scrape surface so that
    /// invariant is assertable from outside the process.
    pub fn set_reactor_shards(&self, shards: u64) {
        self.reactor_shards.store(shards, Ordering::Relaxed);
        self.reactor_workers.store(0, Ordering::Relaxed);
    }

    /// Records one client GET answered inline on a reactor shard.
    pub fn record_inline_get(&self) {
        self.inline_gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one credit-window stall of `nanos` nanoseconds on a peer
    /// writer (the writer had traffic to send but no credits left).
    pub fn record_credit_stall_ns(&self, nanos: u64) {
        self.credit_stalls.fetch_add(1, Ordering::Relaxed);
        self.credit_stall_ns.fetch_add(nanos, Ordering::Relaxed);
        self.credit_stall_hist.record(nanos);
    }

    /// Records `n` latency-class frames (invalidations, Lin acks, RPC
    /// traffic) packed through a peer link's priority lane.
    pub fn record_priority_lane(&self, n: u64) {
        self.priority_lane_frames.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one bulk cork flushed at its adaptive target size.
    pub fn record_cork_flush_full(&self) {
        self.cork_flush_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one bulk cork flushed by its `max_delay` deadline.
    pub fn record_cork_flush_deadline(&self) {
        self.cork_flush_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one bulk flush taken immediately on an idle link.
    pub fn record_cork_flush_idle(&self) {
        self.cork_flush_idle.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the size of one bulk batch the adaptive controller
    /// released (whatever the flush reason).
    pub fn record_adaptive_batch(&self, ops: u64) {
        self.adaptive_batch.record(ops);
    }

    /// Records the time a corked bulk batch waited before flushing.
    pub fn record_cork_wait_ns(&self, nanos: u64) {
        self.cork_wait.record(nanos);
    }

    /// Records one successful peer-link reconnect (redial handshake
    /// completed after the previous connection died).
    pub fn record_peer_reconnect(&self) {
        self.peer_reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` retained protocol messages replayed to a peer after a
    /// reconnect (the peer had not confirmed processing them).
    pub fn record_peer_replayed(&self, n: u64) {
        self.peer_replayed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` invalidations reissued toward a restarted peer on
    /// behalf of pending Lin writes it never acknowledged.
    pub fn record_reissued(&self, n: u64) {
        self.reissued_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the parked-messages gauge: protocol traffic queued behind
    /// down peer links, waiting for a redial.
    pub fn set_parked(&self, n: u64) {
        self.parked_messages.store(n, Ordering::Relaxed);
    }

    /// Records one message dropped because a dead peer's park overflowed.
    pub fn record_parked_drop(&self) {
        self.parked_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one end-to-end operation latency in nanoseconds
    /// (lock-free: one atomic add into the calling thread's lane).
    pub fn record_latency_ns(&self, nanos: u64) {
        self.latency.record(nanos);
    }

    /// Records the time a Lin write spent blocked on its invalidation
    /// ack round (initiate → last ack).
    pub fn record_lin_ack_wait_ns(&self, nanos: u64) {
        self.lin_ack_wait.record(nanos);
    }

    /// Records the time from a suspended op's wake-up event (final ack
    /// delivered, RPC response arrived, admin job finished) to its
    /// continuation actually resuming on the owning shard.
    pub fn record_continuation_fire_ns(&self, nanos: u64) {
        self.continuation_fire.record(nanos);
    }

    /// Sets the pending correlated-RPC gauge (entries in the pending-RPC
    /// table awaiting a response).
    pub fn set_pending_rpcs(&self, n: u64) {
        self.pending_rpcs.store(n, Ordering::Relaxed);
    }

    /// Records the time a write spent enqueueing its coherence fan-out
    /// toward every peer link.
    pub fn record_fanout_ns(&self, nanos: u64) {
        self.fanout.record(nanos);
    }

    /// Records one reactor shard loop lap (poll + dispatch round).
    pub fn record_loop_lap_ns(&self, nanos: u64) {
        self.loop_lap.record(nanos);
    }

    /// Records `n` trace events captured into this node's sink.
    pub fn record_trace_events(&self, n: u64) {
        self.trace_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the cumulative count of trace events dropped by full rings.
    pub fn set_trace_dropped(&self, n: u64) {
        self.trace_dropped.store(n, Ordering::Relaxed);
    }

    /// The merged end-to-end latency distribution.
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// Takes a consistent snapshot (percentiles computed here).
    pub fn snapshot(&self) -> MetricsSnapshot {
        fn quantiles(snap: &HistogramSnapshot) -> (u64, u64) {
            if snap.count == 0 {
                (0, 0)
            } else {
                (snap.percentile(50.0), snap.percentile(99.0))
            }
        }
        let latency = self.latency.snapshot();
        let latency_count = latency.count as usize;
        let (p50, p99) = quantiles(&latency);
        let mean = latency.mean();
        let (batch_ops_p50, batch_ops_p99) = quantiles(&self.batch_sizes.snapshot());
        let (adaptive_batch_p50, adaptive_batch_p99) = quantiles(&self.adaptive_batch.snapshot());
        let (_, credit_stall_p99_ns) = quantiles(&self.credit_stall_hist.snapshot());
        let cork_wait = self.cork_wait.snapshot();
        let (cork_wait_p50_ns, cork_wait_p99_ns) = quantiles(&cork_wait);
        let lin_ack_wait = self.lin_ack_wait.snapshot();
        let (lin_ack_wait_p50_ns, lin_ack_wait_p99_ns) = quantiles(&lin_ack_wait);
        let continuation_fire = self.continuation_fire.snapshot();
        let (continuation_fire_p50_ns, continuation_fire_p99_ns) = quantiles(&continuation_fire);
        let fanout = self.fanout.snapshot();
        let (fanout_p50_ns, fanout_p99_ns) = quantiles(&fanout);
        let (loop_lap_p50_ns, loop_lap_p99_ns) = quantiles(&self.loop_lap.snapshot());
        MetricsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            remote_reads: self.remote_reads.load(Ordering::Relaxed),
            remote_writes: self.remote_writes.load(Ordering::Relaxed),
            protocol_in: self.protocol_in.load(Ordering::Relaxed),
            protocol_out: self.protocol_out.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            reactor_shards: self.reactor_shards.load(Ordering::Relaxed),
            reactor_workers: self.reactor_workers.load(Ordering::Relaxed),
            inline_gets: self.inline_gets.load(Ordering::Relaxed),
            batch_ops_p50,
            batch_ops_p99,
            credit_stalls: self.credit_stalls.load(Ordering::Relaxed),
            credit_stall_ns: self.credit_stall_ns.load(Ordering::Relaxed),
            credit_stall_p99_ns,
            priority_lane_frames: self.priority_lane_frames.load(Ordering::Relaxed),
            cork_flush_full: self.cork_flush_full.load(Ordering::Relaxed),
            cork_flush_deadline: self.cork_flush_deadline.load(Ordering::Relaxed),
            cork_flush_idle: self.cork_flush_idle.load(Ordering::Relaxed),
            adaptive_batch_p50,
            adaptive_batch_p99,
            cork_wait_count: cork_wait.count,
            cork_wait_p50_ns,
            cork_wait_p99_ns,
            peer_reconnects: self.peer_reconnects.load(Ordering::Relaxed),
            peer_replayed: self.peer_replayed.load(Ordering::Relaxed),
            reissued_invalidations: self.reissued_invalidations.load(Ordering::Relaxed),
            parked_messages: self.parked_messages.load(Ordering::Relaxed),
            parked_dropped: self.parked_dropped.load(Ordering::Relaxed),
            latency_count,
            latency_mean_ns: mean,
            latency_p50_ns: p50,
            latency_p99_ns: p99,
            latency_buckets: latency.nonzero_buckets(),
            lin_ack_wait_count: lin_ack_wait.count,
            lin_ack_wait_p50_ns,
            lin_ack_wait_p99_ns,
            continuation_fire_count: continuation_fire.count,
            continuation_fire_p50_ns,
            continuation_fire_p99_ns,
            fanout_count: fanout.count,
            fanout_p50_ns,
            fanout_p99_ns,
            loop_lap_p50_ns,
            loop_lap_p99_ns,
            pending_rpcs: self.pending_rpcs.load(Ordering::Relaxed),
            trace_events: self.trace_events.load(Ordering::Relaxed),
            trace_dropped: self.trace_dropped.load(Ordering::Relaxed),
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self, node_label: &str) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP cckvs_{name} {help}\n# TYPE cckvs_{name} counter\ncckvs_{name}{{node=\"{node_label}\"}} {value}\n"
            ));
        };
        counter("gets_total", "Client GET requests served.", snap.gets);
        counter("puts_total", "Client PUT requests served.", snap.puts);
        counter(
            "cache_hits_total",
            "Operations served by the symmetric cache.",
            snap.cache_hits,
        );
        counter(
            "cache_misses_total",
            "Operations that missed the symmetric cache.",
            snap.cache_misses,
        );
        counter(
            "remote_reads_total",
            "Miss-path reads forwarded to a remote home shard.",
            snap.remote_reads,
        );
        counter(
            "remote_writes_total",
            "Miss-path writes forwarded to a remote home shard.",
            snap.remote_writes,
        );
        counter(
            "protocol_in_total",
            "Consistency-protocol messages received.",
            snap.protocol_in,
        );
        counter(
            "protocol_out_total",
            "Consistency-protocol messages sent.",
            snap.protocol_out,
        );
        counter(
            "installs_total",
            "Keys installed into the symmetric cache by hot-set churn.",
            snap.installs,
        );
        counter(
            "evictions_total",
            "Keys evicted from the symmetric cache by hot-set churn.",
            snap.evictions,
        );
        counter(
            "writebacks_total",
            "Dirty evicted values written back to their home shards.",
            snap.writebacks,
        );
        counter(
            "batches_total",
            "Coalesced wire batches handled.",
            snap.batches,
        );
        counter(
            "batched_ops_total",
            "Operations carried inside coalesced wire batches.",
            snap.batched_ops,
        );
        counter(
            "conns_accepted_total",
            "Connections accepted over the node's lifetime.",
            snap.conns_accepted,
        );
        counter(
            "inline_gets_total",
            "Client GETs answered inline on a reactor shard.",
            snap.inline_gets,
        );
        counter(
            "credit_stalls_total",
            "Peer-writer stalls on an exhausted credit window.",
            snap.credit_stalls,
        );
        counter(
            "credit_stall_ns_total",
            "Nanoseconds spent stalled on exhausted credit windows.",
            snap.credit_stall_ns,
        );
        counter(
            "priority_lane_frames_total",
            "Latency-class frames sent through the peer mesh priority lane.",
            snap.priority_lane_frames,
        );
        counter(
            "cork_flush_full_total",
            "Bulk corks flushed at their adaptive target size.",
            snap.cork_flush_full,
        );
        counter(
            "cork_flush_deadline_total",
            "Bulk corks flushed by the max_delay deadline.",
            snap.cork_flush_deadline,
        );
        counter(
            "cork_flush_idle_total",
            "Bulk flushes taken immediately on an idle link.",
            snap.cork_flush_idle,
        );
        counter(
            "peer_reconnects_total",
            "Peer-link redial handshakes completed after a connection died.",
            snap.peer_reconnects,
        );
        counter(
            "peer_replayed_total",
            "Retained protocol messages replayed to peers after reconnects.",
            snap.peer_replayed,
        );
        counter(
            "reissued_invalidations_total",
            "Invalidations reissued toward restarted peers for pending writes.",
            snap.reissued_invalidations,
        );
        counter(
            "parked_dropped_total",
            "Messages dropped because a dead peer's park overflowed.",
            snap.parked_dropped,
        );
        counter(
            "trace_events_total",
            "Trace events recorded into the node's sink.",
            snap.trace_events,
        );
        counter(
            "trace_dropped_total",
            "Trace events dropped because a sink ring lane was full.",
            snap.trace_dropped,
        );
        for (suffix, value) in [
            ("batch_ops_p50", snap.batch_ops_p50),
            ("batch_ops_p99", snap.batch_ops_p99),
            ("credit_stall_p99_ns", snap.credit_stall_p99_ns),
            ("adaptive_batch_p50", snap.adaptive_batch_p50),
            ("adaptive_batch_p99", snap.adaptive_batch_p99),
            ("cork_wait_count", snap.cork_wait_count),
            ("cork_wait_p50_ns", snap.cork_wait_p50_ns),
            ("cork_wait_p99_ns", snap.cork_wait_p99_ns),
            ("conns_open", snap.conns_open),
            ("reactor_shards", snap.reactor_shards),
            ("reactor_workers", snap.reactor_workers),
            ("parked_messages", snap.parked_messages),
            ("lin_ack_wait_count", snap.lin_ack_wait_count),
            ("lin_ack_wait_p50_ns", snap.lin_ack_wait_p50_ns),
            ("lin_ack_wait_p99_ns", snap.lin_ack_wait_p99_ns),
            ("continuation_fire_count", snap.continuation_fire_count),
            ("continuation_fire_p50_ns", snap.continuation_fire_p50_ns),
            ("continuation_fire_p99_ns", snap.continuation_fire_p99_ns),
            ("fanout_count", snap.fanout_count),
            ("fanout_p50_ns", snap.fanout_p50_ns),
            ("fanout_p99_ns", snap.fanout_p99_ns),
            ("loop_lap_p50_ns", snap.loop_lap_p50_ns),
            ("loop_lap_p99_ns", snap.loop_lap_p99_ns),
            ("pending_rpcs", snap.pending_rpcs),
        ] {
            out.push_str(&format!(
                "# TYPE cckvs_{suffix} gauge\ncckvs_{suffix}{{node=\"{node_label}\"}} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# HELP cckvs_epoch Highest hot-set epoch applied on this node.\n\
             # TYPE cckvs_epoch gauge\ncckvs_epoch{{node=\"{node_label}\"}} {}\n",
            snap.epoch
        ));
        out.push_str(&format!(
            "# HELP cckvs_hit_rate Fraction of operations served by the symmetric cache.\n\
             # TYPE cckvs_hit_rate gauge\ncckvs_hit_rate{{node=\"{node_label}\"}} {:.6}\n",
            snap.hit_rate()
        ));
        for (suffix, value) in [
            ("count", snap.latency_count as u64),
            ("p50_ns", snap.latency_p50_ns),
            ("p99_ns", snap.latency_p99_ns),
        ] {
            out.push_str(&format!(
                "# TYPE cckvs_latency_{suffix} gauge\ncckvs_latency_{suffix}{{node=\"{node_label}\"}} {value}\n"
            ));
        }
        // The full end-to-end distribution, Prometheus histogram style
        // (cumulative counts per inclusive upper edge).
        out.push_str("# TYPE cckvs_latency_ns histogram\n");
        let mut cumulative = 0u64;
        for (edge, count) in &snap.latency_buckets {
            cumulative += count;
            out.push_str(&format!(
                "cckvs_latency_ns_bucket{{node=\"{node_label}\",le=\"{edge}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "cckvs_latency_ns_bucket{{node=\"{node_label}\",le=\"+Inf\"}} {}\n",
            snap.latency_count
        ));
        out
    }
}

/// Handle to a running metrics HTTP endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    waker: Arc<Waker>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The address the endpoint listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

/// Most concurrent scrape connections the endpoint holds; beyond this the
/// accept loop stops taking new sockets until one finishes. A scrape storm
/// therefore costs bounded memory and zero threads — the old
/// thread-per-scrape endpoint could be driven to thread exhaustion by
/// aggressive (or stuck) scrapers.
const MAX_SCRAPE_CONNS: usize = 128;

/// Request-head bytes read before answering regardless (a scrape target,
/// not a router — the path is irrelevant and giant heads are hostile).
const MAX_REQUEST_HEAD: usize = 8 * 1024;

const SCRAPE_TOKEN_WAKER: u64 = 0;
const SCRAPE_TOKEN_LISTENER: u64 = 1;

struct ScrapeConn {
    stream: TcpStream,
    head: Vec<u8>,
    response: WriteBuf,
    responding: bool,
}

/// Serves `metrics.render()` over HTTP/1.0 on `addr` (`0` port allowed),
/// from a single-thread reactor loop with a bounded connection set.
///
/// The endpoint answers every request path with the full registry — it is a
/// scrape target, not a router.
pub fn serve_http(
    addr: SocketAddr,
    node_label: String,
    metrics: Arc<Metrics>,
) -> std::io::Result<MetricsServer> {
    serve_http_traced(addr, node_label, metrics, None)
}

/// Like [`serve_http`], additionally adopting drain duty for a node's
/// trace sink: the scrape thread periodically moves events out of the
/// lock-free rings into the sink's bounded store (and mirrors the
/// recorded/dropped totals into the registry), so ring lanes stay empty
/// even when nobody scrapes or dumps.
pub fn serve_http_traced(
    addr: SocketAddr,
    node_label: String,
    metrics: Arc<Metrics>,
    sink: Option<Arc<cckvs_trace::TraceSink>>,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let poller = Poller::new()?;
    poller.register(
        listener.as_raw_fd(),
        Token(SCRAPE_TOKEN_LISTENER),
        Interest::READ,
    )?;
    let waker = Arc::new(Waker::new(&poller, Token(SCRAPE_TOKEN_WAKER))?);
    let running = Arc::new(AtomicBool::new(true));
    let thread_running = Arc::clone(&running);
    let thread_waker = Arc::clone(&waker);
    let handle = std::thread::Builder::new()
        .name(format!("cckvs-metrics-{node_label}"))
        .spawn(move || {
            scrape_loop(
                listener,
                poller,
                thread_waker,
                thread_running,
                node_label,
                metrics,
                sink,
            )
        })?;
    Ok(MetricsServer {
        addr: local,
        running,
        waker,
        handle: Some(handle),
    })
}

/// How often the scrape thread drains the trace rings when it also owns
/// a sink (bounds how long events sit in a ring lane).
const TRACE_DRAIN_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);

#[allow(clippy::too_many_arguments)]
fn scrape_loop(
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    running: Arc<AtomicBool>,
    node_label: String,
    metrics: Arc<Metrics>,
    sink: Option<Arc<cckvs_trace::TraceSink>>,
) {
    let mut events = Events::with_capacity(64);
    let mut conns: HashMap<u64, ScrapeConn> = HashMap::new();
    let mut next_token = 16u64;
    let mut listener_paused = false;
    // With a sink to drain, wake on a timer even when nobody scrapes.
    let wait_timeout = sink.as_ref().map(|_| TRACE_DRAIN_INTERVAL);
    while running.load(Ordering::SeqCst) {
        if poller.wait(&mut events, wait_timeout).is_err() {
            continue;
        }
        waker.drain();
        if let Some(sink) = &sink {
            let drained = sink.drain();
            if drained > 0 {
                metrics.record_trace_events(drained as u64);
            }
            metrics.set_trace_dropped(sink.dropped());
        }
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let mut touched: Vec<u64> = Vec::new();
        let mut accept = false;
        for event in events.iter() {
            match event.token.0 {
                SCRAPE_TOKEN_WAKER => {}
                SCRAPE_TOKEN_LISTENER => accept = true,
                token => touched.push(token),
            }
        }
        if accept {
            while conns.len() < MAX_SCRAPE_CONNS {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let token = next_token;
                        next_token += 1;
                        if poller
                            .register(stream.as_raw_fd(), Token(token), Interest::READ)
                            .is_ok()
                        {
                            conns.insert(
                                token,
                                ScrapeConn {
                                    stream,
                                    head: Vec::new(),
                                    response: WriteBuf::new(),
                                    responding: false,
                                },
                            );
                            touched.push(token);
                        }
                    }
                    // WouldBlock and transient errors alike: retry on the
                    // next readiness event instead of dying.
                    Err(_) => break,
                }
            }
        }
        for token in touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let mut done = false;
            if !conn.responding {
                // Accumulate the request head until a blank line (or the
                // cap, or EOF — tolerate clients that close early).
                let mut buf = [0u8; 1024];
                let complete = loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => break true,
                        Ok(n) => {
                            conn.head.extend_from_slice(&buf[..n]);
                            if conn.head.len() >= MAX_REQUEST_HEAD
                                || conn.head.windows(4).any(|w| w == b"\r\n\r\n")
                            {
                                break true;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            done = true;
                            break false;
                        }
                    }
                };
                if complete && !done {
                    let body = metrics.render(&node_label);
                    conn.response.push(
                        format!(
                            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                            body.len(),
                            body
                        )
                        .as_bytes(),
                    );
                    conn.responding = true;
                    let _ = poller.modify(conn.stream.as_raw_fd(), Token(token), Interest::WRITE);
                }
            }
            if conn.responding && !done {
                match conn.response.flush_to(&mut conn.stream) {
                    Ok(true) => done = true,
                    Ok(false) => {}
                    Err(_) => done = true,
                }
            }
            if done {
                let conn = conns.remove(&token).expect("present above");
                poller.deregister(conn.stream.as_raw_fd());
            }
        }
        // The bounded set acts as accept backpressure: pause the listener
        // registration while full so epoll does not spin on pending
        // connections, resume once a slot frees up.
        if !listener_paused && conns.len() >= MAX_SCRAPE_CONNS {
            poller.deregister(listener.as_raw_fd());
            listener_paused = true;
        } else if listener_paused
            && conns.len() < MAX_SCRAPE_CONNS
            && poller
                .register(
                    listener.as_raw_fd(),
                    Token(SCRAPE_TOKEN_LISTENER),
                    Interest::READ,
                )
                .is_ok()
        {
            listener_paused = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn counters_and_hit_rate() {
        let m = Metrics::new();
        for _ in 0..3 {
            m.record_get();
            m.record_cache(true);
        }
        m.record_put();
        m.record_cache(false);
        m.record_remote_read();
        m.record_protocol_out(2);
        let snap = m.snapshot();
        assert_eq!(snap.gets, 3);
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.remote_reads, 1);
        assert_eq!(snap.protocol_out, 2);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-9);
    }

    /// Bucketed quantile estimates land within 1/16 above the exact
    /// sample (the bucket's inclusive upper edge).
    fn assert_close(estimate: u64, exact: u64) {
        assert!(
            estimate >= exact && estimate <= exact + exact / 16 + 1,
            "estimate {estimate} not within 1/16 above exact {exact}"
        );
    }

    #[test]
    fn latency_percentiles() {
        let m = Metrics::new();
        for ns in 1..=100u64 {
            m.record_latency_ns(ns * 1000);
        }
        let snap = m.snapshot();
        assert_eq!(snap.latency_count, 100);
        assert_close(snap.latency_p50_ns, 50_000);
        assert_close(snap.latency_p99_ns, 99_000);
        assert!((snap.latency_mean_ns - 50_500.0).abs() < 1e-9);
        // The exported buckets reconstruct the full count.
        let total: u64 = snap.latency_buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 100);
        assert!(
            snap.latency_buckets.windows(2).all(|w| w[0].0 < w[1].0),
            "bucket edges must ascend"
        );
    }

    #[test]
    fn histogram_buckets_are_exact_small_and_log_linear_large() {
        let h = AtomicHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        // Small values are exact: percentile rank k+1 returns value k.
        assert_eq!(snap.percentile(50.0), 7);
        assert_eq!(snap.percentile(100.0), 15);
        // Large values are within 1/16.
        let h = AtomicHistogram::new();
        for v in [1_000_000u64, 2_000_000, u64::MAX / 2, u64::MAX] {
            h.record(v);
            let snap = h.snapshot();
            let p100 = snap.percentile(100.0);
            assert!(p100 >= v, "edge {p100} below sample {v}");
            assert!(
                (p100 as u128) <= (v as u128) + (v as u128) / 16 + 1,
                "edge {p100} too far above sample {v}"
            );
        }
    }

    #[test]
    fn sharded_histogram_merges_across_recording_threads() {
        let h = Arc::new(ShardedHistogram::new(4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_close(snap.percentile(100.0), 3_000_999);
    }

    /// Satellite: a 10M-sample run holds constant memory. The previous
    /// raw-sample histogram grew 8 B per op (80 MB for this run); the
    /// fixed-bucket histogram's heap is identical before and after.
    #[test]
    fn ten_million_samples_hold_constant_memory() {
        let m = Metrics::new();
        let before = m.latency.heap_bytes() + m.credit_stall_hist.heap_bytes();
        for i in 0..10_000_000u64 {
            m.record_latency_ns(i & 0xFFFFF);
        }
        let after = m.latency.heap_bytes() + m.credit_stall_hist.heap_bytes();
        assert_eq!(before, after, "histogram memory must not grow with samples");
        assert!(
            after < 256 * 1024,
            "histogram footprint should be tens of KB, got {after}"
        );
        assert_eq!(m.snapshot().latency_count, 10_000_000);
    }

    #[test]
    fn per_phase_histograms_surface_in_snapshot_and_render() {
        let m = Metrics::new();
        m.record_lin_ack_wait_ns(120_000);
        m.record_continuation_fire_ns(3_000);
        m.record_fanout_ns(900);
        m.record_loop_lap_ns(40_000);
        m.set_pending_rpcs(5);
        m.record_trace_events(17);
        m.set_trace_dropped(2);
        let snap = m.snapshot();
        assert_eq!(snap.lin_ack_wait_count, 1);
        assert_close(snap.lin_ack_wait_p99_ns, 120_000);
        assert_eq!(snap.continuation_fire_count, 1);
        assert_close(snap.continuation_fire_p50_ns, 3_000);
        assert_eq!(snap.fanout_count, 1);
        assert_close(snap.fanout_p99_ns, 900);
        assert_close(snap.loop_lap_p99_ns, 40_000);
        assert_eq!(snap.pending_rpcs, 5);
        assert_eq!(snap.trace_events, 17);
        assert_eq!(snap.trace_dropped, 2);
        let text = m.render("n7");
        assert!(text.contains("cckvs_lin_ack_wait_p99_ns{node=\"n7\"}"));
        assert!(text.contains("cckvs_continuation_fire_p50_ns{node=\"n7\"}"));
        assert!(text.contains("cckvs_fanout_p99_ns{node=\"n7\"}"));
        assert!(text.contains("cckvs_loop_lap_p99_ns{node=\"n7\"}"));
        assert!(text.contains("cckvs_pending_rpcs{node=\"n7\"} 5"));
        assert!(text.contains("cckvs_trace_events_total{node=\"n7\"} 17"));
        assert!(text.contains("cckvs_latency_ns_bucket{node=\"n7\",le=\"+Inf\"} 0"));
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let m = Metrics::new();
        m.record_get();
        m.record_cache(true);
        let text = m.render("n0");
        assert!(text.contains("cckvs_gets_total{node=\"n0\"} 1"));
        assert!(text.contains("# TYPE cckvs_hit_rate gauge"));
        assert!(text.contains("cckvs_hit_rate{node=\"n0\"} 1.000000"));
    }

    #[test]
    fn churn_counters_surface_in_snapshot_and_render() {
        let m = Metrics::new();
        m.record_epoch(3);
        m.record_epoch(2); // out-of-order apply: the gauge keeps the max
        m.record_installs(5);
        m.record_evictions(4);
        m.record_writeback();
        m.record_writeback();
        let snap = m.snapshot();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.installs, 5);
        assert_eq!(snap.evictions, 4);
        assert_eq!(snap.writebacks, 2);
        let text = m.render("n1");
        assert!(text.contains("cckvs_epoch{node=\"n1\"} 3"));
        assert!(text.contains("cckvs_installs_total{node=\"n1\"} 5"));
        assert!(text.contains("cckvs_evictions_total{node=\"n1\"} 4"));
        assert!(text.contains("cckvs_writebacks_total{node=\"n1\"} 2"));
    }

    #[test]
    fn batch_and_credit_metrics_surface_in_snapshot_and_render() {
        let m = Metrics::new();
        for ops in [1u64, 8, 8, 16] {
            m.record_batch(ops);
        }
        m.record_credit_stall_ns(5_000);
        m.record_credit_stall_ns(15_000);
        let snap = m.snapshot();
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.batched_ops, 33);
        assert_eq!(snap.batch_ops_p50, 8);
        assert_eq!(snap.batch_ops_p99, 16);
        assert_eq!(snap.credit_stalls, 2);
        assert_eq!(snap.credit_stall_ns, 20_000);
        assert_close(snap.credit_stall_p99_ns, 15_000);
        let text = m.render("n2");
        assert!(text.contains("cckvs_batches_total{node=\"n2\"} 4"));
        assert!(text.contains("cckvs_batched_ops_total{node=\"n2\"} 33"));
        assert!(text.contains("cckvs_credit_stalls_total{node=\"n2\"} 2"));
        assert!(text.contains("cckvs_batch_ops_p99{node=\"n2\"} 16"));
    }

    #[test]
    fn scrape_storm_is_served_without_extra_threads() {
        let metrics = Arc::new(Metrics::new());
        metrics.record_get();
        let server = serve_http(
            "127.0.0.1:0".parse().unwrap(),
            "storm".to_string(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let addr = server.addr();
        // Concurrent scrapers hammering the endpoint: every request gets a
        // complete, valid response, from the single reactor thread.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..40 {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
                        let mut response = String::new();
                        stream.read_to_string(&mut response).unwrap();
                        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
                        assert!(response.contains("cckvs_gets_total"));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn http_endpoint_serves_metrics() {
        let metrics = Arc::new(Metrics::new());
        metrics.record_get();
        metrics.record_cache(true);
        let server = serve_http(
            "127.0.0.1:0".parse().unwrap(),
            "n9".to_string(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        assert!(response.contains("cckvs_gets_total{node=\"n9\"} 1"));
        server.shutdown();
    }
}
