//! `cckvs-node` — one networked ccKVS server node.
//!
//! Runs a single node of a deployment as its own process, for
//! process-per-node or multi-host racks:
//!
//! ```text
//! cckvs-node --node 0 --nodes 3 \
//!     --listen 127.0.0.1:7000 \
//!     --peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//!     --model lin --metrics 127.0.0.1:9100
//! ```
//!
//! `--peers` lists the listen address of *every* node in node-id order
//! (including this node's own entry). The node binds, waits for its peers
//! to come up (retrying for `--peer-timeout` seconds), wires the protocol
//! mesh, and serves until it receives a `Shutdown` frame on a client
//! connection (`cckvs-loadgen --shutdown` sends one).

use cckvs::node::{NodeConfig, DEFAULT_KVS_THREADS};
use cckvs_net::server::{NodeServer, NodeServerConfig, ReactorConfig};
use cckvs_net::transport::TransportKind;
use consistency::messages::ConsistencyModel;
use std::io::Read;
use std::net::SocketAddr;
use std::time::Duration;
use symcache::EpochConfig;

/// Exit code for a failed listener bind: the port is taken (or the address
/// is unusable). A supervisor must NOT blindly retry — another process owns
/// the port.
const EXIT_BIND: i32 = 3;

/// Exit code for a peer-connect timeout: the peers were not up within
/// `--peer-timeout`. A supervisor SHOULD retry — the rest of the rack may
/// simply still be booting (or restarting).
const EXIT_PEERS: i32 = 4;

/// How long the SIGTERM path spends shipping dirty cached values back to
/// their home shards before exiting.
const DRAIN_BUDGET: Duration = Duration::from_secs(5);

struct Args {
    node: usize,
    nodes: usize,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    model: ConsistencyModel,
    metrics: Option<SocketAddr>,
    cache_capacity: usize,
    kvs_capacity: usize,
    value_capacity: usize,
    peer_timeout: u64,
    epoch_hot_set: Option<usize>,
    shards: usize,
    ready_fd: Option<i32>,
    cold_floor: u32,
    hot_fence: Vec<u64>,
    transport: TransportKind,
}

fn usage() -> ! {
    eprintln!(
        "usage: cckvs-node --node N --nodes M --listen ADDR --peers A,B,... \
         [--model sc|lin] [--metrics ADDR] [--cache-capacity N] \
         [--kvs-capacity N] [--value-capacity N] [--peer-timeout SECS] \
         [--epoch-hot-set N] [--shards N] [--ready-fd FD]\n\
         [--cold-floor N] [--hot-fence K1,K2,...] [--transport tcp|udp]\n\
         --transport picks the fabric the node listens on and dials peers\n\
         over (default tcp; every node and client of a deployment must\n\
         agree). udp runs datagrams with userspace loss recovery — the\n\
         paper's unreliable-datagram fabric shape. The metrics endpoint\n\
         stays HTTP-over-TCP either way.\n\
         --shards sizes the epoll reactor (shard event-loop threads; every\n\
         frame — including Lin commits and miss-path RPCs — is handled\n\
         on-shard, so thread count is O(shards), independent of connection\n\
         count). --workers N is accepted for compatibility but ignored: the\n\
         blocking worker pool was replaced by on-shard continuations.\n\
         --epoch-hot-set makes this node the deployment's epoch coordinator:\n\
         it tracks popularity over the requests it serves and churns a hot\n\
         set of N keys across all nodes at every epoch (set it on exactly\n\
         one node).\n\
         --ready-fd writes \"ready\\n\" to the given (inherited) fd once the\n\
         peer mesh is up — supervisors await it instead of polling.\n\
         --cold-floor seeds the home shard's cold-version counter: a\n\
         supervisor restarting a crashed node passes its last polled\n\
         VersionFloor (plus slack) so home-assigned versions stay monotone\n\
         across the crash.\n\
         --hot-fence marks the listed keys (those homed here) as fenced\n\
         from boot: the deployment's hot set is still live in the peers'\n\
         caches, so this empty replacement must bounce cold ops on those\n\
         keys until the supervisor heals cache symmetry.\n\
         Exit codes: 2 usage, 3 bind failed (port taken: do not retry),\n\
         4 peers unreachable within --peer-timeout (retry).\n\
         SIGTERM drains dirty write-backs to home shards, then exits 0."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        node: usize::MAX,
        nodes: 0,
        listen: "127.0.0.1:0".parse().expect("static addr"),
        peers: Vec::new(),
        model: ConsistencyModel::Lin,
        metrics: None,
        cache_capacity: 4096,
        kvs_capacity: 1 << 16,
        value_capacity: 64,
        peer_timeout: 30,
        epoch_hot_set: None,
        shards: ReactorConfig::default().shards,
        ready_fd: None,
        cold_floor: 0,
        hot_fence: Vec::new(),
        transport: TransportKind::Tcp,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--node" => args.node = value("--node").parse().unwrap_or_else(|_| usage()),
            "--nodes" => args.nodes = value("--nodes").parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = value("--listen").parse().unwrap_or_else(|_| usage()),
            "--peers" => {
                args.peers = value("--peers")
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--model" => {
                args.model = match value("--model").as_str() {
                    "sc" => ConsistencyModel::Sc,
                    "lin" => ConsistencyModel::Lin,
                    _ => usage(),
                }
            }
            "--metrics" => {
                args.metrics = Some(value("--metrics").parse().unwrap_or_else(|_| usage()))
            }
            "--cache-capacity" => {
                args.cache_capacity = value("--cache-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--kvs-capacity" => {
                args.kvs_capacity = value("--kvs-capacity").parse().unwrap_or_else(|_| usage())
            }
            "--value-capacity" => {
                args.value_capacity = value("--value-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--peer-timeout" => {
                args.peer_timeout = value("--peer-timeout").parse().unwrap_or_else(|_| usage())
            }
            "--epoch-hot-set" => {
                args.epoch_hot_set =
                    Some(value("--epoch-hot-set").parse().unwrap_or_else(|_| usage()))
            }
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--transport" => {
                args.transport = value("--transport").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--workers" => {
                // Deprecated: the blocking worker pool is gone — every frame
                // is handled on-shard. Parse (so old supervisor command
                // lines keep working) and ignore.
                let n: usize = value("--workers").parse().unwrap_or_else(|_| usage());
                eprintln!(
                    "cckvs-node: --workers {n} is deprecated and ignored: \
                     frames are handled on-shard (no worker pool)"
                );
            }
            "--ready-fd" => {
                args.ready_fd = Some(value("--ready-fd").parse().unwrap_or_else(|_| usage()))
            }
            "--cold-floor" => {
                args.cold_floor = value("--cold-floor").parse().unwrap_or_else(|_| usage())
            }
            "--hot-fence" => {
                args.hot_fence = value("--hot-fence")
                    .split(',')
                    .filter(|part| !part.is_empty())
                    .map(|part| part.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.nodes == 0 || args.node >= args.nodes {
        eprintln!("--node and --nodes are required (node < nodes)");
        usage();
    }
    if args.shards == 0 {
        eprintln!("--shards must be at least 1");
        usage();
    }
    if args.peers.len() != args.nodes {
        eprintln!(
            "--peers must list one address per node ({} given, {} nodes)",
            args.peers.len(),
            args.nodes
        );
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = NodeServerConfig {
        node: NodeConfig {
            model: args.model,
            node: args.node,
            nodes: args.nodes,
            cache_capacity: args.cache_capacity,
            kvs_capacity: args.kvs_capacity,
            value_capacity: args.value_capacity,
            kvs_threads: DEFAULT_KVS_THREADS,
        },
        listen: args.listen,
        metrics_listen: args.metrics,
        epochs: args.epoch_hot_set.map(EpochConfig::for_cache),
        flow: cckvs_net::server::FlowConfig::default(),
        reactor: ReactorConfig {
            shards: args.shards,
        },
        rpc_retry: cckvs_net::server::DEFAULT_RPC_RETRY,
        cold_version_floor: args.cold_floor,
        hot_fence: args.hot_fence,
        transport: cckvs_net::transport::TransportConfig {
            kind: args.transport,
            faults: None,
        },
    };
    let mut server = match NodeServer::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            // Distinct code: the supervisor must not retry a taken port.
            eprintln!("cckvs-node: failed to bind/start: {e}");
            std::process::exit(EXIT_BIND);
        }
    };
    eprintln!(
        "cckvs-node: node {} of {} ({}) listening on {} over {}{}",
        args.node,
        args.nodes,
        args.model.label(),
        server.addr(),
        args.transport,
        server
            .metrics_addr()
            .map(|a| format!(", metrics on http://{a}/metrics"))
            .unwrap_or_default()
    );
    // Graceful termination: SIGTERM/SIGINT land as bytes on a self-pipe; a
    // watcher thread ships dirty write-backs home, then shuts the reactor
    // down so the process exits 0 (the supervisor reads that as "stopped
    // on purpose", not a crash).
    let handle = server.shutdown_handle();
    match reactor::signal_pipe(&[reactor::SIGTERM, reactor::SIGINT]) {
        Ok(mut pipe) => {
            std::thread::Builder::new()
                .name("cckvs-signals".to_string())
                .spawn(move || {
                    let mut byte = [0u8; 1];
                    if pipe.read_exact(&mut byte).is_ok() {
                        eprintln!(
                            "cckvs-node: signal {} received, draining dirty write-backs",
                            byte[0]
                        );
                        let drained = handle.drain_dirty_writebacks(DRAIN_BUDGET);
                        eprintln!("cckvs-node: drained {drained} dirty values, shutting down");
                        handle.initiate_shutdown();
                    }
                })
                .expect("spawn signal watcher");
        }
        Err(e) => eprintln!("cckvs-node: no graceful-signal handling: {e}"),
    }
    if let Err(e) = server.connect_peers(&args.peers, Duration::from_secs(args.peer_timeout)) {
        // Distinct code: the peers may simply still be booting — retry.
        eprintln!("cckvs-node: failed to reach peers: {e}");
        std::process::exit(EXIT_PEERS);
    }
    eprintln!("cckvs-node: peer mesh up, serving");
    if let Some(fd) = args.ready_fd {
        if let Err(e) = reactor::write_raw_fd(fd, b"ready\n") {
            eprintln!("cckvs-node: could not signal --ready-fd {fd}: {e}");
        }
        reactor::close_raw_fd(fd);
    }
    server.wait();
    eprintln!("cckvs-node: shut down");
}
