//! `cckvs-trace` — assembles cross-node span dumps into per-op timelines.
//!
//! Every node records sampled span events (decode, miss RPCs, Lin
//! initiate, per-peer invalidation send, ack arrival, commit fire, credit
//! stalls, replay) into a bounded in-memory buffer, queryable over the
//! client port via `Frame::TraceDump`. This tool fetches those buffers and
//! reconstructs what one operation did across the whole rack:
//!
//! ```text
//! # Drive one traced Lin PUT and print its cross-node timeline:
//! cckvs-trace put --servers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//!     --key 7 --value hello
//!
//! # Dump the raw trace buffers (optionally one trace id only):
//! cckvs-trace dump --servers 127.0.0.1:7000,127.0.0.1:7001 [--trace ID]
//! ```
//!
//! Timelines are printed with per-phase durations: decode → invalidation
//! fan-out → per-peer ack wait → commit fire (the queued response
//! resuming on-shard) → respond.

use cckvs_net::client::{collect_traces, Client};
use cckvs_net::LoadBalancePolicy;
use cckvs_trace::{assemble, Event, EventKind, NO_PEER};
use std::collections::BTreeSet;
use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         cckvs-trace put  --servers A,B,... [--key K] [--value S]\n\
         cckvs-trace dump --servers A,B,... [--trace ID]\n\
         \n\
         put:  drives one traced PUT through the deployment, then fetches\n\
         every node's trace buffer and prints the op's assembled cross-node\n\
         timeline with per-phase durations.\n\
         dump: fetches the raw buffers; with --trace ID prints that op's\n\
         assembled timeline, otherwise lists the trace ids present."
    );
    std::process::exit(2);
}

struct Args {
    mode: String,
    servers: Vec<SocketAddr>,
    key: u64,
    value: Vec<u8>,
    trace: Option<u64>,
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let mode = it.next().unwrap_or_else(|| usage());
    if mode != "put" && mode != "dump" {
        usage();
    }
    let mut args = Args {
        mode,
        servers: Vec::new(),
        key: 7,
        value: b"traced".to_vec(),
        trace: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--servers" => {
                args.servers = value("--servers")
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--key" => args.key = value("--key").parse().unwrap_or_else(|_| usage()),
            "--value" => args.value = value("--value").into_bytes(),
            "--trace" => args.trace = Some(value("--trace").parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.servers.is_empty() {
        eprintln!("--servers is required");
        usage();
    }
    args
}

fn main() {
    // Timelines get piped into `head`/`grep`; die quietly on a closed
    // pipe instead of panicking on the first print.
    reactor::reset_sigpipe();
    let args = parse_args();
    let traced_id = if args.mode == "put" {
        let mut client = Client::connect(&args.servers, u32::MAX - 1, LoadBalancePolicy::Pinned(0))
            .unwrap_or_else(|e| {
                eprintln!("cckvs-trace: cannot reach the deployment: {e}");
                std::process::exit(1);
            });
        let id = client.trace_next();
        if let Err(e) = client.put(args.key, &args.value) {
            eprintln!("cckvs-trace: traced put failed: {e}");
            std::process::exit(1);
        }
        println!(
            "traced put key={} ({} bytes) as trace {id:#x}",
            args.key,
            args.value.len()
        );
        Some(id)
    } else {
        args.trace
    };

    let dumps = match collect_traces(&args.servers) {
        Ok(dumps) => dumps,
        Err(e) => {
            eprintln!("cckvs-trace: trace dump failed: {e}");
            std::process::exit(1);
        }
    };
    let mut events: Vec<Vec<Event>> = Vec::with_capacity(dumps.len());
    for (node, (dropped, dump)) in dumps.into_iter().enumerate() {
        println!(
            "node {node} ({}): {} span events ({dropped} dropped at ring overflow)",
            args.servers[node],
            dump.len()
        );
        events.push(dump);
    }

    match traced_id {
        Some(id) => {
            let timeline = assemble(&events, id);
            if timeline.is_empty() {
                eprintln!("cckvs-trace: no events recorded for trace {id:#x}");
                std::process::exit(1);
            }
            print_timeline(id, &timeline);
        }
        None => {
            // No specific op: list what the buffers hold so the caller can
            // re-run with --trace ID.
            let ids: BTreeSet<u64> = events
                .iter()
                .flat_map(|d| d.iter())
                .map(|ev| ev.trace_id)
                .collect();
            println!("{} distinct trace ids:", ids.len());
            for id in ids {
                let n: usize = events
                    .iter()
                    .flat_map(|d| d.iter())
                    .filter(|ev| ev.trace_id == id)
                    .count();
                println!("  {id:#x}  ({n} events)");
            }
        }
    }
}

/// Prints one op's time-ordered cross-node event list, then the derived
/// per-phase durations.
fn print_timeline(id: u64, timeline: &[Event]) {
    let t0 = timeline[0].t_ns;
    println!("trace {id:#x}: {} events", timeline.len());
    println!(
        "  {:>10}  {:<4} {:<5} {:<16} detail",
        "t(µs)", "node", "shard", "event"
    );
    for ev in timeline {
        let detail = match ev.kind {
            EventKind::CreditStall => format!("stalled {}ns", ev.key),
            EventKind::CorkWait => format!("corked {}ns", ev.key),
            _ if ev.peer != NO_PEER => format!("key={} peer=n{}", ev.key, ev.peer),
            _ => format!("key={}", ev.key),
        };
        println!(
            "  {:>10.1}  n{:<3} {:<5} {:<16} {}",
            (ev.t_ns - t0) as f64 / 1_000.0,
            ev.node,
            if ev.shard == cckvs_trace::SHARED_LANE {
                "-".to_string()
            } else {
                ev.shard.to_string()
            },
            ev.kind.name(),
            detail
        );
    }

    // Per-phase durations, from the first event of each phase boundary.
    let first = |kind: EventKind| timeline.iter().find(|ev| ev.kind == kind);
    let last = |kind: EventKind| timeline.iter().rev().find(|ev| ev.kind == kind);
    let span = |a: Option<&Event>, b: Option<&Event>| -> Option<u64> {
        match (a, b) {
            (Some(a), Some(b)) if b.t_ns >= a.t_ns => Some(b.t_ns - a.t_ns),
            _ => None,
        }
    };
    println!("phases:");
    let phase = |name: &str, ns: Option<u64>| {
        if let Some(ns) = ns {
            println!("  {name:<22} {:>10.1}µs", ns as f64 / 1_000.0);
        }
    };
    let decode = first(EventKind::Decode);
    let initiate = first(EventKind::LinInitiate);
    phase("decode -> initiate", span(decode, initiate));
    phase(
        "fan-out (inv sends)",
        span(initiate, last(EventKind::InvSend)),
    );
    // Per-peer ack wait: invalidation send to that peer's ack arrival.
    let peers: BTreeSet<u8> = timeline
        .iter()
        .filter(|ev| ev.kind == EventKind::InvSend)
        .map(|ev| ev.peer)
        .collect();
    for peer in peers {
        let sent = timeline
            .iter()
            .find(|ev| ev.kind == EventKind::InvSend && ev.peer == peer);
        let acked = timeline
            .iter()
            .find(|ev| ev.kind == EventKind::AckRecv && ev.peer == peer);
        phase(&format!("ack wait (peer n{peer})"), span(sent, acked));
    }
    phase(
        "initiate -> commit",
        span(initiate, first(EventKind::CommitFire)),
    );
    // Cross-shard resume delivery: the last ack commits the write, the
    // owning shard fires the suspended op's continuation.
    phase(
        "resume (commit -> fire)",
        span(
            first(EventKind::CommitFire),
            first(EventKind::ContinuationFire),
        ),
    );
    // Adaptive-batch cork time: CorkWait events carry the wait in `key`.
    let corked: u64 = timeline
        .iter()
        .filter(|ev| ev.kind == EventKind::CorkWait)
        .map(|ev| ev.key)
        .sum();
    if corked > 0 {
        phase("cork wait (sum)", Some(corked));
    }
    phase("total (-> respond)", span(decode, last(EventKind::Respond)));
}
