//! `cckvs-loadgen` — workload driver for a networked ccKVS deployment.
//!
//! Installs the hot set, then drives a Zipfian (or uniform) read/write mix
//! through load-balanced [`cckvs_net::Client`] sessions, and reports
//! throughput, cache hit rate, latency percentiles and — when every
//! operation on cached keys is recorded — the verdict of the per-key SC /
//! per-key Lin history checkers:
//!
//! ```text
//! cckvs-loadgen --servers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//!     --ops 100000 --sessions 4 --zipf 0.99 --write-ratio 0.05 \
//!     --model lin --install-hot 256
//! ```

use cckvs_net::client::{install_hot_set_via, BatchConfig, Client, SharedHistory};
use cckvs_net::metrics::Metrics;
use cckvs_net::transport::{TransportConfig, TransportKind};
use cckvs_net::LoadBalancePolicy;
use consistency::messages::ConsistencyModel;
use simnet::Histogram;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;
use workload::{AccessDistribution, Dataset, Mix, OpKind, WorkloadGen};

/// Per-connection latency record from a `--connections` run.
struct ConnStats {
    /// Global connection index.
    conn: usize,
    /// Server node the connection is pinned to.
    node: usize,
    /// Operations driven through the connection.
    ops: u64,
    p50_us: f64,
    p99_us: f64,
}

/// What one session thread reports back.
struct SessionOut {
    stats: Vec<ConnStats>,
    /// Dead connections successfully redialed by this session's clients.
    reconnects: u64,
    /// Transport failures per server node (summed over this session's
    /// clients).
    node_errors: Vec<u64>,
    /// Operations that failed (only non-zero under --tolerate-errors;
    /// without it the first failure aborts the run).
    op_errors: u64,
}

struct Args {
    servers: Vec<SocketAddr>,
    ops: u64,
    sessions: u32,
    zipf: f64,
    write_ratio: f64,
    keys: u64,
    value_size: usize,
    model: ConsistencyModel,
    install_hot: usize,
    batch: usize,
    connections: usize,
    check: bool,
    json: bool,
    shutdown: bool,
    tolerate_errors: bool,
    trace_every: u64,
    transport: TransportKind,
}

fn usage() -> ! {
    eprintln!(
        "usage: cckvs-loadgen --servers A,B,... [--ops N] [--sessions N] \
         [--zipf THETA|uniform] [--write-ratio F] [--keys N] [--value-size B] \
         [--model sc|lin] [--install-hot N] [--batch N] [--connections N] \
         [--no-check] [--json] [--shutdown] [--tolerate-errors] \
         [--trace-every N] [--transport tcp|udp]\n\
         --transport must match the deployment's fabric (cckvs-node\n\
         --transport; default tcp).\n\
         --trace-every N samples one in every N ops into the rack-wide\n\
         tracing subsystem (span events queryable via cckvs-trace; 0 = off).\n\
         --connections N opens N concurrent single-node client connections\n\
         (round-robin across servers and across connections per op; each\n\
         session thread drives its share) and reports per-connection\n\
         latency in --json output.\n\
         --tolerate-errors keeps driving when individual operations fail\n\
         (a node crashing and being restarted under traffic): failed ops\n\
         are counted, connections redial, and --json reports `errors`,\n\
         `reconnects` and per-node `node_errors` so orchestration harnesses\n\
         can assert recovery quantitatively."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        servers: Vec::new(),
        ops: 100_000,
        sessions: 4,
        zipf: 0.99,
        write_ratio: 0.05,
        keys: 100_000,
        value_size: 40,
        model: ConsistencyModel::Lin,
        install_hot: 256,
        batch: 1,
        connections: 0,
        check: true,
        json: false,
        shutdown: false,
        tolerate_errors: false,
        trace_every: 0,
        transport: TransportKind::Tcp,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--servers" => {
                args.servers = value("--servers")
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--ops" => args.ops = value("--ops").parse().unwrap_or_else(|_| usage()),
            "--sessions" => args.sessions = value("--sessions").parse().unwrap_or_else(|_| usage()),
            "--zipf" => {
                let v = value("--zipf");
                args.zipf = if v == "uniform" {
                    0.0
                } else {
                    v.parse().unwrap_or_else(|_| usage())
                }
            }
            "--write-ratio" => {
                args.write_ratio = value("--write-ratio").parse().unwrap_or_else(|_| usage())
            }
            "--keys" => args.keys = value("--keys").parse().unwrap_or_else(|_| usage()),
            "--value-size" => {
                args.value_size = value("--value-size").parse().unwrap_or_else(|_| usage())
            }
            "--model" => {
                args.model = match value("--model").as_str() {
                    "sc" => ConsistencyModel::Sc,
                    "lin" => ConsistencyModel::Lin,
                    _ => usage(),
                }
            }
            "--install-hot" => {
                args.install_hot = value("--install-hot").parse().unwrap_or_else(|_| usage())
            }
            "--batch" => args.batch = value("--batch").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                args.connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--trace-every" => {
                args.trace_every = value("--trace-every").parse().unwrap_or_else(|_| usage())
            }
            "--transport" => {
                args.transport = value("--transport").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--no-check" => args.check = false,
            "--json" => args.json = true,
            "--shutdown" => args.shutdown = true,
            "--tolerate-errors" => args.tolerate_errors = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.servers.is_empty() {
        eprintln!("--servers is required");
        usage();
    }
    if args.batch == 0 {
        eprintln!("--batch must be at least 1 (1 = unbatched)");
        usage();
    }
    assert!(args.value_size >= 8, "value size must hold the 8-byte tag");
    args
}

fn main() {
    // `--json` output gets piped; die quietly on a closed pipe instead
    // of panicking on the first print.
    reactor::reset_sigpipe();
    let args = parse_args();
    // Preflight: reach every node before spawning sessions, so an
    // unreachable deployment is one clean error instead of thread panics.
    let transport = TransportConfig {
        kind: args.transport,
        faults: None,
    };
    let mut admin = match Client::builder(&args.servers)
        .session(u32::MAX)
        .policy(LoadBalancePolicy::RoundRobin)
        .transport(transport)
        .connect()
    {
        Ok(admin) => admin,
        Err(e) => {
            eprintln!("cckvs-loadgen: cannot reach the deployment: {e}");
            std::process::exit(1);
        }
    };
    if args.shutdown {
        admin.shutdown_deployment().expect("send shutdown");
        eprintln!(
            "cckvs-loadgen: shutdown sent to {} nodes",
            args.servers.len()
        );
        return;
    }
    let alive = admin.ping_all();
    if alive != args.servers.len() {
        eprintln!(
            "cckvs-loadgen: only {alive} of {} nodes answered ping",
            args.servers.len()
        );
        std::process::exit(1);
    }
    drop(admin);

    let dataset = Dataset::new(args.keys, args.value_size);
    let distribution = if args.zipf > 0.0 {
        AccessDistribution::Zipfian {
            exponent: args.zipf,
        }
    } else {
        AccessDistribution::Uniform
    };

    // Install the hot set: the globally hottest ranks, as the coordinator
    // of §4 would publish them at epoch start.
    let install_hot = args.install_hot.min(args.keys as usize);
    if install_hot < args.install_hot {
        eprintln!(
            "cckvs-loadgen: clamping --install-hot {} to the {} dataset keys",
            args.install_hot, args.keys
        );
    }
    if install_hot > 0 {
        let entries = dataset.hot_entries(install_hot);
        if let Err(e) = install_hot_set_via(&*transport.build(), &args.servers, &entries) {
            eprintln!("cckvs-loadgen: hot-set install failed: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "cckvs-loadgen: installed {install_hot} hot keys on {} nodes",
            args.servers.len()
        );
    }

    let history = args.check.then(|| Arc::new(SharedHistory::new()));
    let metrics = Arc::new(Metrics::new());
    // `--connections N` opens N concurrent single-node client connections
    // (round-robin across servers); each session thread drives its share,
    // cycling ops round-robin across them, so N is bounded by fds, not by
    // driver threads. 0 = classic mode: one multiplexed client per session.
    if args.connections > 0 {
        let wanted = 2 * args.connections as u64 + 512;
        if let Ok(now) = reactor::raise_nofile_limit(wanted) {
            if now < wanted {
                eprintln!(
                    "cckvs-loadgen: fd limit {now} may be too low for {} connections",
                    args.connections
                );
            }
        }
    }
    let ops_per_session = args.ops / u64::from(args.sessions.max(1));
    let started = Instant::now();
    let handles: Vec<std::thread::JoinHandle<SessionOut>> = (0..args.sessions)
        .map(|session| {
            let servers = args.servers.clone();
            let history = history.clone();
            let metrics = Arc::clone(&metrics);
            let model = args.model;
            let value_size = args.value_size;
            let batch = args.batch;
            let connections = args.connections;
            let sessions = args.sessions;
            let tolerate = args.tolerate_errors;
            let trace_every = args.trace_every;
            let mut gen = WorkloadGen::new(
                &dataset,
                distribution,
                Mix::with_write_ratio(args.write_ratio),
                0xC11E_5EED ^ u64::from(session),
            );
            std::thread::spawn(move || {
                let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
                    eprintln!("cckvs-loadgen: session {session}: {what}: {e}");
                    std::process::exit(1);
                };
                let batching = BatchConfig {
                    max_ops: batch,
                    ..BatchConfig::default()
                };
                // This session's connections: global indexes i with
                // i % sessions == session. Each is one socket to one
                // server (node i % servers), its own checker session.
                let mut clients: Vec<(usize, Client, Histogram)> = if connections > 0 {
                    (0..connections)
                        .filter(|i| i % sessions as usize == session as usize)
                        .map(|i| {
                            let addr = servers[i % servers.len()];
                            let mut builder = Client::builder(&[addr])
                                // Sessions the admin preflight never uses.
                                .session(u32::try_from(i).expect("connection index fits"))
                                .policy(LoadBalancePolicy::Pinned(0))
                                .transport(transport)
                                .metrics(Arc::clone(&metrics))
                                .batching(batching)
                                .trace_sampling(trace_every);
                            if let Some(history) = &history {
                                builder = builder.history(Arc::clone(history));
                            }
                            let client = builder.connect().unwrap_or_else(|e| fail("connect", &e));
                            (i, client, Histogram::new())
                        })
                        .collect()
                } else {
                    // Classic mode: one client multiplexing every node.
                    // SC sessions stay sticky to one replica (per-session
                    // guarantee); Lin sessions spread (real-time
                    // guarantee).
                    let policy = match model {
                        ConsistencyModel::Sc => {
                            LoadBalancePolicy::Pinned(session as usize % servers.len())
                        }
                        ConsistencyModel::Lin => LoadBalancePolicy::RoundRobin,
                    };
                    let mut builder = Client::builder(&servers)
                        .session(session)
                        .policy(policy)
                        .transport(transport)
                        .metrics(Arc::clone(&metrics))
                        .batching(batching)
                        .trace_sampling(trace_every);
                    if let Some(history) = &history {
                        builder = builder.history(Arc::clone(history));
                    }
                    let client = builder.connect().unwrap_or_else(|e| fail("connect", &e));
                    vec![(usize::MAX, client, Histogram::new())]
                };
                if clients.is_empty() {
                    return SessionOut {
                        stats: Vec::new(),
                        reconnects: 0,
                        node_errors: vec![0; servers.len()],
                        op_errors: 0,
                    };
                }
                let mut op_errors = 0u64;
                for n in 0..ops_per_session {
                    let op = gen.next_op();
                    // Round-robin ops across this session's connections.
                    let slot = n as usize % clients.len();
                    let (_, client, latency) = &mut clients[slot];
                    let op_started = Instant::now();
                    // Batched sessions coalesce requests on the wire (the
                    // queue flushes itself at the --batch bound); batch=1
                    // is the classic one-frame-per-op path.
                    let result = if batch > 1 {
                        match op.kind {
                            OpKind::Get => client.queue_get(op.key.0),
                            OpKind::Put => {
                                client.queue_put(op.key.0, &op.value_bytes(session, value_size))
                            }
                        }
                    } else {
                        match op.kind {
                            OpKind::Get => client.get(op.key.0).map(|_| ()),
                            OpKind::Put => client
                                .put(op.key.0, &op.value_bytes(session, value_size))
                                .map(|_| ()),
                        }
                    };
                    if let Err(e) = result {
                        if !tolerate {
                            eprintln!(
                                "cckvs-loadgen: session {session}: {:?} of key {} failed: {e}",
                                op.kind, op.key.0
                            );
                            std::process::exit(1);
                        }
                        // A node died under us (and is presumably being
                        // restarted): count it and keep driving — the
                        // client redials lazily. A failed op was never
                        // acknowledged, so it carries no history
                        // obligation.
                        op_errors += 1;
                        if op_errors <= 3 {
                            eprintln!(
                                "cckvs-loadgen: session {session}: {:?} of key {} failed: {e} \
                                 (tolerated)",
                                op.kind, op.key.0
                            );
                        }
                    }
                    // Drain completed outcomes at every batch boundary
                    // (no wire traffic: the queue is empty right after a
                    // doorbell flush) — otherwise a long run retains one
                    // outcome per op for its whole duration.
                    if batch > 1 && client.queued() == 0 {
                        if let Err(e) = client.flush() {
                            if !tolerate {
                                fail("flush", &e);
                            }
                            op_errors += 1;
                        }
                    }
                    // Driver-side latency, attributed to the connection
                    // (includes client-side queueing under --batch).
                    latency.record(op_started.elapsed().as_nanos() as u64);
                }
                let mut stats = Vec::new();
                let mut reconnects = 0u64;
                let mut node_errors = vec![0u64; servers.len()];
                for (conn, mut client, mut latency) in clients {
                    if let Err(e) = client.flush() {
                        if !tolerate {
                            fail("final flush", &e);
                        }
                        op_errors += 1;
                    }
                    reconnects += client.reconnects();
                    if conn == usize::MAX {
                        // Classic mode: the client's error vector is
                        // already indexed by node id.
                        for (node, errs) in client.node_errors().iter().enumerate() {
                            node_errors[node] += errs;
                        }
                    } else {
                        // Connection mode: one single-node client.
                        node_errors[conn % servers.len()] += client.node_errors()[0];
                        stats.push(ConnStats {
                            conn,
                            node: conn % servers.len(),
                            ops: latency.count() as u64,
                            p50_us: latency.percentile(50.0) as f64 / 1_000.0,
                            p99_us: latency.percentile(99.0) as f64 / 1_000.0,
                        });
                    }
                }
                SessionOut {
                    stats,
                    reconnects,
                    node_errors,
                    op_errors,
                }
            })
        })
        .collect();
    let mut conn_stats: Vec<ConnStats> = Vec::new();
    let mut reconnects = 0u64;
    let mut op_errors = 0u64;
    let mut node_errors = vec![0u64; args.servers.len()];
    for handle in handles {
        let out = handle.join().expect("session thread");
        conn_stats.extend(out.stats);
        reconnects += out.reconnects;
        op_errors += out.op_errors;
        for (node, errs) in out.node_errors.iter().enumerate() {
            node_errors[node] += errs;
        }
    }
    conn_stats.sort_by_key(|s| s.conn);
    let elapsed = started.elapsed();

    let snap = metrics.snapshot();
    let total_ops = snap.gets + snap.puts;
    let secs = elapsed.as_secs_f64();
    // Human-readable report: stdout normally, stderr under --json (stdout
    // then carries exactly one machine-readable object).
    let report = |line: String| {
        if args.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    report(format!(
        "cckvs-loadgen: {} ops in {:.3}s ({:.0} ops/s)",
        total_ops,
        secs,
        total_ops as f64 / secs
    ));
    report(format!(
        "  gets {} | puts {} | hit rate {:.2}% | p50 {:.1}µs | p99 {:.1}µs{}",
        snap.gets,
        snap.puts,
        snap.hit_rate() * 100.0,
        snap.latency_p50_ns as f64 / 1_000.0,
        snap.latency_p99_ns as f64 / 1_000.0,
        if args.batch > 1 {
            format!(" | {} wire batches", snap.batches)
        } else {
            String::new()
        }
    ));
    if reconnects > 0 || op_errors > 0 {
        report(format!(
            "  {op_errors} failed ops | {reconnects} reconnects | per-node errors {node_errors:?}"
        ));
    }
    if !conn_stats.is_empty() {
        let mut p99s: Vec<f64> = conn_stats.iter().map(|s| s.p99_us).collect();
        p99s.sort_by(f64::total_cmp);
        report(format!(
            "  {} connections | per-conn p99 min {:.1}µs / median {:.1}µs / max {:.1}µs",
            conn_stats.len(),
            p99s.first().copied().unwrap_or(0.0),
            p99s.get(p99s.len() / 2).copied().unwrap_or(0.0),
            p99s.last().copied().unwrap_or(0.0),
        ));
    }

    let mut per_key_sc = None;
    let mut per_key_lin = None;
    if let Some(history) = history {
        let history = history.snapshot();
        report(format!("  recorded {} cached-key ops", history.len()));
        // The history checks are sound only when this run observed every
        // write to the cached keys — i.e. against a freshly booted rack.
        // Reads of values written by an earlier run look like violations.
        let warm_rack_hint = "note: checking assumes a fresh rack (all writes observed); \
             re-running against a warm deployment reports false violations — use --no-check there";
        match history.check_per_key_sc() {
            Ok(()) => {
                per_key_sc = Some(true);
                report("  per-key SC: OK".to_string());
            }
            Err(v) => {
                eprintln!("  per-key SC: VIOLATED: {v}\n  {warm_rack_hint}");
                std::process::exit(1);
            }
        }
        if args.model == ConsistencyModel::Lin {
            match history.check_per_key_lin() {
                Ok(()) => {
                    per_key_lin = Some(true);
                    report("  per-key Lin: OK".to_string());
                }
                Err(v) => {
                    eprintln!("  per-key Lin: VIOLATED: {v}\n  {warm_rack_hint}");
                    std::process::exit(1);
                }
            }
        }
    }

    if args.json {
        let mut extra = String::new();
        extra.push_str(&format!(
            ", \"errors\": {op_errors}, \"reconnects\": {reconnects}, \"node_errors\": [{}]",
            node_errors
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        if let Some(ok) = per_key_sc {
            extra.push_str(&format!(", \"per_key_sc\": {ok}"));
        }
        if let Some(ok) = per_key_lin {
            extra.push_str(&format!(", \"per_key_lin\": {ok}"));
        }
        if !conn_stats.is_empty() {
            extra.push_str(&format!(", \"connections\": {}", conn_stats.len()));
            extra.push_str(", \"per_connection\": [");
            for (i, s) in conn_stats.iter().enumerate() {
                extra.push_str(&format!(
                    "{}{{\"conn\": {}, \"node\": {}, \"ops\": {}, \"p50_us\": {:.1}, \
                     \"p99_us\": {:.1}}}",
                    if i > 0 { ", " } else { "" },
                    s.conn,
                    s.node,
                    s.ops,
                    s.p50_us,
                    s.p99_us
                ));
            }
            extra.push(']');
        }
        // Full driver-observed latency distribution: parallel arrays of
        // bucket upper edges (ns) and sample counts, zero buckets elided.
        // Consumers rebuild any percentile instead of settling for the two
        // we print.
        let hist = metrics.latency_histogram();
        let buckets = hist.nonzero_buckets();
        extra.push_str(&format!(
            ", \"latency_hist\": {{\"count\": {}, \"sum_ns\": {}, \"bucket_upper_ns\": [{}], \
             \"bucket_counts\": [{}]}}",
            hist.count,
            hist.sum,
            buckets
                .iter()
                .map(|(edge, _)| edge.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            buckets
                .iter()
                .map(|(_, n)| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        println!(
            "{{\"ops\": {}, \"secs\": {:.3}, \"ops_per_sec\": {:.0}, \"hit_rate\": {:.4}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"batch\": {}{}}}",
            total_ops,
            secs,
            total_ops as f64 / secs,
            snap.hit_rate(),
            snap.latency_p50_ns as f64 / 1_000.0,
            snap.latency_p99_ns as f64 / 1_000.0,
            hist.percentile(99.9) as f64 / 1_000.0,
            args.batch,
            extra
        );
    }
}
