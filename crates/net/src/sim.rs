//! Deterministic in-process transport over the `simnet` discrete-event
//! fabric.
//!
//! [`SimNet`] is a hub owning one [`simnet::EngineStepper`]: every
//! connection endpoint belongs to a fabric node, and every `write` on a
//! [`SimConnection`] becomes one *flight* — an undelivered datagram queued
//! as a discrete event, charged to the simulated rack's link/switch
//! resources. Nothing moves on its own: an external scheduler (the model
//! checker, a test) lists the flights and decides, per flight, whether it
//! is [delivered](SimNet::deliver), [dropped](SimNet::drop_flight) or
//! [duplicated](SimNet::duplicate), in any order it likes. That inversion
//! is the point — the interleavings a kernel TCP stack picks for you are
//! exactly the choices a model checker needs to own.
//!
//! The types implement the PR 8 transport seam
//! ([`Connection`]/[`TransportListener`]/[`Transport`]), so code written
//! against `Box<dyn Connection>` runs over the simulated fabric unchanged:
//! `read` returns `WouldBlock` when starved (nonblocking) or parks on a
//! condvar (blocking), `Ok(0)` after a clean peer close, `ConnectionReset`
//! after a [severed](SimNet::sever_node) peer; [`Connection::raw_fd`] is a
//! real eventfd kept readable exactly while the inbox is non-empty, so the
//! reactor's poller could drive a sim connection too.
//!
//! Determinism: the hub makes no scheduling choices, takes no wall-clock
//! readings and holds no randomness. Two drivers making the same choice
//! sequence observe byte-identical delivery orders and simulated times.

use crate::transport::{Connection, Transport, TransportKind, TransportListener};
use parking_lot::{Condvar, Mutex};
use reactor::{close_raw_fd, sys_eventfd, sys_eventfd_drain, sys_eventfd_signal};
use simnet::{
    Emit, Engine, EngineStepper, FabricConfig, NodeBehavior, Packet, SimStats, SimTime,
    TrafficClass,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::os::fd::RawFd;
use std::sync::Arc;
use std::time::Duration;

/// Flat per-datagram overhead charged to the fabric on top of the payload
/// (rough UDP/IP/Ethernet framing; the fabric only needs sizes that scale
/// with the payload, not protocol-exact headers).
const DATAGRAM_OVERHEAD_BYTES: u32 = 60;

/// A behaviour that just records which flights the fabric delivered to its
/// node; the hub drains it after every engine step and moves the payload
/// bytes into the destination endpoint's inbox. Behaviours never touch the
/// hub themselves (they run *under* the hub lock).
#[derive(Default)]
struct Mailbox {
    delivered: Vec<u64>,
}

impl NodeBehavior for Mailbox {
    fn on_start(&mut self, _now: SimTime) -> Vec<Emit> {
        Vec::new()
    }
    fn on_packet(&mut self, _now: SimTime, pkt: &Packet) -> Vec<Emit> {
        self.delivered.push(pkt.token);
        Vec::new()
    }
    fn on_timer(&mut self, _now: SimTime, _token: u64) -> Vec<Emit> {
        Vec::new()
    }
}

/// One half of an established sim connection.
struct Endpoint {
    node: usize,
    peer_ep: u64,
    inbox: VecDeque<u8>,
    /// This side still has live handles.
    local_open: bool,
    /// The peer side is still open (false ⇒ EOF or reset after drain).
    peer_open: bool,
    /// The peer went away abruptly (sever/crash) rather than closing.
    reset: bool,
    nonblocking: bool,
    read_timeout: Option<Duration>,
    efd: RawFd,
    local_addr: SocketAddr,
    peer_addr: SocketAddr,
    /// Live `SimConnection` handles (clones share the endpoint, like
    /// `TcpStream::try_clone`); the endpoint closes when this hits zero.
    handles: usize,
}

/// An undelivered datagram.
struct Flight {
    to_ep: u64,
    src: usize,
    dst: usize,
    bytes: Vec<u8>,
    class: TrafficClass,
}

/// A scheduler's view of one undelivered datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightInfo {
    /// Stable flight id (valid until delivered or dropped).
    pub id: u64,
    /// Sending fabric node.
    pub src: usize,
    /// Receiving fabric node.
    pub dst: usize,
    /// Destination endpoint id ([`SimConnection::endpoint_id`] of the
    /// receiving handle).
    pub to_ep: u64,
    /// Payload length in bytes.
    pub len: usize,
    /// Fabric delivery time if the scheduler delivers it next.
    pub time: SimTime,
}

struct PendingAccept {
    ep: u64,
}

struct ListenerState {
    node: usize,
    queue: VecDeque<PendingAccept>,
    efd: RawFd,
    open: bool,
}

struct Hub {
    stepper: EngineStepper<Mailbox>,
    endpoints: BTreeMap<u64, Endpoint>,
    listeners: BTreeMap<SocketAddr, ListenerState>,
    flights: BTreeMap<u64, Flight>,
    next_ep: u64,
    next_flight: u64,
    next_port: u16,
    nodes: usize,
}

impl Hub {
    fn alloc_addr(&mut self) -> SocketAddr {
        let port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(40_000);
        format!("127.0.0.1:{port}")
            .parse()
            .expect("synthesized addr")
    }

    /// Creates an endpoint pair between two nodes and returns their ids.
    fn make_pair(
        &mut self,
        a_node: usize,
        b_node: usize,
        a_addr: SocketAddr,
        b_addr: SocketAddr,
    ) -> (u64, u64) {
        let a_id = self.next_ep;
        let b_id = self.next_ep + 1;
        self.next_ep += 2;
        let a = Endpoint {
            node: a_node,
            peer_ep: b_id,
            inbox: VecDeque::new(),
            local_open: true,
            peer_open: true,
            reset: false,
            nonblocking: false,
            read_timeout: None,
            efd: sys_eventfd().expect("eventfd"),
            local_addr: a_addr,
            peer_addr: b_addr,
            handles: 1,
        };
        let b = Endpoint {
            node: b_node,
            peer_ep: a_id,
            inbox: VecDeque::new(),
            local_open: true,
            peer_open: true,
            reset: false,
            nonblocking: false,
            read_timeout: None,
            efd: sys_eventfd().expect("eventfd"),
            local_addr: b_addr,
            peer_addr: a_addr,
            handles: 1,
        };
        self.endpoints.insert(a_id, a);
        self.endpoints.insert(b_id, b);
        (a_id, b_id)
    }

    /// Queues `bytes` from endpoint `ep` toward its peer. Cross-node data
    /// becomes a schedulable flight on the fabric; same-node (loopback)
    /// data is appended to the peer inbox immediately — the fabric refuses
    /// local traffic, and a scheduler exploring interleavings keeps every
    /// interesting link cross-node anyway.
    fn send(&mut self, ep: u64, bytes: &[u8], class: TrafficClass) -> io::Result<Option<u64>> {
        let (src, peer_ep) = {
            let e = self
                .endpoints
                .get(&ep)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "endpoint gone"))?;
            if !e.peer_open {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "sim peer closed"));
            }
            (e.node, e.peer_ep)
        };
        let dst = match self.endpoints.get(&peer_ep) {
            Some(p) if p.local_open => p.node,
            _ => return Err(io::Error::new(io::ErrorKind::BrokenPipe, "sim peer closed")),
        };
        if src == dst {
            self.deposit(peer_ep, bytes);
            return Ok(None);
        }
        let id = self.next_flight;
        self.next_flight += 1;
        self.flights.insert(
            id,
            Flight {
                to_ep: peer_ep,
                src,
                dst,
                bytes: bytes.to_vec(),
                class,
            },
        );
        self.stepper.inject(
            src,
            vec![Emit::Send(Packet::single(
                src,
                dst,
                bytes.len() as u32 + DATAGRAM_OVERHEAD_BYTES,
                class,
                id,
            ))],
        );
        Ok(Some(id))
    }

    fn deposit(&mut self, ep: u64, bytes: &[u8]) {
        if let Some(e) = self.endpoints.get_mut(&ep) {
            if e.local_open {
                let was_empty = e.inbox.is_empty();
                e.inbox.extend(bytes);
                if was_empty && !e.inbox.is_empty() {
                    sys_eventfd_signal(e.efd);
                }
            }
        }
    }

    /// Moves every token the engine handed to the mailboxes into the
    /// owning endpoints' inboxes.
    fn drain_mailboxes(&mut self) {
        let mut tokens: Vec<u64> = Vec::new();
        for mb in self.stepper.behaviors_mut() {
            tokens.append(&mut mb.delivered);
        }
        for token in tokens {
            if let Some(flight) = self.flights.remove(&token) {
                self.deposit(flight.to_ep, &flight.bytes);
            }
        }
    }

    /// Finds the engine's queued event for flight `id`.
    fn event_of(&self, id: u64) -> Option<simnet::PendingEvent> {
        self.stepper
            .pending()
            .into_iter()
            .find(|ev| !ev.timer && ev.token == id)
    }

    fn release_handle(&mut self, ep: u64) {
        let (close, efd, peer_ep) = match self.endpoints.get_mut(&ep) {
            Some(e) => {
                e.handles = e.handles.saturating_sub(1);
                (e.handles == 0, e.efd, e.peer_ep)
            }
            None => return,
        };
        if !close {
            return;
        }
        if let Some(e) = self.endpoints.get_mut(&ep) {
            e.local_open = false;
        }
        close_raw_fd(efd);
        self.endpoints.remove(&ep);
        if let Some(p) = self.endpoints.get_mut(&peer_ep) {
            p.peer_open = false;
            // Wake blocked readers and poller watchers: EOF is readable.
            sys_eventfd_signal(p.efd);
        }
        // Data still in flight toward the closed endpoint can never land.
        let dead: Vec<u64> = self
            .flights
            .iter()
            .filter(|(_, f)| f.to_ep == ep)
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            if let Some(ev) = self.event_of(id) {
                self.stepper.discard(ev.id);
            }
            self.flights.remove(&id);
        }
    }
}

/// The deterministic in-process fabric hub. Cheap to clone (all clones
/// share the hub); see the [module docs](self) for the model.
#[derive(Clone)]
pub struct SimNet {
    hub: Arc<Mutex<Hub>>,
    cv: Arc<Condvar>,
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hub = self.hub.lock();
        f.debug_struct("SimNet")
            .field("nodes", &hub.nodes)
            .field("endpoints", &hub.endpoints.len())
            .field("flights", &hub.flights.len())
            .finish()
    }
}

impl SimNet {
    /// A hub over a simulated paper-shaped rack of `nodes` nodes.
    pub fn new(nodes: usize) -> SimNet {
        let behaviors = (0..nodes).map(|_| Mailbox::default()).collect();
        let mut stepper = Engine::new(behaviors, FabricConfig::paper_rack(nodes)).into_stepper();
        stepper.start();
        SimNet {
            hub: Arc::new(Mutex::new(Hub {
                stepper,
                endpoints: BTreeMap::new(),
                listeners: BTreeMap::new(),
                flights: BTreeMap::new(),
                next_ep: 1,
                next_flight: 1,
                next_port: 40_000,
                nodes,
            })),
            cv: Arc::new(Condvar::new()),
        }
    }

    /// The [`Transport`] handle for fabric node `node` (listeners and
    /// dialed connections made through it belong to that node).
    pub fn transport(&self, node: usize) -> SimTransport {
        let nodes = self.hub.lock().nodes;
        assert!(node < nodes, "node {node} out of range ({nodes} nodes)");
        SimTransport {
            net: self.clone(),
            node,
        }
    }

    /// Directly connects two nodes and returns the two connection halves
    /// (first belongs to `a`, second to `b`) — the convenience the model
    /// checker uses for its peer mesh, skipping listener plumbing. The
    /// trait path ([`Transport::listen`]/[`Transport::dial`]) is
    /// equivalent.
    pub fn pair(&self, a: usize, b: usize) -> (SimConnection, SimConnection) {
        let mut hub = self.hub.lock();
        assert!(a < hub.nodes && b < hub.nodes);
        let a_addr = hub.alloc_addr();
        let b_addr = hub.alloc_addr();
        let (ea, eb) = hub.make_pair(a, b, a_addr, b_addr);
        drop(hub);
        (
            SimConnection {
                net: self.clone(),
                ep: ea,
            },
            SimConnection {
                net: self.clone(),
                ep: eb,
            },
        )
    }

    /// Every undelivered datagram, in deterministic (delivery-time,
    /// creation) order.
    pub fn flights(&self) -> Vec<FlightInfo> {
        let hub = self.hub.lock();
        hub.stepper
            .pending()
            .into_iter()
            .filter(|ev| !ev.timer)
            .filter_map(|ev| {
                hub.flights.get(&ev.token).map(|f| FlightInfo {
                    id: ev.token,
                    src: f.src,
                    dst: f.dst,
                    to_ep: f.to_ep,
                    len: f.bytes.len(),
                    time: ev.time,
                })
            })
            .collect()
    }

    /// Delivers flight `id` now: the payload lands in the destination
    /// endpoint's inbox (or evaporates if that endpoint has closed) and
    /// simulated time advances max-monotonically to the flight's fabric
    /// delivery time. Returns whether the id was a live flight.
    pub fn deliver(&self, id: u64) -> bool {
        let mut hub = self.hub.lock();
        let Some(ev) = hub.event_of(id) else {
            return false;
        };
        hub.stepper.step(ev.id);
        hub.drain_mailboxes();
        drop(hub);
        self.cv.notify_all();
        true
    }

    /// Drops flight `id` (a lost datagram). Returns whether the id was a
    /// live flight.
    pub fn drop_flight(&self, id: u64) -> bool {
        let mut hub = self.hub.lock();
        let Some(ev) = hub.event_of(id) else {
            return false;
        };
        hub.stepper.discard(ev.id);
        hub.flights.remove(&id);
        true
    }

    /// Duplicates flight `id`: a second, independently schedulable copy of
    /// the same payload enters the fabric (charged again, like a real
    /// duplicate datagram). Returns the copy's flight id.
    pub fn duplicate(&self, id: u64) -> Option<u64> {
        let mut hub = self.hub.lock();
        hub.event_of(id)?;
        let (to_ep, src, dst, bytes, class) = {
            let f = hub.flights.get(&id)?;
            (f.to_ep, f.src, f.dst, f.bytes.clone(), f.class)
        };
        let copy = hub.next_flight;
        hub.next_flight += 1;
        hub.flights.insert(
            copy,
            Flight {
                to_ep,
                src,
                dst,
                bytes: bytes.clone(),
                class,
            },
        );
        hub.stepper.inject(
            src,
            vec![Emit::Send(Packet::single(
                src,
                dst,
                bytes.len() as u32 + DATAGRAM_OVERHEAD_BYTES,
                class,
                copy,
            ))],
        );
        Some(copy)
    }

    /// Abruptly kills fabric node `node` (a crash): every connection
    /// endpoint on it dies, peers observe `ConnectionReset` (after
    /// draining already-delivered bytes), every flight to or from the node
    /// evaporates, and its listeners stop accepting. The node index stays
    /// valid — a "restarted" process simply opens new connections.
    pub fn sever_node(&self, node: usize) {
        let mut hub = self.hub.lock();
        let dead_eps: Vec<u64> = hub
            .endpoints
            .iter()
            .filter(|(_, e)| e.node == node)
            .map(|(id, _)| *id)
            .collect();
        for ep in &dead_eps {
            let (efd, peer_ep) = {
                let e = &hub.endpoints[ep];
                (e.efd, e.peer_ep)
            };
            close_raw_fd(efd);
            hub.endpoints.remove(ep);
            if let Some(p) = hub.endpoints.get_mut(&peer_ep) {
                p.peer_open = false;
                p.reset = true;
                sys_eventfd_signal(p.efd);
            }
        }
        let dead_flights: Vec<u64> = hub
            .flights
            .iter()
            .filter(|(_, f)| f.src == node || f.dst == node)
            .map(|(id, _)| *id)
            .collect();
        for id in dead_flights {
            if let Some(ev) = hub.event_of(id) {
                hub.stepper.discard(ev.id);
            }
            hub.flights.remove(&id);
        }
        let dead_listeners: Vec<SocketAddr> = hub
            .listeners
            .iter()
            .filter(|(_, l)| l.node == node)
            .map(|(addr, _)| *addr)
            .collect();
        for addr in dead_listeners {
            if let Some(l) = hub.listeners.get_mut(&addr) {
                l.open = false;
            }
        }
        drop(hub);
        self.cv.notify_all();
    }

    /// Current simulated time (nanoseconds).
    pub fn now(&self) -> SimTime {
        self.hub.lock().stepper.now()
    }

    /// Reads the fabric accounting (per-class bytes/packets) under the
    /// hub lock.
    pub fn stats<R>(&self, f: impl FnOnce(&SimStats) -> R) -> R {
        let hub = self.hub.lock();
        f(hub.stepper.stats())
    }
}

/// One half of an established sim connection; see [`SimNet`].
pub struct SimConnection {
    net: SimNet,
    ep: u64,
}

impl SimConnection {
    /// The hub id of this endpoint (flights report their destination
    /// endpoint, letting a scheduler attribute datagrams to links).
    pub fn endpoint_id(&self) -> u64 {
        self.ep
    }

    /// This endpoint's synthesized local address (the peer's
    /// [`Connection::peer_addr`] view of it).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        let hub = self.net.hub.lock();
        hub.endpoints
            .get(&self.ep)
            .map(|e| e.local_addr)
            .ok_or_else(|| io::ErrorKind::NotConnected.into())
    }

    /// Like [`Write::write`], but tags the datagram with an explicit
    /// simnet traffic class so the fabric accounting mirrors the paper's
    /// traffic breakdown. Returns the flight id (`None` for loopback
    /// delivery, which bypasses the fabric).
    pub fn write_datagram(&self, bytes: &[u8], class: TrafficClass) -> io::Result<Option<u64>> {
        let mut hub = self.net.hub.lock();
        hub.send(self.ep, bytes, class)
    }
}

impl fmt::Debug for SimConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimConnection")
            .field("ep", &self.ep)
            .finish()
    }
}

impl Read for SimConnection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut hub = self.net.hub.lock();
        loop {
            let (nonblocking, timeout) = match hub.endpoints.get(&self.ep) {
                Some(e) => (e.nonblocking, e.read_timeout),
                None => return Err(io::ErrorKind::NotConnected.into()),
            };
            {
                let e = hub.endpoints.get_mut(&self.ep).expect("checked above");
                if !e.inbox.is_empty() {
                    let n = buf.len().min(e.inbox.len());
                    for slot in buf.iter_mut().take(n) {
                        *slot = e.inbox.pop_front().expect("len checked");
                    }
                    if e.inbox.is_empty() && e.peer_open {
                        sys_eventfd_drain(e.efd);
                    }
                    return Ok(n);
                }
                if !e.peer_open {
                    return if e.reset {
                        Err(io::ErrorKind::ConnectionReset.into())
                    } else {
                        Ok(0)
                    };
                }
            }
            if nonblocking {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            match timeout {
                Some(t) => {
                    if self.net.cv.wait_for(&mut hub, t) {
                        return Err(io::ErrorKind::WouldBlock.into());
                    }
                }
                None => self.net.cv.wait(&mut hub),
            }
        }
    }
}

impl Write for SimConnection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut hub = self.net.hub.lock();
        hub.send(self.ep, buf, TrafficClass::Update)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Connection for SimConnection {
    fn raw_fd(&self) -> RawFd {
        let hub = self.net.hub.lock();
        hub.endpoints.get(&self.ep).map(|e| e.efd).unwrap_or(-1)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        let mut hub = self.net.hub.lock();
        match hub.endpoints.get_mut(&self.ep) {
            Some(e) => {
                e.nonblocking = nonblocking;
                Ok(())
            }
            None => Err(io::ErrorKind::NotConnected.into()),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        let mut hub = self.net.hub.lock();
        match hub.endpoints.get_mut(&self.ep) {
            Some(e) => {
                e.read_timeout = timeout;
                Ok(())
            }
            None => Err(io::ErrorKind::NotConnected.into()),
        }
    }

    fn peer_addr(&self) -> io::Result<SocketAddr> {
        let hub = self.net.hub.lock();
        hub.endpoints
            .get(&self.ep)
            .map(|e| e.peer_addr)
            .ok_or_else(|| io::ErrorKind::NotConnected.into())
    }

    fn try_clone(&self) -> io::Result<Box<dyn Connection>> {
        let mut hub = self.net.hub.lock();
        match hub.endpoints.get_mut(&self.ep) {
            Some(e) => {
                e.handles += 1;
                Ok(Box::new(SimConnection {
                    net: self.net.clone(),
                    ep: self.ep,
                }))
            }
            None => Err(io::ErrorKind::NotConnected.into()),
        }
    }
}

impl Drop for SimConnection {
    fn drop(&mut self) {
        let mut hub = self.net.hub.lock();
        hub.release_handle(self.ep);
        drop(hub);
        self.net.cv.notify_all();
    }
}

/// A bound sim listener; see [`SimNet`].
pub struct SimListener {
    net: SimNet,
    addr: SocketAddr,
}

impl TransportListener for SimListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn Connection>>> {
        let mut hub = self.net.hub.lock();
        let (ep, drained) = match hub.listeners.get_mut(&self.addr) {
            Some(l) => match l.queue.pop_front() {
                Some(pending) => {
                    let drained = l.queue.is_empty();
                    (pending.ep, drained)
                }
                None => {
                    return if l.open {
                        Ok(None)
                    } else {
                        Err(io::ErrorKind::NotConnected.into())
                    }
                }
            },
            None => return Err(io::ErrorKind::NotConnected.into()),
        };
        if drained {
            let efd = hub.listeners[&self.addr].efd;
            sys_eventfd_drain(efd);
        }
        Ok(Some(Box::new(SimConnection {
            net: self.net.clone(),
            ep,
        })))
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }

    fn raw_fd(&self) -> RawFd {
        let hub = self.net.hub.lock();
        hub.listeners.get(&self.addr).map(|l| l.efd).unwrap_or(-1)
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        let mut hub = self.net.hub.lock();
        if let Some(l) = hub.listeners.remove(&self.addr) {
            close_raw_fd(l.efd);
            // Connections queued but never accepted close like a refused
            // dial: the dialer observes EOF.
            for pending in l.queue {
                hub.release_handle(pending.ep);
            }
        }
    }
}

/// The per-node [`Transport`] handle of a [`SimNet`].
#[derive(Clone)]
pub struct SimTransport {
    net: SimNet,
    node: usize,
}

impl fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimTransport")
            .field("node", &self.node)
            .finish()
    }
}

impl Transport for SimTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn listen(&self, addr: SocketAddr) -> io::Result<Box<dyn TransportListener>> {
        let mut hub = self.net.hub.lock();
        if hub.listeners.contains_key(&addr) {
            return Err(io::ErrorKind::AddrInUse.into());
        }
        hub.listeners.insert(
            addr,
            ListenerState {
                node: self.node,
                queue: VecDeque::new(),
                efd: sys_eventfd().expect("eventfd"),
                open: true,
            },
        );
        Ok(Box::new(SimListener {
            net: self.net.clone(),
            addr,
        }))
    }

    fn dial(&self, addr: SocketAddr, _timeout: Duration) -> io::Result<Box<dyn Connection>> {
        let mut hub = self.net.hub.lock();
        let acceptor_node = match hub.listeners.get(&addr) {
            Some(l) if l.open => l.node,
            _ => return Err(io::ErrorKind::ConnectionRefused.into()),
        };
        let dialer_addr = hub.alloc_addr();
        let (dial_ep, accept_ep) = hub.make_pair(self.node, acceptor_node, dialer_addr, addr);
        let listener = hub.listeners.get_mut(&addr).expect("checked above");
        let was_empty = listener.queue.is_empty();
        listener.queue.push_back(PendingAccept { ep: accept_ep });
        if was_empty {
            sys_eventfd_signal(listener.efd);
        }
        Ok(Box::new(SimConnection {
            net: self.net.clone(),
            ep: dial_ep,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Delivers every outstanding flight, oldest first, until quiescent.
    fn pump(net: &SimNet) {
        loop {
            let flights = net.flights();
            if flights.is_empty() {
                return;
            }
            for f in flights {
                net.deliver(f.id);
            }
        }
    }

    #[test]
    fn dial_accept_and_round_trip_through_the_trait() {
        let net = SimNet::new(2);
        let t0 = net.transport(0);
        let t1 = net.transport(1);
        let addr: SocketAddr = "127.0.0.1:9000".parse().unwrap();
        let mut listener = t1.listen(addr).unwrap();
        assert_eq!(t0.kind(), TransportKind::Sim);
        assert!(listener.accept().unwrap().is_none(), "no dial yet");

        let mut dialed = t0.dial(addr, Duration::from_secs(1)).unwrap();
        let mut accepted = listener.accept().unwrap().expect("queued dial");
        assert_eq!(dialed.peer_addr().unwrap(), addr);
        dialed.set_nonblocking(true).unwrap();
        accepted.set_nonblocking(true).unwrap();

        dialed.write_all(b"ping").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(
            accepted.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock,
            "nothing moves until the scheduler delivers"
        );
        assert_eq!(net.flights().len(), 1);
        pump(&net);
        assert_eq!(accepted.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");

        accepted.write_all(b"pong!").unwrap();
        pump(&net);
        assert_eq!(dialed.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"pong!");
        assert!(net.now() > 0, "fabric time advanced");
        assert!(dialed.raw_fd() >= 0);
    }

    #[test]
    fn scheduler_owns_drop_duplicate_and_order() {
        let net = SimNet::new(2);
        let (a, mut b) = net.pair(0, 1);
        b.set_nonblocking(true).unwrap();
        let f1 = a
            .write_datagram(b"first", TrafficClass::Invalidation)
            .unwrap()
            .unwrap();
        let f2 = a
            .write_datagram(b"second", TrafficClass::Ack)
            .unwrap()
            .unwrap();
        // Drop the first, duplicate the second, deliver the copy then the
        // original: the receiver sees "second" twice and "first" never.
        assert!(net.drop_flight(f1));
        let copy = net.duplicate(f2).unwrap();
        assert!(net.deliver(copy));
        assert!(net.deliver(f2));
        assert!(!net.deliver(f2), "already delivered");
        let mut buf = [0u8; 32];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"secondsecond");
        // The fabric accounting saw the invalidation and both ack copies.
        net.stats(|s| {
            assert!(s.bytes_by_class[&TrafficClass::Invalidation] > 0);
            assert!(
                s.bytes_by_class[&TrafficClass::Ack]
                    >= 2 * (5 + u64::from(DATAGRAM_OVERHEAD_BYTES))
            );
        });
    }

    #[test]
    fn clean_close_is_eof_and_sever_is_reset() {
        let net = SimNet::new(3);
        let (a, mut b) = net.pair(0, 1);
        let (c, mut d) = net.pair(2, 1);
        b.set_nonblocking(true).unwrap();
        d.set_nonblocking(true).unwrap();
        // Clean close: drain, then EOF.
        a.write_datagram(b"bye", TrafficClass::Update).unwrap();
        drop(a);
        pump(&net);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after clean close");
        // Sever: in-flight data evaporates, reads fail with reset.
        c.write_datagram(b"lost", TrafficClass::Update).unwrap();
        net.sever_node(2);
        assert!(net.flights().is_empty(), "flights to/from dead node gone");
        assert_eq!(
            d.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        // Writing toward the dead peer fails.
        assert!(d.write(b"x").is_err());
    }

    #[test]
    fn same_choices_same_world() {
        // Two hubs driven identically report identical flights, delivery
        // orders and simulated clocks.
        let run = || {
            let net = SimNet::new(3);
            let (a, mut b) = net.pair(0, 1);
            let (c, mut d) = net.pair(1, 2);
            b.set_nonblocking(true).unwrap();
            d.set_nonblocking(true).unwrap();
            let mut log = Vec::new();
            let f1 = a
                .write_datagram(b"one", TrafficClass::Invalidation)
                .unwrap()
                .unwrap();
            let f2 = c
                .write_datagram(b"two", TrafficClass::Update)
                .unwrap()
                .unwrap();
            for f in net.flights() {
                log.push(format!("{}:{}->{} t{}", f.id, f.src, f.dst, f.time));
            }
            net.deliver(f2);
            net.deliver(f1);
            let mut buf = [0u8; 8];
            let n = b.read(&mut buf).unwrap();
            log.push(format!("b<{}", String::from_utf8_lossy(&buf[..n])));
            let n = d.read(&mut buf).unwrap();
            log.push(format!("d<{}", String::from_utf8_lossy(&buf[..n])));
            log.push(format!("now {}", net.now()));
            log
        };
        assert_eq!(run(), run());
    }
}
