//! Peer-link failure and recovery, end to end — without killing a process.
//!
//! A TCP proxy sits on the A→B peer-link path of a live 2-node rack and
//! repeatedly severs the connection mid-traffic (mid-batch, with a tiny
//! credit window so the cut lands in every interesting flow-control
//! state). The serving layer must redial through the proxy, reset the
//! credit window via the cumulative-confirmation handshake, and replay
//! exactly the unprocessed tail: dropped invalidations would hang Lin
//! writers forever, double-delivered ones would double-count acks (masked
//! only by the per-node bitmask), and leaked window would stall the link
//! for good. The observable bar: every write completes, the recorded
//! history stays per-key SC + Lin, no acknowledged write is lost, and the
//! reconnect/replay counters prove the machinery actually ran.

use cckvs::node::NodeConfig;
use cckvs_net::client::{install_hot_set, Client, SharedHistory};
use cckvs_net::server::{FlowConfig, NodeServer, NodeServerConfig};
use cckvs_net::LoadBalancePolicy;
use consistency::messages::ConsistencyModel;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A byte-forwarding TCP proxy whose live connections can be severed on
/// demand — the network fault injector.
struct Proxy {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl Proxy {
    fn start(target: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let running = Arc::new(AtomicBool::new(true));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_running = Arc::clone(&running);
        let accept_conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            while accept_running.load(Ordering::SeqCst) {
                let Ok((client, _)) = listener.accept() else {
                    return;
                };
                let Ok(upstream) = TcpStream::connect(target) else {
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                {
                    let mut conns = accept_conns.lock().expect("proxy conns");
                    conns.push(client.try_clone().expect("clone"));
                    conns.push(upstream.try_clone().expect("clone"));
                }
                let (mut c2u_r, mut c2u_w) = (
                    client.try_clone().expect("clone"),
                    upstream.try_clone().expect("clone"),
                );
                std::thread::spawn(move || copy_until_error(&mut c2u_r, &mut c2u_w));
                let (mut u2c_r, mut u2c_w) = (upstream, client);
                std::thread::spawn(move || copy_until_error(&mut u2c_r, &mut u2c_w));
            }
        });
        Proxy {
            addr,
            running,
            conns,
        }
    }

    /// Severs every live proxied connection (both legs), wherever in a
    /// frame or batch the byte stream happens to be.
    fn sever_all(&self) -> usize {
        let mut conns = self.conns.lock().expect("proxy conns");
        let severed = conns.len() / 2;
        for conn in conns.drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        severed
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        self.sever_all();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

fn copy_until_error(from: &mut TcpStream, to: &mut TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    let _ = from.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
    }
}

/// The acceptance test for the reconnect satellite: a peer link severed
/// mid-batch resets the credit window on redial and never double-delivers
/// or drops an invalidation.
#[test]
fn severed_peer_link_replays_exactly_once_and_resets_the_window() {
    const SESSIONS: u32 = 3;
    const HOT_KEYS: u64 = 32;
    const SEVER_ROUNDS: usize = 8;

    let node_cfg = |node: usize| NodeConfig {
        model: ConsistencyModel::Lin,
        node,
        nodes: 2,
        cache_capacity: 128,
        kvs_capacity: 4096,
        value_capacity: 32,
        kvs_threads: cckvs::node::DEFAULT_KVS_THREADS,
    };
    // Tiny credit window: severs land while the window is part-consumed,
    // part-confirmed, and often mid-batch.
    let flow = FlowConfig {
        credit_window: 4,
        peer_batch_ops: 4,
        ..FlowConfig::default()
    };
    let mut cfg_a = NodeServerConfig::loopback(node_cfg(0));
    cfg_a.flow = flow;
    cfg_a.metrics_listen = None;
    let mut cfg_b = NodeServerConfig::loopback(node_cfg(1));
    cfg_b.flow = flow;
    cfg_b.metrics_listen = None;
    let mut server_a = NodeServer::start(cfg_a).expect("start A");
    let mut server_b = NodeServer::start(cfg_b).expect("start B");
    let addr_a = server_a.addr();
    let addr_b = server_b.addr();
    // A reaches B only through the proxy (peer link AND miss-path RPCs);
    // every other path is direct.
    let proxy = Proxy::start(addr_b);
    server_a
        .connect_peers(&[addr_a, proxy.addr], Duration::from_secs(5))
        .expect("wire A");
    server_b
        .connect_peers(&[addr_a, addr_b], Duration::from_secs(5))
        .expect("wire B");

    let addrs = vec![addr_a, addr_b];
    let entries: Vec<(u64, Vec<u8>)> = (0..HOT_KEYS).map(|k| (k, vec![0u8; 16])).collect();
    install_hot_set(&addrs, &entries).expect("install hot set");

    let history = Arc::new(SharedHistory::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let addrs = addrs.clone();
            let history = Arc::clone(&history);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::builder(&addrs)
                    .session(session)
                    .policy(LoadBalancePolicy::RoundRobin)
                    .history(history)
                    .connect()
                    .expect("connect");
                let mut last_written: HashMap<u64, Vec<u8>> = HashMap::new();
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    // Write-partitioned hot keys so "last acknowledged
                    // write" is well defined; interleaved reads keep the
                    // checker honest.
                    let key = (seq * u64::from(SESSIONS) + u64::from(session)) % HOT_KEYS;
                    let mut value = Vec::with_capacity(16);
                    value.extend_from_slice(&session.to_le_bytes());
                    value.extend_from_slice(&seq.to_le_bytes());
                    client.put(key, &value).expect("put under link chaos");
                    last_written.insert(key, value);
                    client.get(seq % HOT_KEYS).expect("get under link chaos");
                }
                last_written
            })
        })
        .collect();

    // Sever the A→B link repeatedly while the writers hammer the rack.
    let mut severed_total = 0;
    for _ in 0..SEVER_ROUNDS {
        std::thread::sleep(Duration::from_millis(60));
        severed_total += proxy.sever_all();
    }
    assert!(severed_total > 0, "the proxy never had a link to sever");
    // Let the last reconnect settle under traffic, then stop.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    for writer in writers {
        expected.extend(writer.join().expect("writer survived link chaos"));
    }
    assert!(!expected.is_empty(), "writers made no progress");

    // The recovery machinery demonstrably ran.
    let snap_a = server_a.metrics().snapshot();
    assert!(
        snap_a.peer_reconnects >= 1,
        "A never redialed: {} reconnects",
        snap_a.peer_reconnects
    );

    // Window-leak probe: after the final recovery, far more messages than
    // the window must flow A→B. A leaked (unreset) window would stall the
    // pump forever and hang these writes.
    let mut prober =
        Client::connect(&addrs, SESSIONS + 1, LoadBalancePolicy::Pinned(0)).expect("connect");
    let started = Instant::now();
    for seq in 0..100u64 {
        let key = seq % HOT_KEYS;
        prober
            .put(key, &seq.to_le_bytes())
            .expect("post-recovery write");
        expected.insert(key, seq.to_le_bytes().to_vec());
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "post-recovery burst took suspiciously long (leaked credit window?)"
    );

    // No acknowledged write was lost, wherever it lives now.
    let mut sweeper =
        Client::connect(&addrs, SESSIONS + 2, LoadBalancePolicy::RoundRobin).expect("connect");
    for (&key, value) in &expected {
        assert_eq!(
            &sweeper.get(key).expect("sweep get"),
            value,
            "key {key} lost its last acknowledged write across link severs"
        );
    }

    // And everything the clients observed was consistent throughout.
    let history = history.snapshot();
    assert!(history.len() > 100, "too few operations recorded");
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated across link severs: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated across link severs: {v}"));

    server_a.shutdown();
    server_b.shutdown();
}

/// The acceptance test for the correlated miss-RPC satellite: cold-key
/// operations from A against keys homed at B travel as correlated
/// request/response frames on the same crash-surviving peer link as the
/// coherence traffic. Severing that link mid-RPC must resolve every
/// in-flight RPC exactly once — the unacked tail (request possibly already
/// served at B) is replayed on redial, B may serve it twice, and the
/// duplicate response's correlation id no longer resolves at A. The
/// observable bar: every cold op completes with its correct value, the
/// history stays per-key SC + Lin, and the pending-RPC table drains to
/// zero.
#[test]
fn correlated_miss_rpcs_survive_link_severs_exactly_once() {
    const SESSIONS: u32 = 3;
    const HOT_KEYS: u64 = 8;
    const COLD_KEYS_PER_SESSION: usize = 8;
    const SEVER_ROUNDS: usize = 8;

    let node_cfg = |node: usize| NodeConfig {
        model: ConsistencyModel::Lin,
        node,
        nodes: 2,
        cache_capacity: 64,
        kvs_capacity: 4096,
        value_capacity: 32,
        kvs_threads: cckvs::node::DEFAULT_KVS_THREADS,
    };
    // Tiny credit window again: the peer link severs while part-consumed,
    // so RPC sub-frames land in every flow-control state.
    let flow = FlowConfig {
        credit_window: 4,
        peer_batch_ops: 4,
        ..FlowConfig::default()
    };
    let mut cfg_a = NodeServerConfig::loopback(node_cfg(0));
    cfg_a.flow = flow;
    cfg_a.metrics_listen = None;
    let mut cfg_b = NodeServerConfig::loopback(node_cfg(1));
    cfg_b.flow = flow;
    cfg_b.metrics_listen = None;
    let mut server_a = NodeServer::start(cfg_a).expect("start A");
    let mut server_b = NodeServer::start(cfg_b).expect("start B");
    let addr_a = server_a.addr();
    let addr_b = server_b.addr();
    // A reaches B only through the proxy — miss-path RPCs ride the same
    // peer link as invalidations, so severing it cuts both.
    let proxy = Proxy::start(addr_b);
    server_a
        .connect_peers(&[addr_a, proxy.addr], Duration::from_secs(5))
        .expect("wire A");
    server_b
        .connect_peers(&[addr_a, addr_b], Duration::from_secs(5))
        .expect("wire B");

    let addrs = vec![addr_a, addr_b];
    let entries: Vec<(u64, Vec<u8>)> = (0..HOT_KEYS).map(|k| (k, vec![0u8; 16])).collect();
    install_hot_set(&addrs, &entries).expect("install hot set");

    // Cold keys homed at B, partitioned per writer session so "last
    // acknowledged write" is well defined per key.
    let cold: Vec<u64> = (HOT_KEYS..)
        .filter(|&k| server_a.node().home_node(k) == 1)
        .take(COLD_KEYS_PER_SESSION * SESSIONS as usize)
        .collect();

    let history = Arc::new(SharedHistory::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let history = Arc::clone(&history);
            let stop = Arc::clone(&stop);
            let addrs = addrs.clone();
            let mine: Vec<u64> = cold
                .iter()
                .skip(session as usize * COLD_KEYS_PER_SESSION)
                .take(COLD_KEYS_PER_SESSION)
                .copied()
                .collect();
            std::thread::spawn(move || {
                // Pinned to A: every op on these B-homed keys is a
                // correlated RPC across the severed link.
                let mut client = Client::builder(&addrs)
                    .session(session)
                    .policy(LoadBalancePolicy::Pinned(0))
                    .history(history)
                    .connect()
                    .expect("connect");
                let mut last_written: HashMap<u64, Vec<u8>> = HashMap::new();
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    let key = mine[(seq as usize) % mine.len()];
                    let mut value = Vec::with_capacity(16);
                    value.extend_from_slice(&session.to_le_bytes());
                    value.extend_from_slice(&seq.to_le_bytes());
                    client.put(key, &value).expect("cold put under link chaos");
                    last_written.insert(key, value.clone());
                    // Read-your-write through the miss path: cold ops
                    // serialize at the home shard, and this key has a
                    // single writer.
                    let read = client.get(key).expect("cold get under link chaos");
                    assert_eq!(
                        read, value,
                        "cold key {key} lost or reordered its own write mid-sever"
                    );
                }
                last_written
            })
        })
        .collect();

    // Sever the A→B link repeatedly while every in-flight op is an RPC.
    let mut severed_total = 0;
    for _ in 0..SEVER_ROUNDS {
        std::thread::sleep(Duration::from_millis(60));
        severed_total += proxy.sever_all();
    }
    assert!(severed_total > 0, "the proxy never had a link to sever");
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    for writer in writers {
        expected.extend(writer.join().expect("writer survived link chaos"));
    }
    assert!(!expected.is_empty(), "writers made no progress");

    let snap_a = server_a.metrics().snapshot();
    assert!(
        snap_a.peer_reconnects >= 1,
        "A never redialed: {} reconnects",
        snap_a.peer_reconnects
    );
    // Exactly-once resolution: every writer got exactly one response per
    // op (a duplicate response would desync the synchronous client and
    // fail the asserts above), and nothing is left in flight.
    assert_eq!(
        snap_a.pending_rpcs, 0,
        "pending-RPC table did not drain: {} entries stranded",
        snap_a.pending_rpcs
    );

    // No acknowledged cold write was lost — sweep through the same
    // RPC path and directly at the home node.
    for (probe, policy) in [
        (0usize, LoadBalancePolicy::Pinned(0)),
        (1, LoadBalancePolicy::Pinned(1)),
    ] {
        let mut sweeper =
            Client::connect(&addrs, SESSIONS + 1 + probe as u32, policy).expect("connect sweeper");
        for (&key, value) in &expected {
            assert_eq!(
                &sweeper.get(key).expect("sweep get"),
                value,
                "cold key {key} lost its last acknowledged write (probe via node {probe})"
            );
        }
    }

    let history = history.snapshot();
    assert!(history.len() > 50, "too few operations recorded");
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated across RPC severs: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated across RPC severs: {v}"));

    server_a.shutdown();
    server_b.shutdown();
}
