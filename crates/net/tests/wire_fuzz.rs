//! Property tests of the wire protocol: round trips for the churn frames
//! (`WriteBack`, the hot-transition epoch admin frames, versioned installs)
//! and the coalescing frames (`Batch`, `Credit`), and decode robustness
//! against arbitrary, truncated, corrupted and maliciously nested bytes —
//! a peer can send anything, the decoder must answer with an error, never
//! a panic.

use cckvs_net::wire::{Frame, WireError};
use consistency::lamport::{NodeId, Timestamp};
use proptest::prelude::*;

fn ts_of(clock: u32, writer: u8) -> Timestamp {
    Timestamp::new(clock, NodeId(writer))
}

fn assert_roundtrip(frame: Frame) {
    let encoded = frame.encode();
    assert_eq!(Frame::decode(&encoded), Ok(frame));
}

/// Every strict prefix of a well-formed frame must fail to decode: inner
/// length prefixes and the trailing-bytes check make truncation at *any*
/// offset detectable.
fn assert_prefixes_rejected(frame: &Frame) {
    let encoded = frame.encode();
    for cut in 0..encoded.len() {
        assert!(
            Frame::decode(&encoded[..cut]).is_err(),
            "truncation of {frame:?} to {cut}/{} bytes decoded cleanly",
            encoded.len()
        );
    }
}

proptest! {
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..192)) {
        // Any result is fine; reaching it without a panic is the property.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn write_back_roundtrips_and_rejects_truncation(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
        applied in any::<bool>(),
    ) {
        let frame = Frame::WriteBack { key, value, ts: ts_of(clock, writer) };
        assert_prefixes_rejected(&frame);
        assert_roundtrip(frame);
        assert_roundtrip(Frame::WriteBackResp { applied });
    }

    #[test]
    fn hot_transition_frames_roundtrip(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
    ) {
        let ts = ts_of(clock, writer);
        assert_roundtrip(Frame::HotMark { key });
        let resp = Frame::HotMarkResp { value, ts };
        assert_prefixes_rejected(&resp);
        assert_roundtrip(resp);
        assert_roundtrip(Frame::HotUnmark { key });
        assert_roundtrip(Frame::HotUnmarkResp);
        assert_roundtrip(Frame::MissRetry);
        assert_roundtrip(Frame::MissPutResp { ts });
    }

    #[test]
    fn versioned_install_and_flip_frames_roundtrip(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
        epoch in any::<u64>(),
        installed in any::<u32>(),
        evicted in any::<u32>(),
        warm in any::<bool>(),
    ) {
        let install = Frame::InstallHot { key, value, ts: ts_of(clock, writer), warm };
        assert_prefixes_rejected(&install);
        assert_roundtrip(install);
        assert_roundtrip(Frame::ActivateHot { key });
        assert_roundtrip(Frame::ActivateHotResp { ok: warm });
        assert_roundtrip(Frame::FlipEpoch);
        let resp = Frame::FlipEpochResp { epoch, installed, evicted };
        assert_prefixes_rejected(&resp);
        assert_roundtrip(resp);
    }

    #[test]
    fn batch_frames_roundtrip_and_reject_truncation(
        keys in prop::collection::vec(any::<u64>(), 0..8),
        value in prop::collection::vec(any::<u8>(), 0..48),
        credits in any::<u32>(),
    ) {
        let mut frames: Vec<Frame> = keys.iter().map(|&key| Frame::Get { key }).collect();
        frames.push(Frame::Put { key: 1, value });
        frames.push(Frame::Credit { cum: u64::from(credits), gen: 7 });
        let batch = Frame::Batch { frames };
        assert_prefixes_rejected(&batch);
        assert_roundtrip(batch);
        assert_roundtrip(Frame::Credit { cum: u64::from(credits), gen: 7 });
    }

    #[test]
    fn corrupting_any_byte_of_a_batch_never_panics(
        keys in prop::collection::vec(any::<u64>(), 1..6),
        corrupt_at in any::<usize>(),
        corrupt_to in any::<u8>(),
    ) {
        let frames: Vec<Frame> = keys.iter().map(|&key| Frame::Get { key }).collect();
        let mut encoded = Frame::Batch { frames }.encode();
        let at = corrupt_at % encoded.len();
        encoded[at] = corrupt_to;
        // Any verdict is fine (the corruption may even be a no-op or yield
        // a different valid frame); reaching it without a panic is the
        // property.
        let _ = Frame::decode(&encoded);
    }

    #[test]
    fn nested_batches_are_rejected_not_recursed(depth in 2usize..20) {
        // Hand-build `depth` levels of batch nesting (encode() refuses to;
        // a hostile peer would not). The decoder must reject at the first
        // nested level rather than recurse to the bottom.
        let mut payload = Frame::Ping.encode();
        for _ in 0..depth {
            let mut outer = vec![0x60]; // opcode::BATCH
            outer.extend_from_slice(&1u32.to_le_bytes());
            outer.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            outer.extend_from_slice(&payload);
            payload = outer;
        }
        prop_assert_eq!(Frame::decode(&payload), Err(WireError::NestedBatch));
    }

    #[test]
    fn oversized_inner_length_prefixes_are_rejected(key in any::<u64>()) {
        // Hand-craft a WriteBack whose value-length field claims more bytes
        // than the payload carries.
        let mut bytes = Frame::WriteBack { key, value: vec![1, 2, 3], ts: ts_of(1, 0) }.encode();
        let len_at = bytes.len() - 3 - 4;
        bytes[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        prop_assert_eq!(Frame::decode(&bytes), Err(WireError::Oversized(u32::MAX as usize)));
    }
}
