//! Property tests of the wire protocol: round trips for the churn frames
//! (`WriteBack`, the hot-transition epoch admin frames, versioned installs)
//! and the coalescing frames (`Batch`, `Credit`), and decode robustness
//! against arbitrary, truncated, corrupted and maliciously nested bytes —
//! a peer can send anything, the decoder must answer with an error, never
//! a panic.
//!
//! The datagram block at the bottom pushes the same hostility one layer
//! down: raw UDP garbage against a live listener, and duplicate/reorder
//! fault plans against an established connection — frames must come out
//! exactly once, in order, or not at all.

use cckvs_net::transport::{Connection, FaultPlan, TransportConfig};
use cckvs_net::wire::{read_frame, write_frame, Frame, WireError, MAX_DATAGRAM_BYTES};
use consistency::lamport::{NodeId, Timestamp};
use proptest::prelude::*;
use std::io::{BufReader, BufWriter, Write};
use std::time::{Duration, Instant};

fn ts_of(clock: u32, writer: u8) -> Timestamp {
    Timestamp::new(clock, NodeId(writer))
}

fn assert_roundtrip(frame: Frame) {
    let encoded = frame.encode();
    assert_eq!(Frame::decode(&encoded), Ok(frame));
}

/// Every strict prefix of a well-formed frame must fail to decode: inner
/// length prefixes and the trailing-bytes check make truncation at *any*
/// offset detectable.
fn assert_prefixes_rejected(frame: &Frame) {
    let encoded = frame.encode();
    for cut in 0..encoded.len() {
        assert!(
            Frame::decode(&encoded[..cut]).is_err(),
            "truncation of {frame:?} to {cut}/{} bytes decoded cleanly",
            encoded.len()
        );
    }
}

proptest! {
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..192)) {
        // Any result is fine; reaching it without a panic is the property.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn write_back_roundtrips_and_rejects_truncation(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
        applied in any::<bool>(),
    ) {
        let frame = Frame::WriteBack { key, value, ts: ts_of(clock, writer) };
        assert_prefixes_rejected(&frame);
        assert_roundtrip(frame);
        assert_roundtrip(Frame::WriteBackResp { applied });
    }

    #[test]
    fn hot_transition_frames_roundtrip(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
    ) {
        let ts = ts_of(clock, writer);
        assert_roundtrip(Frame::HotMark { key });
        let resp = Frame::HotMarkResp { value, ts };
        assert_prefixes_rejected(&resp);
        assert_roundtrip(resp);
        assert_roundtrip(Frame::HotUnmark { key });
        assert_roundtrip(Frame::HotUnmarkResp);
        assert_roundtrip(Frame::MissRetry);
        assert_roundtrip(Frame::MissPutResp { ts });
    }

    #[test]
    fn versioned_install_and_flip_frames_roundtrip(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
        epoch in any::<u64>(),
        installed in any::<u32>(),
        evicted in any::<u32>(),
        warm in any::<bool>(),
    ) {
        let install = Frame::InstallHot { key, value, ts: ts_of(clock, writer), warm };
        assert_prefixes_rejected(&install);
        assert_roundtrip(install);
        assert_roundtrip(Frame::ActivateHot { key });
        assert_roundtrip(Frame::ActivateHotResp { ok: warm });
        assert_roundtrip(Frame::FlipEpoch);
        let resp = Frame::FlipEpochResp { epoch, installed, evicted };
        assert_prefixes_rejected(&resp);
        assert_roundtrip(resp);
    }

    #[test]
    fn batch_frames_roundtrip_and_reject_truncation(
        keys in prop::collection::vec(any::<u64>(), 0..8),
        value in prop::collection::vec(any::<u8>(), 0..48),
        credits in any::<u32>(),
    ) {
        let mut frames: Vec<Frame> = keys.iter().map(|&key| Frame::Get { key }).collect();
        frames.push(Frame::Put { key: 1, value });
        frames.push(Frame::Credit { cum: u64::from(credits), gen: 7 });
        let batch = Frame::Batch { frames };
        assert_prefixes_rejected(&batch);
        assert_roundtrip(batch);
        assert_roundtrip(Frame::Credit { cum: u64::from(credits), gen: 7 });
    }

    #[test]
    fn corrupting_any_byte_of_a_batch_never_panics(
        keys in prop::collection::vec(any::<u64>(), 1..6),
        corrupt_at in any::<usize>(),
        corrupt_to in any::<u8>(),
    ) {
        let frames: Vec<Frame> = keys.iter().map(|&key| Frame::Get { key }).collect();
        let mut encoded = Frame::Batch { frames }.encode();
        let at = corrupt_at % encoded.len();
        encoded[at] = corrupt_to;
        // Any verdict is fine (the corruption may even be a no-op or yield
        // a different valid frame); reaching it without a panic is the
        // property.
        let _ = Frame::decode(&encoded);
    }

    #[test]
    fn nested_batches_are_rejected_not_recursed(depth in 2usize..20) {
        // Hand-build `depth` levels of batch nesting (encode() refuses to;
        // a hostile peer would not). The decoder must reject at the first
        // nested level rather than recurse to the bottom.
        let mut payload = Frame::Ping.encode();
        for _ in 0..depth {
            let mut outer = vec![0x60]; // opcode::BATCH
            outer.extend_from_slice(&1u32.to_le_bytes());
            outer.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            outer.extend_from_slice(&payload);
            payload = outer;
        }
        prop_assert_eq!(Frame::decode(&payload), Err(WireError::NestedBatch));
    }

    #[test]
    fn oversized_inner_length_prefixes_are_rejected(key in any::<u64>()) {
        // Hand-craft a WriteBack whose value-length field claims more bytes
        // than the payload carries.
        let mut bytes = Frame::WriteBack { key, value: vec![1, 2, 3], ts: ts_of(1, 0) }.encode();
        let len_at = bytes.len() - 3 - 4;
        bytes[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        prop_assert_eq!(Frame::decode(&bytes), Err(WireError::Oversized(u32::MAX as usize)));
    }
}

/// Dials and accepts one connection over `cfg`'s fabric.
fn connected_pair(cfg: TransportConfig) -> (Box<dyn Connection>, Box<dyn Connection>) {
    let transport = cfg.build();
    let mut listener = transport
        .listen("127.0.0.1:0".parse().expect("static addr"))
        .expect("listen");
    let addr = listener.local_addr().expect("local addr");
    let dialer = std::thread::spawn(move || transport.dial(addr, Duration::from_secs(5)));
    let deadline = Instant::now() + Duration::from_secs(5);
    let accepted = loop {
        if let Some(conn) = listener.accept().expect("accept") {
            break conn;
        }
        assert!(Instant::now() < deadline, "accept timed out");
        std::thread::sleep(Duration::from_millis(1));
    };
    (dialer.join().expect("dial thread").expect("dial"), accepted)
}

proptest! {
    // Each case binds real sockets; a handful of cases is plenty.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Garbage datagrams against a live UDP listener — empty, truncated
    /// headers, and arbitrary bytes — must be ignored, not crash or wedge
    /// it: a real handshake afterwards still completes and serves frames.
    #[test]
    fn hostile_datagrams_never_wedge_the_udp_listener(
        garbage in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..96), 1..12),
    ) {
        let transport = TransportConfig::udp().build();
        let mut listener = transport
            .listen("127.0.0.1:0".parse().expect("static addr"))
            .expect("listen");
        let addr = listener.local_addr().expect("local addr");

        let gun = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind gun");
        // Truncated versions of every header shape the protocol knows,
        // then the arbitrary payloads.
        for ty in 1u8..=5 {
            gun.send_to(&[ty], addr).expect("send truncated");
            gun.send_to(&[ty, 0xEE, 0xEE], addr).expect("send truncated");
        }
        gun.send_to(&[], addr).expect("send empty");
        for dg in &garbage {
            gun.send_to(dg, addr).expect("send garbage");
        }

        let dialer = std::thread::spawn(move || transport.dial(addr, Duration::from_secs(5)));
        let deadline = Instant::now() + Duration::from_secs(5);
        let server = loop {
            if let Some(conn) = listener.accept().expect("accept") {
                break conn;
            }
            prop_assert!(Instant::now() < deadline, "accept wedged by garbage");
            std::thread::sleep(Duration::from_millis(1));
        };
        let client = dialer.join().expect("dial thread").expect("dial");
        server.set_nonblocking(false).expect("blocking");
        server
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut writer = BufWriter::new(client);
        write_frame(&mut writer, &Frame::Ping).expect("write");
        writer.flush().expect("flush");
        let mut reader = BufReader::new(server);
        prop_assert_eq!(read_frame(&mut reader).expect("read"), Some(Frame::Ping));
    }

    /// Duplicated, reordered, and dropped datagrams: every frame written
    /// is read exactly once, in order, and the FIN still surfaces as a
    /// clean EOF — the replay layer dedups by sequence number, so a
    /// duplicate can never double-deliver.
    #[test]
    fn dup_reorder_fault_plans_deliver_frames_exactly_once(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..16),
        drop_pct in 0u8..10,
        dup_pct in 0u8..30,
        reorder_pct in 0u8..30,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan { drop_pct, dup_pct, reorder_pct, seed };
        let (client, server) = connected_pair(TransportConfig::udp_with_faults(plan));
        server.set_nonblocking(false).expect("blocking");
        server
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");

        let frames: Vec<Frame> = payloads
            .iter()
            .enumerate()
            .map(|(i, value)| Frame::Put { key: i as u64, value: value.clone() })
            .collect();
        let writer_frames = frames.clone();
        let writer = std::thread::spawn(move || {
            let mut writer = BufWriter::new(client);
            for frame in &writer_frames {
                write_frame(&mut writer, frame).expect("write");
            }
            writer.flush().expect("flush");
            // Dropping the connection sends FIN; the transport lingers to
            // retransmit the tail until it is acked.
        });
        let mut reader = BufReader::new(server);
        for expected in &frames {
            let got = read_frame(&mut reader).expect("read");
            prop_assert_eq!(got.as_ref(), Some(expected), "frame lost or reordered");
        }
        prop_assert_eq!(read_frame(&mut reader).expect("read eof"), None, "extra frame after FIN");
        writer.join().expect("writer thread");
    }
}

/// A frame bigger than one datagram spans several; 10% uniform faults on
/// every one of them must not tear, truncate, or duplicate it.
#[test]
fn multi_datagram_frames_survive_uniform_faults() {
    let plan = FaultPlan::uniform(10, 0xFA_B71C);
    let (client, server) = connected_pair(TransportConfig::udp_with_faults(plan));
    server.set_nonblocking(false).expect("blocking");
    server
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let value: Vec<u8> = (0..2 * MAX_DATAGRAM_BYTES + 123)
        .map(|i| (i % 251) as u8)
        .collect();
    let frame = Frame::Put { key: 7, value };
    let mut writer = BufWriter::new(client);
    write_frame(&mut writer, &frame).expect("write");
    writer.flush().expect("flush");
    drop(writer);
    let mut reader = BufReader::new(server);
    assert_eq!(read_frame(&mut reader).expect("read"), Some(frame));
    assert_eq!(read_frame(&mut reader).expect("read eof"), None);
}
