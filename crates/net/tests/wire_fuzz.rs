//! Property tests of the wire protocol: round trips for the churn frames
//! (`WriteBack`, the hot-transition epoch admin frames, versioned installs)
//! and decode robustness against arbitrary and truncated bytes — a peer can
//! send anything, the decoder must answer with an error, never a panic.

use cckvs_net::wire::{Frame, WireError};
use consistency::lamport::{NodeId, Timestamp};
use proptest::prelude::*;

fn ts_of(clock: u32, writer: u8) -> Timestamp {
    Timestamp::new(clock, NodeId(writer))
}

fn assert_roundtrip(frame: Frame) {
    let encoded = frame.encode();
    assert_eq!(Frame::decode(&encoded), Ok(frame));
}

/// Every strict prefix of a well-formed frame must fail to decode: inner
/// length prefixes and the trailing-bytes check make truncation at *any*
/// offset detectable.
fn assert_prefixes_rejected(frame: &Frame) {
    let encoded = frame.encode();
    for cut in 0..encoded.len() {
        assert!(
            Frame::decode(&encoded[..cut]).is_err(),
            "truncation of {frame:?} to {cut}/{} bytes decoded cleanly",
            encoded.len()
        );
    }
}

proptest! {
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..192)) {
        // Any result is fine; reaching it without a panic is the property.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn write_back_roundtrips_and_rejects_truncation(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
        applied in any::<bool>(),
    ) {
        let frame = Frame::WriteBack { key, value, ts: ts_of(clock, writer) };
        assert_prefixes_rejected(&frame);
        assert_roundtrip(frame);
        assert_roundtrip(Frame::WriteBackResp { applied });
    }

    #[test]
    fn hot_transition_frames_roundtrip(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
    ) {
        let ts = ts_of(clock, writer);
        assert_roundtrip(Frame::HotMark { key });
        let resp = Frame::HotMarkResp { value, ts };
        assert_prefixes_rejected(&resp);
        assert_roundtrip(resp);
        assert_roundtrip(Frame::HotUnmark { key });
        assert_roundtrip(Frame::HotUnmarkResp);
        assert_roundtrip(Frame::MissRetry);
        assert_roundtrip(Frame::MissPutResp { ts });
    }

    #[test]
    fn versioned_install_and_flip_frames_roundtrip(
        key in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..64),
        clock in any::<u32>(),
        writer in any::<u8>(),
        epoch in any::<u64>(),
        installed in any::<u32>(),
        evicted in any::<u32>(),
        warm in any::<bool>(),
    ) {
        let install = Frame::InstallHot { key, value, ts: ts_of(clock, writer), warm };
        assert_prefixes_rejected(&install);
        assert_roundtrip(install);
        assert_roundtrip(Frame::ActivateHot { key });
        assert_roundtrip(Frame::ActivateHotResp { ok: warm });
        assert_roundtrip(Frame::FlipEpoch);
        let resp = Frame::FlipEpochResp { epoch, installed, evicted };
        assert_prefixes_rejected(&resp);
        assert_roundtrip(resp);
    }

    #[test]
    fn oversized_inner_length_prefixes_are_rejected(key in any::<u64>()) {
        // Hand-craft a WriteBack whose value-length field claims more bytes
        // than the payload carries.
        let mut bytes = Frame::WriteBack { key, value: vec![1, 2, 3], ts: ts_of(1, 0) }.encode();
        let len_at = bytes.len() - 3 - 4;
        bytes[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        prop_assert_eq!(Frame::decode(&bytes), Err(WireError::Oversized(u32::MAX as usize)));
    }
}
