//! End-to-end hot-set churn over the wire.
//!
//! These tests exercise the dynamic-reconfiguration subsystem: a real
//! 3-node rack whose epoch coordinator installs and evicts hot keys *while
//! Zipfian traffic with writes runs*, with dirty evicted values written
//! back to their (remote) home shards over the `WriteBack` RPC. The
//! acceptance bar: the recorded history passes the per-key linearizability
//! checker across ≥ 3 epoch flips, and a final sweep finds no key whose
//! last acknowledged write was lost.

use cckvs_net::client::SharedHistory;
use cckvs_net::rack::{Rack, RackConfig};
use cckvs_net::LoadBalancePolicy;
use consistency::messages::ConsistencyModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use symcache::EpochConfig;
use workload::{Dataset, Mix, OpKind, ShiftingHotspot};

const SESSIONS: u32 = 3;
const OPS_PER_SESSION: u64 = 6_000;
const DATASET_KEYS: u64 = 4_096;
const VALUE_SIZE: usize = 40;
const CACHE_CAPACITY: usize = 64;
const HOT_SET: usize = 48;

fn churn_rack_config() -> RackConfig {
    let mut cfg = RackConfig::small_from_env(ConsistencyModel::Lin, 3);
    cfg.cache_capacity = CACHE_CAPACITY;
    cfg.kvs_capacity = DATASET_KEYS as usize * 2;
    cfg.value_capacity = VALUE_SIZE;
    // Short epochs: the coordinator closes them automatically from its
    // serving path, so the hot set catches up with the shifting hotspot
    // mid-phase and cached writes (→ dirty evictions) actually happen.
    cfg.epochs = Some(EpochConfig {
        cache_entries: HOT_SET,
        counter_capacity: HOT_SET * 4,
        sampling: 2,
        epoch_length: 600,
    });
    cfg
}

/// The acceptance test: live traffic across ≥ 3 epoch flips on a 3-node
/// rack; history linearizable, zero lost updates.
#[test]
fn churn_rack_preserves_every_acknowledged_write() {
    let rack = Rack::launch(churn_rack_config()).expect("launch rack");
    let dataset = Dataset::new(DATASET_KEYS, VALUE_SIZE);
    let history = Arc::new(SharedHistory::new());
    let ops_done = Arc::new(AtomicU64::new(0));

    let base = rack.client();
    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let base = base.clone();
            let history = Arc::clone(&history);
            let ops_done = Arc::clone(&ops_done);
            // The hotspot shifts every 1500 ops by 600 ranks: each session
            // sees ~4 distinct hot sets over its run, so the coordinator
            // must install and evict while the session keeps writing.
            let mut gen = ShiftingHotspot::new(
                &dataset,
                0.99,
                Mix::with_write_ratio(0.15),
                1_500,
                600,
                0xC0FFEE ^ u64::from(session),
            );
            std::thread::spawn(move || {
                let mut client = base
                    .session(session)
                    .policy(LoadBalancePolicy::RoundRobin)
                    .history(history)
                    .connect()
                    .expect("connect");
                // Keys are write-partitioned across sessions so "the last
                // acknowledged write" of a key is well defined for the final
                // sweep; reads stay shared.
                let mut last_written: HashMap<u64, Vec<u8>> = HashMap::new();
                for _ in 0..OPS_PER_SESSION {
                    let op = gen.next_op();
                    let owned = op.key.0 % u64::from(SESSIONS) == u64::from(session);
                    match op.kind {
                        OpKind::Put if owned => {
                            let value = op.value_bytes(session, VALUE_SIZE);
                            client.put(op.key.0, &value).expect("put");
                            last_written.insert(op.key.0, value);
                        }
                        _ => {
                            client.get(op.key.0).expect("get");
                        }
                    }
                    ops_done.fetch_add(1, Ordering::Relaxed);
                }
                last_written
            })
        })
        .collect();

    // Force epoch flips while the traffic runs (the coordinator also flips
    // by itself when enough sampled requests close an epoch).
    let total = u64::from(SESSIONS) * OPS_PER_SESSION;
    let mut last_epoch = 0;
    for threshold in [total / 4, total / 2, 3 * total / 4] {
        while ops_done.load(Ordering::Relaxed) < threshold {
            std::thread::sleep(Duration::from_millis(5));
        }
        let flip = rack.flip_epoch().expect("flip epoch under live traffic");
        last_epoch = flip.epoch;
    }
    assert!(
        last_epoch >= 3,
        "expected >= 3 epoch flips, got {last_epoch}"
    );

    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    for handle in handles {
        // Sessions write disjoint keys, so merging never overwrites.
        expected.extend(handle.join().expect("session thread"));
    }
    assert!(!expected.is_empty(), "workload produced no writes");

    // The churn machinery actually ran: keys were installed, evicted, and
    // dirty values written back (15% writes on a Zipfian head guarantee
    // dirty evictions across 3+ flips).
    let totals: Vec<_> = (0..rack.nodes())
        .map(|n| rack.server(n).metrics().snapshot())
        .collect();
    let installs: u64 = totals.iter().map(|s| s.installs).sum();
    let evictions: u64 = totals.iter().map(|s| s.evictions).sum();
    let writebacks: u64 = totals.iter().map(|s| s.writebacks).sum();
    assert!(installs > 0, "no hot keys were ever installed");
    assert!(evictions > 0, "the hot set never churned");
    assert!(writebacks > 0, "no dirty eviction ever wrote back");

    // Consistency of everything the clients observed, across every flip.
    let history = history.snapshot();
    assert!(history.len() > 1_000, "too few operations recorded");
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated under churn: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated under churn: {v}"));

    // Zero lost updates: every key's last acknowledged write survives the
    // install/evict/write-back cycles, wherever it now lives.
    let mut sweeper = rack
        .client()
        .session(SESSIONS + 1)
        .policy(LoadBalancePolicy::RoundRobin)
        .connect()
        .expect("connect");
    let mut lost = 0;
    for (&key, value) in &expected {
        let read = sweeper.get(key).expect("sweep get");
        if &read != value {
            lost += 1;
            eprintln!("lost update: key {key} holds {read:?}, expected {value:?}");
        }
    }
    assert_eq!(
        lost,
        0,
        "{lost}/{} keys lost their last write",
        expected.len()
    );
    rack.shutdown();
}

/// Deterministic delta check: the coordinator installs what got popular and
/// evicts what stopped being popular, and a dirty evicted key's last write
/// lands on its home shard over the wire.
#[test]
fn epoch_flip_moves_the_hot_set_and_writes_back_dirty_keys() {
    let mut cfg = RackConfig::small_from_env(ConsistencyModel::Lin, 3);
    cfg.epochs = Some(EpochConfig {
        cache_entries: 8,
        counter_capacity: 64,
        // Sample everything, never auto-close: flips below are explicit.
        sampling: 1,
        epoch_length: u64::MAX,
    });
    let rack = Rack::launch(cfg).expect("launch rack");
    // Only traffic served by the coordinator node feeds the tracker.
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::Pinned(cckvs_net::COORDINATOR_NODE))
        .connect()
        .expect("connect");

    // Phase A: keys 0..8 are the hot set.
    for _ in 0..50 {
        for key in 0..8u64 {
            client.get(key).expect("get");
        }
    }
    let flip = rack.flip_epoch().expect("first flip");
    assert_eq!(flip.epoch, 1);
    assert_eq!(flip.installed, 8, "phase-A keys must be installed");
    assert_eq!(flip.evicted, 0);
    for key in 0..8u64 {
        assert!(
            rack.server(1).node().is_cached(key),
            "key {key} not cached on node 1 after install"
        );
    }

    // Write one of the hot keys through the cache (round-robin would do;
    // the pinned session works too) — this makes its entry dirty on every
    // replica.
    let ts = client
        .put(3, b"dirty-hot-value")
        .expect("put")
        .expect("cache-path write");

    // Phase B: keys 100..116 take over; every phase-A key must be evicted
    // (space-saving counts: 100 observations each vs 50).
    for _ in 0..100 {
        for key in 100..116u64 {
            client.get(key).expect("get");
        }
    }
    let flip = rack.flip_epoch().expect("second flip");
    assert_eq!(flip.epoch, 2);
    assert_eq!(flip.installed, 8, "hot set must refill with phase-B keys");
    assert_eq!(flip.evicted, 8, "every phase-A key must be evicted");
    for key in 0..8u64 {
        assert!(
            !rack.server(2).node().is_cached(key),
            "key {key} still cached after eviction"
        );
    }

    // The dirty write survived eviction: it reached key 3's home shard with
    // its protocol timestamp, over the wire when the home is remote.
    let home = rack.server(0).node().home_node(3);
    let (value, stored_ts) = rack.server(home).node().kvs_get_versioned(3);
    assert_eq!(value, b"dirty-hot-value", "dirty eviction lost the write");
    assert_eq!(stored_ts, ts, "write-back must carry the protocol version");
    assert_eq!(client.get(3).expect("get"), b"dirty-hot-value");

    let writebacks: u64 = (0..rack.nodes())
        .map(|n| rack.server(n).metrics().snapshot().writebacks)
        .sum();
    assert!(writebacks > 0, "no write-back recorded");
    rack.shutdown();
}

/// Regression for the original bug, driven purely through admin frames:
/// evicting a dirty key via `Frame::Evict` on a node that is *not* the
/// key's home must not lose the write.
#[test]
fn admin_eviction_of_dirty_non_home_keys_keeps_the_write() {
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 3)).expect("launch rack");
    let addrs = rack.client_addrs();
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::RoundRobin)
        .connect()
        .expect("connect");

    let keys: Vec<u64> = (0..24).collect();
    let entries: Vec<(u64, Vec<u8>)> = keys.iter().map(|&k| (k, vec![0u8; 16])).collect();
    rack.install_hot_set(&entries).expect("install");
    for &key in &keys {
        let mut value = key.to_le_bytes().to_vec();
        value.extend_from_slice(b"-written");
        client.put(key, &value).expect("put");
    }
    // Evict everywhere: each node's copy is dirty, only one replica per key
    // is the home — the others must ship their value over the WriteBack RPC.
    rack.evict_hot_set(&keys).expect("evict");
    for &key in &keys {
        let home = rack.server(0).node().home_node(key);
        let mut expected = key.to_le_bytes().to_vec();
        expected.extend_from_slice(b"-written");
        assert_eq!(
            rack.server(home).node().kvs_get(key),
            expected,
            "home shard of key {key} lost the write after eviction"
        );
        assert_eq!(client.get(key).expect("get"), expected);
    }

    // Re-install from the home shards at their stored versions (writes are
    // quiescent here): a fresh cached write must order after everything the
    // shards accepted, then survive another eviction round.
    let reinstall: Vec<(u64, Vec<u8>, consistency::lamport::Timestamp)> = keys
        .iter()
        .map(|&k| {
            let home = rack.server(0).node().home_node(k);
            let (value, ts) = rack.server(home).node().kvs_get_versioned(k);
            (k, value, ts)
        })
        .collect();
    cckvs_net::install_hot_set_versioned_via(&*rack.transport().build(), &addrs, &reinstall)
        .expect("reinstall");
    let key = keys[5];
    client.put(key, b"post-reinstall").expect("put");
    rack.evict_hot_set(&[key]).expect("evict again");
    assert_eq!(client.get(key).expect("get"), b"post-reinstall");
    rack.shutdown();
}

/// The home shard's hot-transition fence, observed at the wire level: while
/// a key is marked (`HotMark`), cold reads and writes bounce with
/// `MissRetry` — the freshest value may be in the caches or in a write-back
/// still in flight — and `HotUnmark` re-opens the cold path.
#[test]
fn hot_transition_fence_bounces_cold_ops_at_the_home_shard() {
    use cckvs_net::wire::{read_frame, write_frame, Frame};
    use std::io::{BufReader, BufWriter, Write};

    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 3)).expect("launch rack");
    let addrs = rack.client_addrs();
    let key = 4242u64;
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::RoundRobin)
        .connect()
        .expect("connect");
    client.put(key, b"cold-value").expect("put");

    // Speak the rpc role directly to the key's home shard, as a peer
    // would — over whatever fabric the rack runs on.
    let home = rack.server(0).node().home_node(key);
    let stream = rack
        .transport()
        .build()
        .dial(addrs[home], Duration::from_secs(5))
        .expect("connect home");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    // The hello opens the rpc role and gets no response of its own.
    write_frame(&mut writer, &Frame::RpcHello { from: 9 }).expect("hello");
    writer.flush().expect("flush");
    let mut call = |frame: &Frame| -> Frame {
        write_frame(&mut writer, frame).expect("write");
        writer.flush().expect("flush");
        read_frame(&mut reader).expect("read").expect("open")
    };
    let marked = call(&Frame::HotMark { key });
    let Frame::HotMarkResp { value, ts } = marked else {
        panic!("expected HotMarkResp, got {marked:?}");
    };
    assert_eq!(value, b"cold-value");
    assert_ne!(ts.clock, 0, "cold write must have versioned the key");
    // While marked, cold reads and writes bounce.
    assert_eq!(call(&Frame::MissGet { key }), Frame::MissRetry);
    assert_eq!(
        call(&Frame::MissPut {
            key,
            tag: 1,
            writer: 9,
            value: b"racer".to_vec(),
        }),
        Frame::MissRetry
    );
    assert_eq!(call(&Frame::HotUnmark { key }), Frame::HotUnmarkResp);
    // Fence lifted: the cold path serves again, nothing was lost.
    assert_eq!(
        call(&Frame::MissGet { key }),
        Frame::MissGetResp {
            value: b"cold-value".to_vec()
        }
    );
    rack.shutdown();
}

/// A put racing the coordinator's install/evict rounds never hangs and
/// never loses its value: either it commits through the cache (and the
/// eviction writes it back), or the home shard's hot-transition fence
/// bounces it onto whichever side of the transition wins. The churn is
/// driven through the epoch coordinator — the only reconfiguration path
/// that fences the cold writes it races with.
#[test]
fn puts_racing_epoch_flips_neither_hang_nor_lose_writes() {
    let mut cfg = RackConfig::small_from_env(ConsistencyModel::Lin, 3);
    cfg.epochs = Some(EpochConfig {
        cache_entries: 4,
        counter_capacity: 64,
        // Sample everything, flip only when told to.
        sampling: 1,
        epoch_length: u64::MAX,
    });
    let rack = Rack::launch(cfg).expect("launch rack");
    let key = 7u64;

    let stop = Arc::new(AtomicU64::new(0));
    let writer_stop = Arc::clone(&stop);
    let writer_base = rack.client();
    let writer = std::thread::spawn(move || {
        let mut client = writer_base
            .policy(LoadBalancePolicy::RoundRobin)
            .connect()
            .expect("connect");
        let mut seq = 0u64;
        let deadline = Instant::now() + Duration::from_secs(5);
        while writer_stop.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            seq += 1;
            client.put(key, &seq.to_le_bytes()).expect("put");
        }
        seq
    });

    // Alternate the popularity between `key` and a fresh decoy set every
    // round, flipping the epoch each time: the key churns into and out of
    // the hot set while the writer hammers it.
    let mut heater = rack
        .client()
        .session(1)
        .policy(LoadBalancePolicy::Pinned(cckvs_net::COORDINATOR_NODE))
        .connect()
        .expect("connect");
    for round in 0u64..12 {
        if round % 2 == 0 {
            for _ in 0..3_000 {
                heater.get(key).expect("get");
            }
        } else {
            for _ in 0..1_500 {
                for decoy in 0..6u64 {
                    heater.get(1_000 + round * 8 + decoy).expect("get");
                }
            }
        }
        rack.flip_epoch().expect("flip under racing writer");
    }
    stop.store(1, Ordering::Relaxed);
    let last_seq = writer.join().expect("writer thread");
    assert!(last_seq > 0, "writer made no progress under churn");

    // The hot set did churn under the writer...
    let evictions: u64 = (0..rack.nodes())
        .map(|n| rack.server(n).metrics().snapshot().evictions)
        .sum();
    assert!(evictions > 0, "the alternating popularity never churned");
    // ...and the last acknowledged write survived it, wherever it landed.
    let mut client = rack
        .client()
        .session(2)
        .policy(LoadBalancePolicy::RoundRobin)
        .connect()
        .expect("connect");
    assert_eq!(
        client.get(key).expect("get"),
        last_seq.to_le_bytes(),
        "last acknowledged write lost in the eviction/install race"
    );
    rack.shutdown();
}
