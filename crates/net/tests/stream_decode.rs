//! Partial-frame delivery: the streaming [`FrameDecoder`] must accept any
//! chunking of a valid frame stream — one byte at a time, a batch split
//! across a hundred writes, or whatever a proptest-chosen segmentation
//! produces — without erroring, without consuming CPU while starved, and
//! yielding exactly the frames the one-shot [`read_frame`] decoder yields.

use cckvs_net::wire::{read_frame, write_frame, Frame, FrameDecoder};
use consistency::lamport::{NodeId, Timestamp};
use consistency::messages::ProtocolMsg;
use proptest::prelude::*;

fn sample_frames() -> Vec<Frame> {
    let ts = Timestamp::new(17, NodeId(2));
    vec![
        Frame::ClientHello,
        Frame::Get { key: 42 },
        Frame::Put {
            key: 7,
            value: b"dribbled-value".to_vec(),
        },
        Frame::GetResp {
            cached: true,
            ts,
            value: vec![0xA5; 300],
        },
        Frame::Protocol {
            msg: ProtocolMsg::Update {
                key: 9,
                value: 0xDEAD_BEEF,
                ts,
                from: NodeId(1),
            },
            bytes: Some(b"payload".to_vec()),
        },
        Frame::Credit { cum: 31, gen: 1 },
        Frame::Ping,
    ]
}

fn encode_stream(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in frames {
        write_frame(&mut bytes, frame).unwrap();
    }
    bytes
}

fn one_shot_decode(mut bytes: &[u8]) -> Vec<Frame> {
    let mut frames = Vec::new();
    while let Some(frame) = read_frame(&mut bytes).unwrap() {
        frames.push(frame);
    }
    frames
}

/// Feeds `bytes` to a fresh decoder in the given chunks and collects every
/// frame, asserting the decoder only reports progress when it actually has
/// a complete frame (the no-busy-spin property: a starved `next_frame` is
/// `Ok(None)` and consumes nothing).
fn chunked_decode(bytes: &[u8], chunks: &[usize]) -> Vec<Frame> {
    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut fed = 0usize;
    for &chunk in chunks {
        let end = (fed + chunk).min(bytes.len());
        decoder.feed(&bytes[fed..end]);
        fed = end;
        loop {
            let buffered_before = decoder.buffered();
            match decoder.next_frame().expect("valid stream never errors") {
                Some(frame) => frames.push(frame),
                None => {
                    // Starved: nothing was consumed, so a loop driven by
                    // readiness events makes no progress calls here — it
                    // goes back to sleep instead of spinning.
                    assert_eq!(decoder.buffered(), buffered_before);
                    break;
                }
            }
        }
    }
    assert_eq!(fed, bytes.len(), "test chunking covered the whole stream");
    frames
}

#[test]
fn byte_dribble_yields_identical_frames() {
    let frames = sample_frames();
    let bytes = encode_stream(&frames);
    let chunks = vec![1usize; bytes.len()];
    let decoded = chunked_decode(&bytes, &chunks);
    assert_eq!(decoded, frames);
    assert_eq!(decoded, one_shot_decode(&bytes));
}

#[test]
fn batch_split_across_100_writes_decodes_whole() {
    let batch = Frame::Batch {
        frames: (0..40)
            .map(|i| Frame::Put {
                key: i,
                value: vec![i as u8; 64],
            })
            .collect(),
    };
    let bytes = encode_stream(std::slice::from_ref(&batch));
    assert!(
        bytes.len() >= 100,
        "batch must be big enough to split into 100 writes"
    );
    // 100 near-equal chunks covering the stream.
    let base = bytes.len() / 100;
    let mut chunks = vec![base; 100];
    chunks[99] += bytes.len() - base * 100;
    let decoded = chunked_decode(&bytes, &chunks);
    assert_eq!(decoded, vec![batch]);
}

#[test]
fn decoder_tracks_mid_frame_state_for_eof_diagnosis() {
    let mut decoder = FrameDecoder::new();
    assert!(!decoder.is_mid_frame());
    let bytes = encode_stream(&[Frame::Get { key: 1 }]);
    decoder.feed(&bytes[..3]);
    assert!(decoder.next_frame().unwrap().is_none());
    // An EOF here would be a peer dying mid-frame.
    assert!(decoder.is_mid_frame());
    decoder.feed(&bytes[3..]);
    assert_eq!(decoder.next_frame().unwrap(), Some(Frame::Get { key: 1 }));
    assert!(!decoder.is_mid_frame());
}

#[test]
fn oversized_length_prefix_is_rejected_before_buffering() {
    let mut decoder = FrameDecoder::new();
    decoder.feed(&u32::MAX.to_le_bytes());
    assert!(decoder.next_frame().is_err());
}

proptest! {
    /// Chunking is arbitrary: however the proptest splits the stream, the
    /// decoder yields exactly the one-shot frames.
    #[test]
    fn arbitrary_chunking_matches_one_shot_decoder(
        keys in prop::collection::vec(any::<u64>(), 1..12),
        value_len in 0usize..200,
        chunk_sizes in prop::collection::vec(1usize..64, 1..200),
    ) {
        let frames: Vec<Frame> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| {
                if i % 3 == 0 {
                    Frame::Put { key, value: vec![i as u8; value_len] }
                } else if i % 3 == 1 {
                    Frame::Get { key }
                } else {
                    Frame::Batch {
                        frames: vec![
                            Frame::Get { key },
                            Frame::Credit { cum: key & 0xFFFF, gen: key },
                        ],
                    }
                }
            })
            .collect();
        let bytes = encode_stream(&frames);
        // Extend the proptest chunking to cover the whole stream.
        let mut chunks = chunk_sizes;
        let covered: usize = chunks.iter().sum();
        if covered < bytes.len() {
            chunks.push(bytes.len() - covered);
        }
        let decoded = chunked_decode(&bytes, &chunks);
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(decoded, one_shot_decode(&bytes));
    }
}
