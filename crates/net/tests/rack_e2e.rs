//! End-to-end consistency of the networked rack.
//!
//! Boots real 3-node racks on loopback (TCP by default; set
//! `CCKVS_TRANSPORT=udp` to run the identical matrix over the recovering
//! datagram transport), drives mixed Zipfian workloads
//! through the load-balanced [`Client`], and feeds the observed operation
//! history to the consistency checkers: per-key SC must hold under both
//! models, per-key Lin additionally under Lin — exactly the guarantees the
//! in-process cluster validates, now across sockets.

use cckvs_net::client::{BatchConfig, BatchOutcome, SharedHistory};
use cckvs_net::metrics::Metrics;
use cckvs_net::rack::{Rack, RackConfig};
use cckvs_net::server::FlowConfig;
use cckvs_net::LoadBalancePolicy;
use consistency::messages::ConsistencyModel;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::{AccessDistribution, Dataset, Mix, OpKind, WorkloadGen};

const SESSIONS: u32 = 4;
const OPS_PER_SESSION: u64 = 2_000;
const HOT_KEYS: u64 = 128;

fn run_rack(
    model: ConsistencyModel,
) -> (cckvs_net::MetricsSnapshot, consistency::history::History) {
    let rack = Rack::launch(RackConfig::small_from_env(model, 3)).expect("launch rack");
    let dataset = Dataset::new(10_000, 40);
    let hot: Vec<(u64, Vec<u8>)> = (0..HOT_KEYS)
        .map(|rank| (dataset.key_of_rank(rank).0, vec![0u8; 40]))
        .collect();
    rack.install_hot_set(&hot).expect("install hot set");

    let history = Arc::new(SharedHistory::new());
    let metrics = Arc::new(Metrics::new());
    let addrs = rack.client_addrs();
    let base = rack.client();
    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let addrs = addrs.clone();
            let base = base.clone();
            let history = Arc::clone(&history);
            let metrics = Arc::clone(&metrics);
            let mut gen = WorkloadGen::new(
                &dataset,
                AccessDistribution::Zipfian { exponent: 0.99 },
                Mix::with_write_ratio(0.05),
                7 ^ u64::from(session),
            );
            std::thread::spawn(move || {
                // SC sessions stay sticky to one replica; Lin sessions
                // spread across nodes (see the client module docs).
                let policy = match model {
                    ConsistencyModel::Sc => {
                        LoadBalancePolicy::Pinned(session as usize % addrs.len())
                    }
                    ConsistencyModel::Lin => LoadBalancePolicy::RoundRobin,
                };
                let mut client = base
                    .session(session)
                    .policy(policy)
                    .history(history)
                    .metrics(metrics)
                    .connect()
                    .expect("connect");
                for _ in 0..OPS_PER_SESSION {
                    let op = gen.next_op();
                    match op.kind {
                        OpKind::Get => {
                            client.get(op.key.0).expect("get");
                        }
                        OpKind::Put => {
                            client
                                .put(op.key.0, &op.value_bytes(session, 40))
                                .expect("put");
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("session thread");
    }
    let snapshot = metrics.snapshot();
    let history = history.snapshot();
    rack.shutdown();
    (snapshot, history)
}

#[test]
fn lin_rack_history_is_per_key_linearizable() {
    let (metrics, history) = run_rack(ConsistencyModel::Lin);
    assert_eq!(
        metrics.gets + metrics.puts,
        u64::from(SESSIONS) * OPS_PER_SESSION
    );
    // Zipf-0.99 with the hottest 128 of 10k keys cached: a large fraction
    // of traffic must hit, and some must miss (cold keys exist).
    assert!(
        metrics.hit_rate() > 0.25,
        "hit rate {:.3} too low",
        metrics.hit_rate()
    );
    assert!(metrics.cache_misses > 0, "workload never left the hot set");
    assert!(history.len() > 1_000, "too few cached-key ops recorded");
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated over TCP: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated over TCP: {v}"));
}

#[test]
fn sc_rack_history_is_per_key_sequentially_consistent() {
    let (metrics, history) = run_rack(ConsistencyModel::Sc);
    assert!(history.len() > 1_000, "too few cached-key ops recorded");
    assert!(metrics.hit_rate() > 0.25);
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated over TCP: {v}"));
}

#[test]
fn batched_lin_rack_history_is_per_key_linearizable() {
    // The same Lin rack + Zipf mix as the unbatched test, but every
    // session coalesces requests into wire batches (queue + doorbell
    // flush). Batching must change the framing and nothing else: the
    // recorded history still passes the per-key SC and Lin checkers, and
    // every queued op completes with a response in queue order.
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 3)).expect("launch rack");
    let dataset = Dataset::new(10_000, 40);
    rack.install_hot_set(&dataset.hot_entries(HOT_KEYS as usize))
        .expect("install hot set");

    let history = Arc::new(SharedHistory::new());
    let metrics = Arc::new(Metrics::new());
    let base = rack.client();
    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let base = base.clone();
            let history = Arc::clone(&history);
            let metrics = Arc::clone(&metrics);
            let mut gen = WorkloadGen::new(
                &dataset,
                AccessDistribution::Zipfian { exponent: 0.99 },
                Mix::with_write_ratio(0.05),
                101 ^ u64::from(session),
            );
            std::thread::spawn(move || {
                let mut client = base
                    .session(session)
                    .policy(LoadBalancePolicy::RoundRobin)
                    .history(history)
                    .metrics(metrics)
                    .batching(BatchConfig {
                        max_ops: 8,
                        ..BatchConfig::default()
                    })
                    .connect()
                    .expect("connect");
                let mut queued = 0usize;
                let mut completed = 0usize;
                for _ in 0..OPS_PER_SESSION {
                    let op = gen.next_op();
                    match op.kind {
                        OpKind::Get => client.queue_get(op.key.0).expect("queue get"),
                        OpKind::Put => client
                            .queue_put(op.key.0, &op.value_bytes(session, 40))
                            .expect("queue put"),
                    }
                    queued += 1;
                    // Collect outcomes at an off-boundary cadence so some
                    // flushes are doorbell-driven (full batch) and some
                    // explicit (partial batch).
                    if queued.is_multiple_of(21) {
                        completed += client.flush().expect("flush").len();
                    }
                }
                completed += client.flush().expect("final flush").len();
                assert_eq!(completed, queued, "every queued op completes exactly once");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("session thread");
    }
    let snapshot = metrics.snapshot();
    let history = history.snapshot();
    rack.shutdown();

    assert_eq!(
        snapshot.gets + snapshot.puts,
        u64::from(SESSIONS) * OPS_PER_SESSION
    );
    assert!(
        snapshot.batches > 0,
        "no coalesced batches left the clients"
    );
    assert!(snapshot.hit_rate() > 0.25);
    assert!(history.len() > 1_000, "too few cached-key ops recorded");
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated on the batched path: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated on the batched path: {v}"));
}

#[test]
fn batched_writes_are_durable_and_read_back_in_order() {
    // Zero lost updates on the batched path: a session queues interleaved
    // puts and gets of one hot key and one cold key; outcomes arrive in
    // queue order, the final values are the last writes.
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 3)).expect("launch rack");
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::RoundRobin)
        .batching(BatchConfig {
            max_ops: 4,
            ..BatchConfig::default()
        })
        .connect()
        .expect("connect");
    rack.install_hot_set(&[(7, b"seed0000".to_vec())])
        .expect("install");
    let cold_key = 9_999u64;
    for round in 0..8u64 {
        client
            .queue_put(7, format!("hot-{round:04}").as_bytes())
            .expect("queue hot put");
        client
            .queue_put(cold_key, format!("cold{round:04}").as_bytes())
            .expect("queue cold put");
        client.queue_get(7).expect("queue hot get");
    }
    let outcomes = client.flush().expect("flush");
    assert_eq!(outcomes.len(), 24);
    // Every third outcome is the hot get; it must observe its session's
    // immediately preceding hot put (same batch or an earlier one).
    for (round, chunk) in outcomes.chunks(3).enumerate() {
        assert!(matches!(chunk[0], BatchOutcome::Put { cached: true, .. }));
        assert!(matches!(chunk[1], BatchOutcome::Put { cached: false, .. }));
        let BatchOutcome::Get {
            value,
            cached: true,
        } = &chunk[2]
        else {
            panic!("expected cached get outcome, got {:?}", chunk[2]);
        };
        assert_eq!(value, format!("hot-{round:04}").as_bytes());
    }
    assert_eq!(client.get(7).expect("get"), b"hot-0007");
    assert_eq!(client.get(cold_key).expect("get"), b"cold0007");
    // Mixing the APIs preserves program order: a plain get() must drain
    // the queued-but-unsent put first, not jump past it (regression: it
    // used to bypass the queue and read the stale value).
    client.queue_put(7, b"mixed-up").expect("queue put");
    assert_eq!(client.queued(), 1, "put still queued below the doorbell");
    assert_eq!(client.get(7).expect("get"), b"mixed-up");
    assert_eq!(client.flush().expect("flush").len(), 1);
    rack.shutdown();
}

#[test]
fn deadline_flushes_a_singleton_without_the_doorbell() {
    // A queued op with no batch-mates must leave on the max_delay
    // deadline — not sit corked until the op-count doorbell (which would
    // never fire) or an explicit flush. Generous deadline so the timing
    // assertions hold on a loaded CI box.
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 3)).expect("launch rack");
    rack.install_hot_set(&[(7, b"seed".to_vec())])
        .expect("install");
    let max_delay = Duration::from_millis(100);
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::RoundRobin)
        .batching(BatchConfig {
            max_ops: 64,
            max_delay: Some(max_delay),
            ..BatchConfig::default()
        })
        .connect()
        .expect("connect");
    let started = Instant::now();
    client.queue_get(7).expect("queue get");
    assert_eq!(
        client.queued(),
        1,
        "a singleton read must cork, not flush eagerly"
    );
    while client.queued() > 0 {
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline flush never fired"
        );
        let due = client.due_in().unwrap_or(Duration::ZERO);
        std::thread::sleep(due.min(Duration::from_millis(5)));
        client.pump().expect("pump");
    }
    let waited = started.elapsed();
    assert!(
        waited >= max_delay,
        "flushed after {waited:?}, before the {max_delay:?} cork deadline"
    );
    assert!(
        waited < max_delay * 2,
        "flushed after {waited:?}, far past the {max_delay:?} cork deadline"
    );
    assert_eq!(client.flush().expect("outcomes").len(), 1);
    // A queued *write* is a synchronization point: it ships immediately
    // (with any corked reads ahead of it) instead of corking a Lin ack
    // wait behind the deadline — the bound that keeps at most one ack
    // wait per wire batch.
    client.queue_put(7, b"deadline").expect("queue put");
    assert_eq!(
        client.queued(),
        0,
        "a queued write must flush its batch at once"
    );
    assert_eq!(client.flush().expect("outcomes").len(), 1);
    assert_eq!(client.get(7).expect("get"), b"deadline");
    rack.shutdown();
}

#[test]
fn tiny_credit_window_stalls_writers_but_loses_nothing() {
    // Squeeze the peer-mesh credit window down to 2 messages so a Lin
    // write burst *must* exhaust it: the writer threads stall and resume
    // off piggybacked credit returns, the protocol stays live (every op
    // completes), the history stays linearizable, and the stalls are
    // visible in the metrics — proof the flow control engages rather than
    // sitting dormant at its default window.
    let mut cfg = RackConfig::small_from_env(ConsistencyModel::Lin, 3);
    cfg.flow = FlowConfig {
        credit_window: 2,
        peer_batch_ops: 4,
        ..FlowConfig::default()
    };
    let rack = Rack::launch(cfg).expect("launch rack");
    let dataset = Dataset::new(10_000, 40);
    rack.install_hot_set(&dataset.hot_entries(HOT_KEYS as usize))
        .expect("install hot set");

    let history = Arc::new(SharedHistory::new());
    let base = rack.client();
    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let base = base.clone();
            let history = Arc::clone(&history);
            let mut gen = WorkloadGen::new(
                &dataset,
                AccessDistribution::Zipfian { exponent: 0.99 },
                // Write-heavy: every cached write costs an invalidation
                // round plus an update broadcast through the throttled
                // mesh.
                Mix::with_write_ratio(0.5),
                55 ^ u64::from(session),
            );
            std::thread::spawn(move || {
                let mut client = base
                    .session(session)
                    .policy(LoadBalancePolicy::RoundRobin)
                    .history(history)
                    .connect()
                    .expect("connect");
                for _ in 0..OPS_PER_SESSION / 2 {
                    let op = gen.next_op();
                    match op.kind {
                        OpKind::Get => {
                            client.get(op.key.0).expect("get");
                        }
                        OpKind::Put => {
                            client
                                .put(op.key.0, &op.value_bytes(session, 40))
                                .expect("put");
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("session thread");
    }
    let history = history.snapshot();
    let stalls: u64 = (0..rack.nodes())
        .map(|n| rack.server(n).metrics().snapshot().credit_stalls)
        .sum();
    rack.shutdown();

    assert!(
        stalls > 0,
        "a 2-message window under a write-heavy Lin mix never stalled — \
         flow control is not engaging"
    );
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated under credit pressure: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated under credit pressure: {v}"));
}

#[test]
fn rack_serves_cold_keys_through_remote_home_shards() {
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 3)).expect("launch rack");
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::RoundRobin)
        .connect()
        .expect("connect");
    // Nothing is cached: every op takes the miss path, usually remotely.
    for key in 0..60u64 {
        assert!(client.put(key, &key.to_le_bytes()).expect("put").is_none());
    }
    for key in 0..60u64 {
        assert_eq!(client.get(key).expect("get"), key.to_le_bytes());
    }
    // With 3 nodes and round-robin clients, ~2/3 of misses are remote.
    let remote: u64 = (0..rack.nodes())
        .map(|n| {
            let snap = rack.server(n).metrics().snapshot();
            snap.remote_reads + snap.remote_writes
        })
        .sum();
    assert!(remote > 0, "no miss-path RPCs observed");
    rack.shutdown();
}

#[test]
fn cold_key_overwrites_win_regardless_of_entry_node() {
    // Regression: miss-path writes used to carry the *sender's* tag
    // counter to the home shard's put_if_newer; a write entering through a
    // node with a lower counter was silently discarded. Versions are now
    // assigned by the home shard on arrival, so the last write always
    // wins no matter which node served it.
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 3)).expect("launch rack");
    let mut via_node0 = rack
        .client()
        .policy(LoadBalancePolicy::Pinned(0))
        .connect()
        .expect("connect");
    let mut via_node1 = rack
        .client()
        .session(1)
        .policy(LoadBalancePolicy::Pinned(1))
        .connect()
        .expect("connect");
    // Pump node 0's counters far ahead of node 1's.
    for key in 10_000..10_050u64 {
        via_node0.put(key, b"filler").expect("put");
    }
    via_node0.put(77, b"first").expect("put");
    via_node1.put(77, b"second").expect("put");
    for client in [&mut via_node0, &mut via_node1] {
        assert_eq!(client.get(77).expect("get"), b"second");
    }
    rack.shutdown();
}

#[test]
fn metrics_endpoints_are_scrapable_while_serving() {
    use std::io::{Read, Write};
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Sc, 2)).expect("launch rack");
    rack.install_hot_set(&[(1, b"x".to_vec())])
        .expect("install");
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::Pinned(0))
        .connect()
        .expect("connect");
    client.get(1).expect("get");
    let metrics_addr = rack.metrics_addrs()[0].expect("metrics enabled");
    let mut stream = std::net::TcpStream::connect(metrics_addr).expect("connect metrics");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("response");
    assert!(
        body.contains("cckvs_cache_hits_total{node=\"n0\"} 1"),
        "unexpected body:\n{body}"
    );
    rack.shutdown();
}
