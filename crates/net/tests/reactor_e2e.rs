//! Connection-scaling end-to-end tests of the epoll reactor: a 3-node
//! rack must serve thousands of concurrent client connections per node
//! with a thread count that depends on the reactor topology, never on the
//! connection count — while the per-key Lin guarantee holds and teardown
//! stays clean.
//!
//! Both ends of every connection live in this test process, so the
//! 5k-connections-per-node target costs ~10k fds here (the soft limit is
//! raised toward what the run needs; the assertion scales down only if
//! the hard limit genuinely cannot cover it).

use cckvs_net::client::{BatchConfig, Client, SharedHistory};
use cckvs_net::metrics::Metrics;
use cckvs_net::rack::{Rack, RackConfig};
use cckvs_net::server::ReactorConfig;
use cckvs_net::LoadBalancePolicy;
use consistency::messages::ConsistencyModel;
use std::sync::Arc;
use workload::{AccessDistribution, Dataset, Mix, OpKind, WorkloadGen};

/// Threads currently in this process, from /proc/self/status.
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .expect("/proc/self/status has a Threads line on Linux")
}

/// The acceptance workload: ≥5k concurrent connections held open against
/// one node of a 3-node rack (the per-node capacity claim — driving all
/// three nodes at 5k each would only multiply fds in this shared
/// process), a Zipf Lin workload spread over every connection, the
/// history checker-clean, and the thread count flat as connections grow
/// from a handful to thousands.
#[test]
fn five_thousand_connections_per_node_serve_lin_checked_workload() {
    const TARGET_CONNS: usize = 5_000;
    const DRIVERS: usize = 8;
    const OPS_PER_CONN: u64 = 4;

    // Both socket ends live here: ~2 fds per connection plus slack.
    let wanted = 2 * TARGET_CONNS as u64 + 1024;
    let limit = reactor::raise_nofile_limit(wanted).expect("query fd limit");
    let conns = if limit >= wanted {
        TARGET_CONNS
    } else {
        // Hard-capped environment: scale to what physically fits, keeping
        // the shape of the test (still thousands when the limit allows).
        (((limit.saturating_sub(1024)) / 2) as usize).max(256)
    };

    let mut cfg = RackConfig::small(ConsistencyModel::Lin, 3);
    cfg.cache_capacity = 128;
    cfg.metrics = false;
    cfg.reactor = ReactorConfig { shards: 2 };
    let rack = Rack::launch(cfg).expect("launch rack");
    let dataset = Dataset::new(10_000, 40);
    rack.install_hot_set(&dataset.hot_entries(128))
        .expect("install hot set");
    let target = rack.client_addrs()[0];

    let threads_before = process_threads();
    let history = Arc::new(SharedHistory::new());
    let metrics = Arc::new(Metrics::new());
    let handles: Vec<_> = (0..DRIVERS)
        .map(|driver| {
            let history = Arc::clone(&history);
            let metrics = Arc::clone(&metrics);
            let mut gen = WorkloadGen::new(
                &dataset,
                AccessDistribution::Zipfian { exponent: 0.99 },
                Mix::with_write_ratio(0.05),
                0xE2E ^ driver as u64,
            );
            std::thread::spawn(move || {
                // This driver's share of the connection pool, all held
                // open concurrently against node 0.
                let mut clients: Vec<Client> = (0..conns)
                    .filter(|i| i % DRIVERS == driver)
                    .map(|i| {
                        Client::builder(&[target])
                            .session(u32::try_from(i).expect("connection index fits"))
                            .policy(LoadBalancePolicy::Pinned(0))
                            .history(Arc::clone(&history))
                            .metrics(Arc::clone(&metrics))
                            .batching(BatchConfig {
                                max_ops: 4,
                                ..BatchConfig::default()
                            })
                            .connect()
                            .expect("connect")
                    })
                    .collect();
                // Every connection serves ops (round-robin), so all of
                // them are demonstrably live, not just open.
                for n in 0..(OPS_PER_CONN * clients.len() as u64) {
                    let op = gen.next_op();
                    let slot = n as usize % clients.len();
                    let client = &mut clients[slot];
                    match op.kind {
                        OpKind::Get => client.queue_get(op.key.0).expect("queue get"),
                        OpKind::Put => client
                            .queue_put(op.key.0, &op.value_bytes(driver as u32, 40))
                            .expect("queue put"),
                    }
                    if client.queued() == 0 {
                        client.flush().expect("drain outcomes");
                    }
                }
                let threads_at_peak = process_threads();
                for client in &mut clients {
                    client.flush().expect("final flush");
                }
                threads_at_peak
            })
        })
        .collect();
    let mut threads_at_peak = 0u64;
    for handle in handles {
        threads_at_peak = threads_at_peak.max(handle.join().expect("driver thread"));
    }

    assert!(
        conns >= 5_000 || reactor::raise_nofile_limit(wanted).unwrap_or(0) < wanted,
        "ran {conns} connections without an fd-limit excuse"
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.gets + snap.puts,
        OPS_PER_CONN * conns as u64,
        "every connection served its ops"
    );
    // O(reactor shards) threads, not O(connections): beyond the driver
    // threads this test spawned itself, holding `conns` connections adds
    // NO server threads over the rack's fixed topology.
    let driver_threads = DRIVERS as u64;
    assert!(
        threads_at_peak <= threads_before + driver_threads,
        "thread count grew with connections: {threads_before} before, \
         {threads_at_peak} at peak with {conns} connections ({driver_threads} drivers)"
    );

    let history = history.snapshot();
    assert!(
        history.len() as u64 >= OPS_PER_CONN * conns as u64 / 4,
        "too few cached-key ops recorded ({})",
        history.len()
    );
    history
        .check_per_key_sc()
        .expect("per-key SC must hold across thousands of connections");
    history
        .check_per_key_lin()
        .expect("per-key Lin must hold across thousands of connections");
    rack.shutdown();
}

/// Connections that sit idle (no hello, or hello then silence) must cost
/// the reactor nothing but memory: the rack keeps serving a checked
/// workload around 2k of them, and closes them all on teardown.
#[test]
fn idle_and_mute_connections_do_not_starve_serving() {
    let wanted = 2 * 2_000 + 1024;
    let _ = reactor::raise_nofile_limit(wanted);
    let mut cfg = RackConfig::small(ConsistencyModel::Lin, 3);
    cfg.metrics = false;
    let rack = Rack::launch(cfg).expect("launch rack");
    let dataset = Dataset::new(1_000, 40);
    rack.install_hot_set(&dataset.hot_entries(64))
        .expect("install hot set");
    let addrs = rack.client_addrs();

    // 1k sockets that never speak (no hello) and 1k real client sessions
    // that go mute after connecting.
    let mute: Vec<std::net::TcpStream> = (0..1_000)
        .map(|i| std::net::TcpStream::connect(addrs[i % addrs.len()]).expect("connect mute"))
        .collect();
    let idle: Vec<Client> = (0..1_000)
        .map(|i| {
            Client::connect(
                &[addrs[i % addrs.len()]],
                10_000 + i as u32,
                LoadBalancePolicy::Pinned(0),
            )
            .expect("connect idle")
        })
        .collect();

    // A live session still gets served promptly through the noise.
    let history = Arc::new(SharedHistory::new());
    let mut client = Client::builder(&addrs)
        .session(1)
        .policy(LoadBalancePolicy::RoundRobin)
        .history(Arc::clone(&history))
        .connect()
        .expect("connect live");
    let mut gen = WorkloadGen::new(
        &dataset,
        AccessDistribution::Zipfian { exponent: 0.99 },
        Mix::with_write_ratio(0.2),
        42,
    );
    for _ in 0..2_000 {
        let op = gen.next_op();
        match op.kind {
            OpKind::Get => {
                client.get(op.key.0).expect("get");
            }
            OpKind::Put => {
                client.put(op.key.0, &op.value_bytes(1, 40)).expect("put");
            }
        }
    }
    history
        .snapshot()
        .check_per_key_lin()
        .expect("per-key Lin holds with 2k idle connections attached");
    drop(idle);
    drop(mute);
    rack.shutdown();
}
