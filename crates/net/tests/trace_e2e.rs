//! End-to-end tracing: a sampled op's trace context travels on the wire,
//! every node records causally-linked span events, and the per-node dumps
//! assemble into one cross-node timeline.
//!
//! Covers the three propagation paths that carry a trace id somewhere a
//! naive implementation would lose it: the Lin write fan-out (id crosses
//! to every peer and rides the acks back), coalesced `Frame::Batch`
//! sub-frames (each op wrapped individually inside the batch), and the
//! peer-link replay path (a severed link's unconfirmed tail is replayed
//! with the original ids, exactly once).

use cckvs::node::NodeConfig;
use cckvs_net::client::{
    collect_traces, collect_traces_via, install_hot_set, Client, SharedHistory,
};
use cckvs_net::metrics::Metrics;
use cckvs_net::server::{FlowConfig, NodeServer, NodeServerConfig};
use cckvs_net::{LoadBalancePolicy, Rack, RackConfig};
use cckvs_trace::{assemble, EventKind};
use consistency::messages::ConsistencyModel;
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The tentpole acceptance bar: one sampled Lin PUT on a 3-node rack
/// yields a single assembled cross-node timeline with the complete span
/// chain — initiate, one invalidation send and one ack arrival per peer,
/// commit fire — plus decode and respond bracketing it.
#[test]
fn traced_lin_put_assembles_a_complete_cross_node_span_chain() {
    const NODES: usize = 3;
    let rack =
        Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, NODES)).expect("launch");
    rack.install_hot_set(&[(7, b"seed".to_vec())])
        .expect("install hot set");

    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::Pinned(0))
        .connect()
        .expect("connect");
    let trace_id = client.trace_next();
    client.put(7, b"traced-write").expect("traced put");
    // The put response only returns after commit, so every span event is
    // already recorded (the dump drains the rings itself).
    let dumps =
        collect_traces_via(&*rack.transport().build(), &rack.client_addrs()).expect("trace dump");
    for (node, (dropped, _)) in dumps.iter().enumerate() {
        assert_eq!(*dropped, 0, "node {node} dropped span events");
    }
    let events: Vec<_> = dumps.into_iter().map(|(_, events)| events).collect();
    let timeline = assemble(&events, trace_id);
    assert!(!timeline.is_empty(), "no events for trace {trace_id:#x}");

    let count = |kind: EventKind| timeline.iter().filter(|ev| ev.kind == kind).count();
    assert_eq!(count(EventKind::Decode), 1, "decode: {timeline:#?}");
    assert_eq!(count(EventKind::LinInitiate), 1, "initiate: {timeline:#?}");
    assert_eq!(
        count(EventKind::InvSend),
        NODES - 1,
        "one invalidation per peer: {timeline:#?}"
    );
    assert_eq!(
        count(EventKind::AckRecv),
        NODES - 1,
        "one ack per peer: {timeline:#?}"
    );
    assert!(count(EventKind::CommitFire) >= 1, "commit: {timeline:#?}");
    assert!(count(EventKind::Respond) >= 1, "respond: {timeline:#?}");
    // Causally linked across nodes: the peers recorded the id too (their
    // invalidation/update arrivals), not just the serving node.
    let nodes_seen: BTreeSet<u8> = timeline.iter().map(|ev| ev.node).collect();
    assert_eq!(
        nodes_seen.len(),
        NODES,
        "the trace should span every node: {nodes_seen:?}"
    );
    // Each peer acked after the send to it (the timeline is causally
    // ordered, not just merged).
    for peer in timeline
        .iter()
        .filter(|ev| ev.kind == EventKind::InvSend)
        .map(|ev| ev.peer)
    {
        let sent = timeline
            .iter()
            .find(|ev| ev.kind == EventKind::InvSend && ev.peer == peer)
            .expect("send");
        let acked = timeline
            .iter()
            .find(|ev| ev.kind == EventKind::AckRecv && ev.peer == peer)
            .unwrap_or_else(|| panic!("no ack arrival from peer {peer}"));
        assert!(
            acked.t_ns >= sent.t_ns,
            "ack from peer {peer} before its invalidation was sent"
        );
    }
    rack.shutdown();
}

/// Satellite: trace context propagates through `Frame::Batch` — each
/// queued op is wrapped individually, so every sub-frame keeps its own id
/// across the wire and the server records distinct span chains for ops
/// that shared one wire batch.
#[test]
fn batch_sub_frames_keep_their_individual_trace_ids() {
    const OPS: usize = 4;
    let rack = Rack::launch(RackConfig::small_from_env(ConsistencyModel::Lin, 2)).expect("launch");
    let entries: Vec<(u64, Vec<u8>)> = (0..OPS as u64).map(|k| (k, b"seed".to_vec())).collect();
    rack.install_hot_set(&entries).expect("install hot set");

    let metrics = Arc::new(Metrics::new());
    let batching = cckvs_net::BatchConfig {
        max_ops: OPS,
        ..cckvs_net::BatchConfig::default()
    };
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::Pinned(0))
        .batching(batching)
        .metrics(Arc::clone(&metrics))
        .connect()
        .expect("connect");
    let mut ids = Vec::new();
    for k in 0..OPS as u64 {
        ids.push(client.trace_next());
        client.queue_put(k, b"batched-write").expect("queue");
    }
    let outcomes = client.flush().expect("flush");
    assert_eq!(outcomes.len(), OPS);
    // The ops genuinely traveled as one coalesced wire batch.
    assert!(
        metrics.snapshot().batches >= 1,
        "ops did not coalesce into a wire batch"
    );
    assert_eq!(
        ids.iter().collect::<BTreeSet<_>>().len(),
        OPS,
        "trace ids must be distinct"
    );

    let dumps =
        collect_traces_via(&*rack.transport().build(), &rack.client_addrs()).expect("trace dump");
    let events: Vec<_> = dumps.into_iter().map(|(_, events)| events).collect();
    for (k, &id) in ids.iter().enumerate() {
        let timeline = assemble(&events, id);
        let count = |kind: EventKind| timeline.iter().filter(|ev| ev.kind == kind).count();
        assert_eq!(
            count(EventKind::Decode),
            1,
            "sub-frame {k} lost its trace context in the batch: {timeline:#?}"
        );
        assert_eq!(count(EventKind::LinInitiate), 1, "sub-frame {k} initiate");
        assert_eq!(count(EventKind::InvSend), 1, "sub-frame {k} fan-out");
        assert_eq!(count(EventKind::AckRecv), 1, "sub-frame {k} ack");
        assert!(count(EventKind::CommitFire) >= 1, "sub-frame {k} commit");
        // And the events carry the right key, proving ids didn't cross
        // wires between sub-frames.
        let initiate = timeline
            .iter()
            .find(|ev| ev.kind == EventKind::LinInitiate)
            .expect("initiate");
        assert_eq!(initiate.key, k as u64, "trace {id:#x} tagged wrong key");
    }
    rack.shutdown();
}

/// A byte-forwarding TCP proxy whose live connections can be severed on
/// demand (same fault injector as `reconnect_e2e`).
struct Proxy {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl Proxy {
    fn start(target: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let running = Arc::new(AtomicBool::new(true));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_running = Arc::clone(&running);
        let accept_conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            while accept_running.load(Ordering::SeqCst) {
                let Ok((client, _)) = listener.accept() else {
                    return;
                };
                let Ok(upstream) = TcpStream::connect(target) else {
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                {
                    let mut conns = accept_conns.lock().expect("proxy conns");
                    conns.push(client.try_clone().expect("clone"));
                    conns.push(upstream.try_clone().expect("clone"));
                }
                let (mut c2u_r, mut c2u_w) = (
                    client.try_clone().expect("clone"),
                    upstream.try_clone().expect("clone"),
                );
                std::thread::spawn(move || copy_until_error(&mut c2u_r, &mut c2u_w));
                let (mut u2c_r, mut u2c_w) = (upstream, client);
                std::thread::spawn(move || copy_until_error(&mut u2c_r, &mut u2c_w));
            }
        });
        Proxy {
            addr,
            running,
            conns,
        }
    }

    fn sever_all(&self) -> usize {
        let mut conns = self.conns.lock().expect("proxy conns");
        let severed = conns.len() / 2;
        for conn in conns.drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        severed
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        self.sever_all();
        let _ = TcpStream::connect(self.addr);
    }
}

fn copy_until_error(from: &mut TcpStream, to: &mut TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    let _ = from.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
    }
}

/// Satellite: frames replayed after a peer-link reconnect keep their
/// original trace id (the `Replay` span event records it), and the peer
/// still processes each traced message exactly once — the replayed tail
/// never re-delivers a message the peer had already confirmed.
#[test]
fn replayed_frames_keep_their_original_trace_id_exactly_once() {
    const HOT_KEYS: u64 = 8;

    let node_cfg = |node: usize| NodeConfig {
        model: ConsistencyModel::Lin,
        node,
        nodes: 2,
        cache_capacity: 128,
        kvs_capacity: 4096,
        value_capacity: 32,
        kvs_threads: cckvs::node::DEFAULT_KVS_THREADS,
    };
    // Tiny credit window so severs land with traffic in flight.
    let flow = FlowConfig {
        credit_window: 4,
        peer_batch_ops: 4,
        ..FlowConfig::default()
    };
    let mut cfg_a = NodeServerConfig::loopback(node_cfg(0));
    cfg_a.flow = flow;
    cfg_a.metrics_listen = None;
    let mut cfg_b = NodeServerConfig::loopback(node_cfg(1));
    cfg_b.flow = flow;
    cfg_b.metrics_listen = None;
    let mut server_a = NodeServer::start(cfg_a).expect("start A");
    let mut server_b = NodeServer::start(cfg_b).expect("start B");
    let addr_a = server_a.addr();
    let addr_b = server_b.addr();
    let proxy = Proxy::start(addr_b);
    server_a
        .connect_peers(&[addr_a, proxy.addr], Duration::from_secs(5))
        .expect("wire A");
    server_b
        .connect_peers(&[addr_a, addr_b], Duration::from_secs(5))
        .expect("wire B");

    let addrs = vec![addr_a, addr_b];
    let entries: Vec<(u64, Vec<u8>)> = (0..HOT_KEYS).map(|k| (k, vec![0u8; 16])).collect();
    install_hot_set(&addrs, &entries).expect("install hot set");

    // These racks run without a metrics thread, so nothing drains the
    // per-lane rings while traffic flows; stand-in drainers keep the
    // sustained all-ops-traced write load from overflowing them (the
    // overflow counter would void the exactly-once accounting below).
    let stop = Arc::new(AtomicBool::new(false));
    let drainers: Vec<_> = [server_a.trace_sink(), server_b.trace_sink()]
        .into_iter()
        .map(|sink| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    sink.drain();
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        })
        .collect();

    // One writer pinned to A, every op traced with a known id; the main
    // thread cuts the A→B link repeatedly while writes are in flight, so
    // some traced invalidations land in the replayed unconfirmed tail.
    let history = Arc::new(SharedHistory::new());
    let writer_stop = Arc::clone(&stop);
    let writer_history = Arc::clone(&history);
    let writer_addrs = addrs.clone();
    let writer = std::thread::spawn(move || {
        let mut client = Client::builder(&writer_addrs)
            .policy(LoadBalancePolicy::Pinned(0))
            .history(writer_history)
            .connect()
            .expect("connect");
        let mut minted: BTreeSet<u64> = BTreeSet::new();
        let mut seq = 0u64;
        while !writer_stop.load(Ordering::Relaxed) {
            seq += 1;
            minted.insert(client.trace_next());
            client
                .put(seq % HOT_KEYS, &seq.to_le_bytes())
                .expect("put under link chaos");
        }
        minted
    });
    // Sever until a reconnect actually replayed something (at least 8
    // rounds): a fixed round count can miss the in-flight window when the
    // host is loaded and the writer runs slowly.
    let mut severed = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        std::thread::sleep(Duration::from_millis(60));
        severed += proxy.sever_all();
        if rounds >= 8 && server_a.metrics().snapshot().peer_replayed > 0 {
            break;
        }
        assert!(
            rounds < 100,
            "no replay after {rounds} sever rounds ({severed} severed)"
        );
    }
    assert!(severed > 0, "the proxy never had a link to sever");
    // Let the last reconnect settle under traffic, then stop.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let minted = writer.join().expect("writer survived link chaos");
    for drainer in drainers {
        drainer.join().expect("drainer");
    }
    drop(proxy);

    let dumps = collect_traces(&addrs).expect("trace dump");
    for (node, (dropped, _)) in dumps.iter().enumerate() {
        assert_eq!(*dropped, 0, "node {node} dropped span events");
    }
    let events_a = &dumps[0].1;
    let events_b = &dumps[1].1;

    // Replayed frames carried trace context: A recorded Replay events,
    // and each one's id is an id this client actually minted (the
    // original id, not a remint).
    let replayed: Vec<u64> = events_a
        .iter()
        .filter(|ev| ev.kind == EventKind::Replay)
        .map(|ev| ev.trace_id)
        .collect();
    assert!(
        !replayed.is_empty(),
        "no traced frame was ever replayed ({severed} severs) — \
         widen the sever window"
    );
    for id in &replayed {
        assert!(
            minted.contains(id),
            "replayed frame carries unknown trace id {id:#x}"
        );
    }

    // Exactly once: for every traced id, B's protocol arrivals are at
    // most two (the invalidation and the commit update) — a replayed
    // tail that re-delivered confirmed messages would show up as extra
    // arrivals for the replayed ids.
    let mut arrivals: HashMap<u64, usize> = HashMap::new();
    for ev in events_b
        .iter()
        .filter(|ev| ev.kind == EventKind::ProtocolRecv)
    {
        *arrivals.entry(ev.trace_id).or_default() += 1;
    }
    for (&id, &n) in &arrivals {
        assert!(
            minted.contains(&id),
            "B saw protocol traffic with unknown trace id {id:#x}"
        );
        assert!(
            n <= 2,
            "trace {id:#x}: {n} protocol arrivals at B (replay double-delivered?)"
        );
    }

    // And the run stayed consistent throughout.
    let history = history.snapshot();
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated: {v}"));

    server_a.shutdown();
    server_b.shutdown();
}
