//! Keeps `docs/WIRE.md` honest: the opcode table in the document must
//! match `wire::opcode_table()` exactly — same names, same values, no
//! frame missing from either side. Renumbering, adding, or removing an
//! opcode without updating the doc fails here.

use cckvs_net::wire::opcode_table;
use std::path::Path;

/// Parses rows of the form `| \`0xNN\` | \`Name\` | ... |` out of the
/// document's opcode table.
fn doc_opcodes(markdown: &str) -> Vec<(String, u8)> {
    let mut out = Vec::new();
    for line in markdown.lines() {
        let Some(rest) = line.strip_prefix("| `0x") else {
            continue;
        };
        let Some((hex, rest)) = rest.split_once('`') else {
            continue;
        };
        let Ok(op) = u8::from_str_radix(hex.trim(), 16) else {
            panic!("opcode row with unparseable hex: {line:?}");
        };
        let name = rest
            .split('`')
            .nth(1)
            .unwrap_or_else(|| panic!("opcode row without a frame name: {line:?}"));
        out.push((name.to_string(), op));
    }
    out
}

#[test]
fn wire_doc_opcode_table_matches_the_code() {
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/WIRE.md");
    let markdown = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));
    let documented = doc_opcodes(&markdown);
    let actual: Vec<(String, u8)> = opcode_table()
        .into_iter()
        .map(|(name, op)| (name.to_string(), op))
        .collect();

    assert!(
        !documented.is_empty(),
        "docs/WIRE.md contains no parseable opcode rows — was the table reformatted?"
    );

    for (name, op) in &actual {
        assert!(
            documented.iter().any(|(n, o)| n == name && o == op),
            "opcode {name} = {op:#04x} exists in wire.rs but docs/WIRE.md \
             does not document it (or documents a different value)"
        );
    }
    for (name, op) in &documented {
        assert!(
            actual.iter().any(|(n, o)| n == name && o == op),
            "docs/WIRE.md documents {name} = {op:#04x} but wire.rs has no \
             such opcode — stale documentation"
        );
    }
    assert_eq!(
        documented.len(),
        actual.len(),
        "docs/WIRE.md documents a different number of opcodes than wire.rs exports"
    );

    // The doc table is sorted by opcode, like `opcode_table()` — keeps the
    // reference scannable.
    let mut sorted = documented.clone();
    sorted.sort_by_key(|&(_, op)| op);
    assert_eq!(
        documented, sorted,
        "docs/WIRE.md opcode rows are not in ascending opcode order"
    );
}
