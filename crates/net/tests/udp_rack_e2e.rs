//! The datagram fabric under fire: rack e2e on [`UdpTransport`] with
//! injected loss, duplication, and reordering.
//!
//! The generic rack matrix (`rack_e2e.rs` et al with `CCKVS_TRANSPORT=udp`)
//! proves the UDP backend behaves like TCP on a clean loopback. These tests
//! are the reason the backend exists: a [`FaultPlan`] drops, duplicates,
//! and reorders datagrams on every connection — client sessions, admin
//! traffic, and the peer mesh alike — and the rack must still serve a
//! linearizable history with zero lost acknowledged writes, because the
//! transport's sequence numbers, cumulative acks, and retransmission
//! pacer repair the fabric underneath the protocol.
//!
//! [`UdpTransport`]: cckvs_net::transport::UdpTransport

use cckvs_net::client::SharedHistory;
use cckvs_net::rack::{Rack, RackConfig};
use cckvs_net::transport::{FaultPlan, TransportConfig};
use cckvs_net::LoadBalancePolicy;
use consistency::messages::ConsistencyModel;
use std::collections::HashMap;
use std::sync::Arc;
use workload::{AccessDistribution, Dataset, Mix, OpKind, WorkloadGen};

const SESSIONS: u32 = 4;
const HOT_KEYS: u64 = 64;
const VALUE_SIZE: usize = 40;

fn lossy_rack(model: ConsistencyModel, plan: FaultPlan) -> Rack {
    let cfg = RackConfig::small(model, 3).with_transport(TransportConfig::udp_with_faults(plan));
    Rack::launch(cfg).expect("launch lossy rack")
}

/// The acceptance bar: a 3-node Lin rack on UDP with 5% drop + 5% dup +
/// 5% reorder on every link serves a per-key-linearizable history, and a
/// final sweep finds every key holding its last acknowledged write.
#[test]
fn lossy_udp_lin_rack_is_linearizable_with_zero_lost_writes() {
    let rack = lossy_rack(ConsistencyModel::Lin, FaultPlan::uniform(5, 0xBAD_FAB));
    let dataset = Dataset::new(2_000, VALUE_SIZE);
    let hot: Vec<(u64, Vec<u8>)> = (0..HOT_KEYS)
        .map(|rank| (dataset.key_of_rank(rank).0, vec![0u8; VALUE_SIZE]))
        .collect();
    rack.install_hot_set(&hot).expect("install hot set");

    let history = Arc::new(SharedHistory::new());
    let base = rack.client();
    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let base = base.clone();
            let history = Arc::clone(&history);
            let mut gen = WorkloadGen::new(
                &dataset,
                AccessDistribution::Zipfian { exponent: 0.99 },
                Mix::with_write_ratio(0.2),
                0xD06_F00D ^ u64::from(session),
            );
            std::thread::spawn(move || {
                let mut client = base
                    .session(session)
                    .policy(LoadBalancePolicy::RoundRobin)
                    .history(history)
                    .connect()
                    .expect("connect over lossy udp");
                // Write-partitioned keys: "the last acknowledged write" of
                // a key is well defined for the final sweep; reads stay
                // shared across sessions so the checker sees interleaving.
                let mut last_written: HashMap<u64, Vec<u8>> = HashMap::new();
                for seq in 0..400u64 {
                    let op = gen.next_op();
                    let owned = op.key.0 % u64::from(SESSIONS) == u64::from(session);
                    match op.kind {
                        OpKind::Put if owned => {
                            let mut value = Vec::with_capacity(VALUE_SIZE);
                            value.extend_from_slice(&session.to_le_bytes());
                            value.extend_from_slice(&seq.to_le_bytes());
                            client.put(op.key.0, &value).expect("put over lossy udp");
                            last_written.insert(op.key.0, value);
                        }
                        _ => {
                            client.get(op.key.0).expect("get over lossy udp");
                        }
                    }
                }
                last_written
            })
        })
        .collect();
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    for handle in handles {
        expected.extend(handle.join().expect("session thread"));
    }
    assert!(
        !expected.is_empty(),
        "workload produced no acknowledged writes"
    );

    let history = history.snapshot();
    assert!(history.len() > 500, "too few ops recorded under loss");
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated on lossy UDP: {v}"));
    history
        .check_per_key_lin()
        .unwrap_or_else(|v| panic!("per-key Lin violated on lossy UDP: {v}"));

    // Zero lost updates: the fabric dropped and reordered datagrams the
    // whole run, but an acknowledged write is an acknowledged write.
    let mut sweeper = rack
        .client()
        .session(SESSIONS + 1)
        .policy(LoadBalancePolicy::RoundRobin)
        .connect()
        .expect("connect sweeper");
    let mut lost = 0usize;
    for (&key, value) in &expected {
        let read = sweeper.get(key).expect("sweep get");
        if &read != value {
            lost += 1;
            eprintln!("lost update: key {key} holds {read:?}, expected {value:?}");
        }
    }
    assert_eq!(
        lost,
        0,
        "{lost}/{} keys lost their last acknowledged write",
        expected.len()
    );
    rack.shutdown();
}

/// SC on the same broken fabric: sticky sessions (the SC session
/// guarantee) must survive retransmitted and duplicated datagrams without
/// ever observing a key's versions out of order.
#[test]
fn lossy_udp_sc_rack_keeps_per_key_session_order() {
    let rack = lossy_rack(ConsistencyModel::Sc, FaultPlan::uniform(5, 0x5C_FAB));
    let dataset = Dataset::new(2_000, VALUE_SIZE);
    let hot: Vec<(u64, Vec<u8>)> = (0..HOT_KEYS)
        .map(|rank| (dataset.key_of_rank(rank).0, vec![0u8; VALUE_SIZE]))
        .collect();
    rack.install_hot_set(&hot).expect("install hot set");

    let history = Arc::new(SharedHistory::new());
    let base = rack.client();
    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let base = base.clone();
            let history = Arc::clone(&history);
            let mut gen = WorkloadGen::new(
                &dataset,
                AccessDistribution::Zipfian { exponent: 0.99 },
                Mix::with_write_ratio(0.2),
                0x5EA_F00D ^ u64::from(session),
            );
            std::thread::spawn(move || {
                let mut client = base
                    .session(session)
                    .policy(LoadBalancePolicy::Pinned(session as usize % 3))
                    .history(history)
                    .connect()
                    .expect("connect over lossy udp");
                for _ in 0..300u64 {
                    let op = gen.next_op();
                    match op.kind {
                        OpKind::Put => {
                            client
                                .put(op.key.0, &op.value_bytes(session, VALUE_SIZE))
                                .expect("put over lossy udp");
                        }
                        OpKind::Get => {
                            client.get(op.key.0).expect("get over lossy udp");
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("session thread");
    }
    let history = history.snapshot();
    assert!(history.len() > 400, "too few ops recorded under loss");
    history
        .check_per_key_sc()
        .unwrap_or_else(|v| panic!("per-key SC violated on lossy UDP: {v}"));
    rack.shutdown();
}

/// Duplication-heavy plan, batched client: a duplicated datagram must not
/// double-apply a batch (the replay layer already dedups by sequence
/// number), and cumulative acks must tolerate seeing the same ack twice.
#[test]
fn duplicated_datagrams_do_not_double_apply_batched_writes() {
    let plan = FaultPlan {
        drop_pct: 0,
        dup_pct: 25,
        reorder_pct: 10,
        seed: 0xD0_D0,
    };
    let rack = lossy_rack(ConsistencyModel::Lin, plan);
    rack.install_hot_set(&[(7, vec![0u8; 16])])
        .expect("install");
    let mut client = rack
        .client()
        .policy(LoadBalancePolicy::RoundRobin)
        .batching(cckvs_net::client::BatchConfig {
            max_ops: 4,
            ..cckvs_net::client::BatchConfig::default()
        })
        .connect()
        .expect("connect");
    for round in 0..32u64 {
        client
            .queue_put(7, format!("hot-{round:04}").as_bytes())
            .expect("queue put");
        client.queue_get(7).expect("queue get");
    }
    let outcomes = client.flush().expect("flush");
    assert_eq!(outcomes.len(), 64);
    assert_eq!(client.get(7).expect("final get"), b"hot-0031");
    rack.shutdown();
}
