//! ccKVS: a Scale-Out ccNUMA key-value store (the paper's §6 system).
//!
//! Each node of a ccKVS deployment combines
//!
//! * a shard of the back-end KVS ([`kvstore`]) served by a pool of KVS
//!   threads,
//! * an instance of the symmetric cache ([`symcache`]) holding the globally
//!   hottest keys, served by a pool of cache threads, and
//! * the fully distributed consistency protocols ([`consistency`]) that keep
//!   the caches coherent (per-key SC or per-key Lin).
//!
//! Clients load-balance requests across all nodes; cache hits are served
//! locally, cache misses fall through to the key's home node over the
//! (simulated) RDMA fabric.
//!
//! The crate offers two execution backends:
//!
//! * [`cluster`] — a **functional** multi-threaded cluster: every node's
//!   cache and KVS are real data structures accessed by real threads, and
//!   protocol messages flow through an asynchronous in-process "network"
//!   thread. Used to validate correctness (seqlocks, protocol interleavings,
//!   per-key SC/Lin histories) and by the examples.
//! * [`perf`] — a **performance** model: the same request-processing logic
//!   expressed as [`simnet`] node behaviours over the calibrated rack fabric,
//!   used by the benchmark harness to regenerate every figure of the paper's
//!   evaluation. It also implements the three baselines of §7.1
//!   (`Base-EREW`, `Base`, `Uniform`).

pub mod cluster;
pub mod config;
pub mod node;
pub mod perf;

pub use cluster::{Cluster, ClusterConfig, OpResult};
pub use config::{SystemConfig, SystemKind};
pub use node::{CacheGet, CachePut, CcNode, NodeConfig, Outgoing};
pub use perf::{run_experiment, ExperimentResult, PerfConfig};

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterConfig, OpResult};
    pub use crate::config::{SystemConfig, SystemKind};
    pub use crate::node::{CacheGet, CachePut, CcNode, NodeConfig, Outgoing};
    pub use crate::perf::{run_experiment, ExperimentResult, PerfConfig};
    pub use consistency::messages::ConsistencyModel;
    pub use workload::prelude::*;
}
