//! One ccKVS server node, independent of any transport.
//!
//! A [`CcNode`] combines the pieces every deployment backend needs on each
//! server — a [`SymmetricCache`] driven by the verified protocol state
//! machines, a [`NodeKvs`] shard, and the bookkeeping for blocking Lin
//! writes — while staying completely transport-agnostic: every operation
//! that would put protocol messages on the wire instead *returns* them as
//! [`Outgoing`] values for the caller to ship.
//!
//! Two transports drive this type today:
//!
//! * the in-process functional [`crate::cluster::Cluster`] (crossbeam
//!   channels with delivery jitter), and
//! * the real TCP serving layer in the `cckvs-net` crate (one OS process or
//!   thread per node, length-prefixed frames on loopback/LAN sockets).
//!
//! Keeping a single code path for both means the protocol behaviour the
//! checkers validate in-process is byte-for-byte the behaviour a networked
//! rack executes.

use consistency::engine::Destination;
use consistency::lamport::{NodeId, Timestamp};
use consistency::messages::{ConsistencyModel, ProtocolMsg};
use kvstore::{ConcurrencyModel, NodeKvs};
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use symcache::{ReadOutcome, SymmetricCache, WriteOutcome};
use workload::{KeyId, ShardMap};

/// Default number of KVS worker threads per node (the per-node shard
/// grain). Every deployment backend — functional cluster, networked rack,
/// standalone `cckvs-node` — derives its [`NodeConfig`] from this one
/// constant so the checkers validate the same grain the rack runs.
pub const DEFAULT_KVS_THREADS: usize = 4;

/// Configuration of one server node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Consistency model for the symmetric cache.
    pub model: ConsistencyModel,
    /// This node's id within the deployment.
    pub node: usize,
    /// Total number of server nodes.
    pub nodes: usize,
    /// Symmetric-cache capacity (hot keys).
    pub cache_capacity: usize,
    /// Back-end KVS capacity (objects).
    pub kvs_capacity: usize,
    /// Maximum value size in bytes.
    pub value_capacity: usize,
    /// Number of KVS worker threads (per-node shard grain).
    pub kvs_threads: usize,
}

impl NodeConfig {
    /// A small node suitable for tests and examples.
    pub fn small(model: ConsistencyModel, node: usize, nodes: usize) -> Self {
        Self {
            model,
            node,
            nodes,
            cache_capacity: 256,
            kvs_capacity: 4096,
            value_capacity: 64,
            kvs_threads: DEFAULT_KVS_THREADS,
        }
    }
}

/// A protocol message to be shipped by the transport, with the value bytes
/// to attach (updates carry their committed value on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Where the message goes.
    pub dest: Destination,
    /// The protocol message.
    pub msg: ProtocolMsg,
    /// Value bytes attached to `Update` messages.
    pub bytes: Option<Vec<u8>>,
}

/// Result of probing the local cache for a read (stalls resolved by
/// retrying internally; the caller only sees the terminal outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheGet {
    /// Cache hit: the value and its timestamp.
    Hit {
        /// Value bytes.
        value: Vec<u8>,
        /// Timestamp of the value.
        ts: Timestamp,
    },
    /// Not cached; the caller must go to the key's (possibly remote) home
    /// shard.
    Miss,
}

/// Result of probing the local cache for a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachePut {
    /// The write completed immediately (SC, or single-replica Lin); ship the
    /// returned messages (update broadcast).
    Done {
        /// Timestamp assigned to the write.
        ts: Timestamp,
        /// Update broadcast to ship.
        outgoing: Vec<Outgoing>,
    },
    /// The write is pending acknowledgements (Lin); ship the returned
    /// invalidations, then block on [`CcNode::wait_committed`].
    Pending {
        /// Timestamp assigned to the write.
        ts: Timestamp,
        /// Invalidation broadcast to ship.
        outgoing: Vec<Outgoing>,
    },
    /// Not cached; the caller must forward the write to the key's home node.
    Miss,
}

/// One transport-agnostic ccKVS server node.
pub struct CcNode {
    cfg: NodeConfig,
    cache: SymmetricCache,
    kvs: NodeKvs,
    shards: ShardMap,
    committed: Mutex<HashSet<(u64, Timestamp)>>,
    committed_cv: Condvar,
}

impl CcNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (node id outside the deployment,
    /// zero nodes).
    pub fn new(cfg: NodeConfig) -> Self {
        assert!(
            cfg.nodes > 0 && cfg.node < cfg.nodes,
            "node id within deployment"
        );
        Self {
            cfg,
            cache: SymmetricCache::new(
                cfg.model,
                NodeId(cfg.node as u8),
                cfg.nodes,
                cfg.cache_capacity,
                cfg.value_capacity,
            ),
            kvs: NodeKvs::with_value_capacity(
                ConcurrencyModel::Crcw,
                cfg.kvs_threads,
                cfg.kvs_capacity,
                cfg.value_capacity,
            ),
            shards: ShardMap::new(cfg.nodes, cfg.kvs_threads),
            committed: Mutex::new(HashSet::new()),
            committed_cv: Condvar::new(),
        }
    }

    /// The node configuration.
    pub fn config(&self) -> NodeConfig {
        self.cfg
    }

    /// This node's id.
    pub fn node(&self) -> usize {
        self.cfg.node
    }

    /// The consistency model in force.
    pub fn model(&self) -> ConsistencyModel {
        self.cfg.model
    }

    /// The symmetric cache (diagnostics).
    pub fn cache(&self) -> &SymmetricCache {
        &self.cache
    }

    /// The local KVS shard (diagnostics / seeding).
    pub fn kvs(&self) -> &NodeKvs {
        &self.kvs
    }

    /// The home node of `key` under the deployment's shard map.
    pub fn home_node(&self, key: u64) -> usize {
        self.shards.home_node(KeyId(key))
    }

    /// Whether this node is the home shard for `key`.
    pub fn is_home(&self, key: u64) -> bool {
        self.home_node(key) == self.cfg.node
    }

    /// Installs a hot key into the cache (cache fill at epoch start). If
    /// this node is the key's home shard, the value is also seeded into the
    /// back-end KVS (write-back target).
    ///
    /// Returns `false` if the cache or the home shard is full (the cache
    /// fill is undone in the latter case, so a failed install never leaves
    /// a cached key without its write-back target).
    pub fn install_hot(&self, key: u64, value: &[u8]) -> bool {
        if !self.cache.fill(key, value, 0) {
            return false;
        }
        if self.is_home(key) && self.kvs.put(key, value, 0).is_err() {
            self.cache.evict(key);
            return false;
        }
        true
    }

    /// Evicts a key from the cache (epoch change / failed-install rollback),
    /// returning whether it was cached. A modified value is written back to
    /// the local KVS if this node is the key's home (write-back, §4).
    pub fn evict_hot(&self, key: u64) -> bool {
        match self.cache.evict(key) {
            Some((value, ts)) => {
                if self.is_home(key) && ts != Timestamp::ZERO {
                    // Best effort: the shard held this key before install.
                    let _ = self.kvs.put_if_newer(0, key, &value, ts.clock, ts.writer.0);
                }
                true
            }
            None => false,
        }
    }

    /// Whether `key` is cached (by symmetry, on every node).
    pub fn is_cached(&self, key: u64) -> bool {
        self.cache.contains(key)
    }

    /// Probes the cache for a read, retrying internally while the entry is
    /// unreadable (invalidated under Lin).
    pub fn cache_get(&self, key: u64) -> CacheGet {
        let mut backoff = StallBackoff::new();
        loop {
            match self.cache.read(key) {
                ReadOutcome::Hit { value, ts } => return CacheGet::Hit { value, ts },
                ReadOutcome::Miss => return CacheGet::Miss,
                ReadOutcome::Stall => backoff.wait(),
            }
        }
    }

    /// Probes the cache for a write of `value` tagged `tag`, retrying
    /// internally while another local write to the key is in flight.
    pub fn cache_put(&self, key: u64, value: &[u8], tag: u64) -> CachePut {
        let mut backoff = StallBackoff::new();
        loop {
            match self.cache.write(key, value, tag) {
                WriteOutcome::Completed { ts, outgoing } => {
                    return CachePut::Done {
                        ts,
                        outgoing: attach(outgoing, Some(value)),
                    }
                }
                WriteOutcome::Pending { ts, outgoing } => {
                    return CachePut::Pending {
                        ts,
                        outgoing: attach(outgoing, None),
                    }
                }
                WriteOutcome::Miss => return CachePut::Miss,
                WriteOutcome::Stall => backoff.wait(),
            }
        }
    }

    /// Blocks until the pending Lin write `(key, ts)` started by
    /// [`CcNode::cache_put`] commits (the transport delivering the final ack
    /// signals this through [`CcNode::deliver`]).
    pub fn wait_committed(&self, key: u64, ts: Timestamp) {
        let mut committed = self.committed.lock();
        while !committed.remove(&(key, ts)) {
            self.committed_cv.wait(&mut committed);
        }
    }

    /// Delivers a protocol message received from a peer, returning the
    /// messages to ship in response. Lin commits triggered by a final ack
    /// are signalled to the blocked writer internally.
    pub fn deliver(&self, msg: &ProtocolMsg, bytes: Option<&[u8]>) -> Vec<Outgoing> {
        let out = self.cache.deliver(msg, bytes);
        if let Some(ts) = out.committed {
            self.committed.lock().insert((msg.key(), ts));
            self.committed_cv.notify_all();
        }
        let commit_value = out.commit_value;
        out.outgoing
            .into_iter()
            .map(|(dest, msg)| {
                let bytes = match msg {
                    ProtocolMsg::Update { .. } => commit_value.clone(),
                    _ => None,
                };
                Outgoing { dest, msg, bytes }
            })
            .collect()
    }

    /// Serves a cache-missing read against the local KVS shard (the caller
    /// routed the request here because this node is the key's home).
    pub fn kvs_get(&self, key: u64) -> Vec<u8> {
        self.kvs.get(key).map(|v| v.value).unwrap_or_default()
    }

    /// Applies a cache-missing write to the local KVS shard with Lamport
    /// ordering (`tag` as the clock, `writer` breaking ties).
    ///
    /// Errors (value over capacity, shard full) are returned rather than
    /// panicking: the inputs originate from clients, so transports must be
    /// able to answer with an error instead of losing a server thread.
    pub fn kvs_put(
        &self,
        key: u64,
        value: &[u8],
        tag: u32,
        writer: u8,
    ) -> Result<(), kvstore::KvError> {
        self.kvs
            .put_if_newer(0, key, value, tag, writer)
            .map(|_| ())
    }
}

/// Adaptive wait for stalled cache probes: yield while the resolution is
/// likely sub-microsecond (in-process delivery), then sleep so a stall that
/// waits on a network round-trip (the TCP backend's Lin invalidation →
/// update window) does not pin an OS thread at 100% CPU and starve the
/// very thread that must deliver the unblocking message.
struct StallBackoff {
    spins: u32,
}

impl StallBackoff {
    const YIELD_SPINS: u32 = 64;

    fn new() -> Self {
        Self { spins: 0 }
    }

    fn wait(&mut self) {
        if self.spins < Self::YIELD_SPINS {
            self.spins += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}

fn attach(outgoing: Vec<(Destination, ProtocolMsg)>, value: Option<&[u8]>) -> Vec<Outgoing> {
    outgoing
        .into_iter()
        .map(|(dest, msg)| {
            let bytes = match msg {
                ProtocolMsg::Update { .. } => value.map(<[u8]>::to_vec),
                _ => None,
            };
            Outgoing { dest, msg, bytes }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack(model: ConsistencyModel, nodes: usize) -> Vec<CcNode> {
        (0..nodes)
            .map(|n| CcNode::new(NodeConfig::small(model, n, nodes)))
            .collect()
    }

    /// Ships every outgoing message until quiescence (synchronous transport).
    fn pump(nodes: &[CcNode], from: usize, mut queue: Vec<Outgoing>) {
        let mut pending: Vec<(usize, Outgoing)> = queue.drain(..).map(|o| (from, o)).collect();
        while let Some((src, out)) = pending.pop() {
            let targets: Vec<usize> = match out.dest {
                Destination::Broadcast => (0..nodes.len()).filter(|&n| n != src).collect(),
                Destination::To(node) => vec![node.0 as usize],
            };
            for dst in targets {
                for next in nodes[dst].deliver(&out.msg, out.bytes.as_deref()) {
                    pending.push((dst, next));
                }
            }
        }
    }

    #[test]
    fn install_hot_seeds_only_the_home_shard() {
        let nodes = rack(ConsistencyModel::Sc, 3);
        let key = 42;
        for node in &nodes {
            assert!(node.install_hot(key, b"hot"));
        }
        let home = nodes[0].home_node(key);
        for (n, node) in nodes.iter().enumerate() {
            assert!(node.is_cached(key));
            assert_eq!(node.kvs().get(key).is_some(), n == home);
        }
    }

    #[test]
    fn sc_write_propagates_synchronously() {
        let nodes = rack(ConsistencyModel::Sc, 3);
        for node in &nodes {
            node.install_hot(7, b"old");
        }
        match nodes[1].cache_put(7, b"new", 9) {
            CachePut::Done { outgoing, .. } => pump(&nodes, 1, outgoing),
            other => panic!("expected immediate SC completion, got {other:?}"),
        }
        for node in &nodes {
            match node.cache_get(7) {
                CacheGet::Hit { value, .. } => assert_eq!(value, b"new"),
                other => panic!("expected hit, got {other:?}"),
            }
        }
    }

    #[test]
    fn lin_write_commits_after_acks_and_unblocks_waiter() {
        let nodes = rack(ConsistencyModel::Lin, 3);
        for node in &nodes {
            node.install_hot(7, b"old");
        }
        let (ts, outgoing) = match nodes[0].cache_put(7, b"new", 5) {
            CachePut::Pending { ts, outgoing } => (ts, outgoing),
            other => panic!("expected pending Lin write, got {other:?}"),
        };
        pump(&nodes, 0, outgoing);
        // All acks were delivered synchronously by pump, so the commit is
        // already recorded and wait_committed returns without blocking.
        nodes[0].wait_committed(7, ts);
        for node in &nodes {
            match node.cache_get(7) {
                CacheGet::Hit { value, ts: t } => {
                    assert_eq!(value, b"new");
                    assert_eq!(t, ts);
                }
                other => panic!("expected hit, got {other:?}"),
            }
        }
    }

    #[test]
    fn kvs_miss_path_orders_by_lamport_tag() {
        let nodes = rack(ConsistencyModel::Sc, 2);
        let node = &nodes[0];
        node.kvs_put(99, b"v1", 3, 0).unwrap();
        node.kvs_put(99, b"stale", 2, 1).unwrap();
        assert_eq!(node.kvs_get(99), b"v1");
        node.kvs_put(99, b"v2", 3, 1).unwrap();
        assert_eq!(node.kvs_get(99), b"v2");
        assert!(node.kvs_get(1234).is_empty());
    }
}
