//! One ccKVS server node, independent of any transport.
//!
//! A [`CcNode`] combines the pieces every deployment backend needs on each
//! server — a [`SymmetricCache`] driven by the verified protocol state
//! machines, a [`NodeKvs`] shard, and the bookkeeping for blocking Lin
//! writes — while staying completely transport-agnostic: every operation
//! that would put protocol messages on the wire instead *returns* them as
//! [`Outgoing`] values for the caller to ship.
//!
//! Two transports drive this type today:
//!
//! * the in-process functional [`crate::cluster::Cluster`] (crossbeam
//!   channels with delivery jitter), and
//! * the real TCP serving layer in the `cckvs-net` crate (one OS process or
//!   thread per node, length-prefixed frames on loopback/LAN sockets).
//!
//! Keeping a single code path for both means the protocol behaviour the
//! checkers validate in-process is byte-for-byte the behaviour a networked
//! rack executes.

use consistency::engine::Destination;
use consistency::lamport::{NodeId, Timestamp};
use consistency::messages::{ConsistencyModel, ProtocolMsg};
use kvstore::{ConcurrencyModel, KvError, NodeKvs};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use symcache::{EvictOutcome, ReadOutcome, SymmetricCache, WriteOutcome};
use workload::{KeyId, ShardMap};

/// Default number of KVS worker threads per node (the per-node shard
/// grain). Every deployment backend — functional cluster, networked rack,
/// standalone `cckvs-node` — derives its [`NodeConfig`] from this one
/// constant so the checkers validate the same grain the rack runs.
pub const DEFAULT_KVS_THREADS: usize = 4;

/// Configuration of one server node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Consistency model for the symmetric cache.
    pub model: ConsistencyModel,
    /// This node's id within the deployment.
    pub node: usize,
    /// Total number of server nodes.
    pub nodes: usize,
    /// Symmetric-cache capacity (hot keys).
    pub cache_capacity: usize,
    /// Back-end KVS capacity (objects).
    pub kvs_capacity: usize,
    /// Maximum value size in bytes.
    pub value_capacity: usize,
    /// Number of KVS worker threads (per-node shard grain).
    pub kvs_threads: usize,
}

impl NodeConfig {
    /// A small node suitable for tests and examples.
    pub fn small(model: ConsistencyModel, node: usize, nodes: usize) -> Self {
        Self {
            model,
            node,
            nodes,
            cache_capacity: 256,
            kvs_capacity: 4096,
            value_capacity: 64,
            kvs_threads: DEFAULT_KVS_THREADS,
        }
    }
}

/// A protocol message to be shipped by the transport, with the value bytes
/// to attach (updates carry their committed value on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Where the message goes.
    pub dest: Destination,
    /// The protocol message.
    pub msg: ProtocolMsg,
    /// Value bytes attached to `Update` messages. Shared, so a broadcast
    /// fanned out to N-1 peers clones a pointer per peer instead of the
    /// value allocation (matters once values exceed a few hundred bytes).
    pub bytes: Option<Arc<[u8]>>,
}

/// Outcome of evicting a key from the node's cache (epoch change, §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictHot {
    /// The key was not cached.
    NotCached,
    /// Evicted; the value never changed while cached, nothing to write back.
    Clean,
    /// Evicted; the dirty value was written back to the *local* KVS shard
    /// (this node is the key's home).
    WrittenBack {
        /// Timestamp the value was written back at.
        ts: Timestamp,
    },
    /// Evicted; this node is *not* the key's home, so the caller must ship
    /// the dirty value to the home shard (`WriteBack` RPC on the networked
    /// backend, direct shard access in the in-process cluster). Dropping it
    /// loses the last acknowledged write to the key.
    WriteBackRemote {
        /// The dirty value.
        value: Vec<u8>,
        /// Timestamp of the dirty value (versions the remote
        /// `put_if_newer`).
        ts: Timestamp,
    },
}

/// Result of probing the local cache for a read (stalls resolved by
/// retrying internally; the caller only sees the terminal outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheGet {
    /// Cache hit: the value and its timestamp.
    Hit {
        /// Value bytes.
        value: Vec<u8>,
        /// Timestamp of the value.
        ts: Timestamp,
    },
    /// Not cached; the caller must go to the key's (possibly remote) home
    /// shard.
    Miss,
}

/// Result of probing the local cache for a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachePut {
    /// The write completed immediately (SC, or single-replica Lin); ship the
    /// returned messages (update broadcast).
    Done {
        /// Timestamp assigned to the write.
        ts: Timestamp,
        /// Update broadcast to ship.
        outgoing: Vec<Outgoing>,
    },
    /// The write is pending acknowledgements (Lin); ship the returned
    /// invalidations, then block on [`CcNode::wait_committed`].
    Pending {
        /// Timestamp assigned to the write.
        ts: Timestamp,
        /// Invalidation broadcast to ship.
        outgoing: Vec<Outgoing>,
    },
    /// Not cached; the caller must forward the write to the key's home node.
    Miss,
}

/// A continuation registered for a pending Lin write, run when the final
/// acknowledgement commits it (see [`CcNode::on_committed`]).
pub type CommitHook = Box<dyn FnOnce() + Send>;

/// Commit bookkeeping shared between the blocking and continuation APIs.
/// One mutex guards both tables so registering a hook and firing a commit
/// cannot interleave into a lost wakeup.
#[derive(Default)]
struct CommitTable {
    /// Commits that fired before any waiter showed up (a blocking
    /// [`CcNode::wait_committed`] caller consumes these, and
    /// [`CcNode::on_committed`] fires immediately against them when the
    /// final ack raced ahead of registration).
    fired: HashSet<(u64, Timestamp)>,
    /// Continuations registered by event-loop transports, fired inline
    /// from the protocol-delivery path on the final ack.
    hooks: HashMap<(u64, Timestamp), CommitHook>,
}

/// One transport-agnostic ccKVS server node.
pub struct CcNode {
    cfg: NodeConfig,
    cache: SymmetricCache,
    kvs: NodeKvs,
    shards: ShardMap,
    committed: Mutex<CommitTable>,
    committed_cv: Condvar,
}

impl CcNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (node id outside the deployment,
    /// zero nodes).
    pub fn new(cfg: NodeConfig) -> Self {
        assert!(
            cfg.nodes > 0 && cfg.node < cfg.nodes,
            "node id within deployment"
        );
        Self {
            cfg,
            cache: SymmetricCache::new(
                cfg.model,
                NodeId(cfg.node as u8),
                cfg.nodes,
                cfg.cache_capacity,
                cfg.value_capacity,
            ),
            kvs: NodeKvs::with_value_capacity(
                ConcurrencyModel::Crcw,
                cfg.kvs_threads,
                cfg.kvs_capacity,
                cfg.value_capacity,
            ),
            shards: ShardMap::new(cfg.nodes, cfg.kvs_threads),
            committed: Mutex::new(CommitTable::default()),
            committed_cv: Condvar::new(),
        }
    }

    /// The node configuration.
    pub fn config(&self) -> NodeConfig {
        self.cfg
    }

    /// This node's id.
    pub fn node(&self) -> usize {
        self.cfg.node
    }

    /// The consistency model in force.
    pub fn model(&self) -> ConsistencyModel {
        self.cfg.model
    }

    /// The symmetric cache (diagnostics).
    pub fn cache(&self) -> &SymmetricCache {
        &self.cache
    }

    /// The local KVS shard (diagnostics / seeding).
    pub fn kvs(&self) -> &NodeKvs {
        &self.kvs
    }

    /// The home node of `key` under the deployment's shard map.
    pub fn home_node(&self, key: u64) -> usize {
        self.shards.home_node(KeyId(key))
    }

    /// Whether this node is the home shard for `key`.
    pub fn is_home(&self, key: u64) -> bool {
        self.home_node(key) == self.cfg.node
    }

    /// Installs a hot key into the cache (cache fill at epoch start) at the
    /// version `ts` its home shard stored it at — `Timestamp::ZERO` for a
    /// fresh dataset, the shard's stored version when a churning hot set
    /// re-installs a previously written key (the per-key clock must continue
    /// monotonically across install/evict cycles or later write-backs would
    /// be discarded as stale). If this node is the key's home shard, the
    /// value is also seeded into the back-end KVS (write-back target)
    /// without regressing a version the shard already holds.
    ///
    /// Returns `false` if the cache or the home shard is full (the cache
    /// fill is undone in the latter case, so a failed install never leaves
    /// a cached key without its write-back target).
    pub fn install_hot(&self, key: u64, value: &[u8], ts: Timestamp) -> bool {
        self.install(key, value, ts, false)
    }

    /// Installs a hot key in the *warming* state: protocol-active but
    /// invisible to client reads and writes until [`CcNode::activate_hot`].
    /// Deployment-wide installs under live traffic must warm every replica
    /// before activating any of them — a write committing against a
    /// half-installed hot set collects vacuous acknowledgements from the
    /// unfilled replicas, whose stale fills then shadow it.
    pub fn install_hot_warm(&self, key: u64, value: &[u8], ts: Timestamp) -> bool {
        self.install(key, value, ts, true)
    }

    fn install(&self, key: u64, value: &[u8], ts: Timestamp, warm: bool) -> bool {
        let filled = if warm {
            self.cache.fill_warm(key, value, 0, ts)
        } else {
            self.cache.fill_versioned(key, value, 0, ts)
        };
        if !filled {
            return false;
        }
        if self.is_home(key)
            && self
                .kvs
                .put_if_newer(0, key, value, ts.clock, ts.writer.0)
                .is_err()
        {
            self.cache.evict(key);
            return false;
        }
        true
    }

    /// Activates a warming hot key (see [`CcNode::install_hot_warm`]),
    /// returning whether the key was present.
    pub fn activate_hot(&self, key: u64) -> bool {
        self.cache.activate(key)
    }

    /// Evicts a key from the cache (epoch change / failed-install rollback).
    ///
    /// A value written while cached is *always* preserved: written back to
    /// the local KVS if this node is the key's home, returned as
    /// [`EvictHot::WriteBackRemote`] for the transport to ship to the home
    /// shard otherwise. (Earlier revisions silently discarded dirty values
    /// of non-home keys — the coherence-downgrade hazard of decoupling
    /// eviction from ownership.) If a local write is still collecting
    /// acknowledgements the eviction waits for it to commit first; peers
    /// that already dropped the key keep acknowledging invalidations, so
    /// the wait always resolves.
    pub fn evict_hot(&self, key: u64) -> EvictHot {
        let mut backoff = StallBackoff::new();
        loop {
            match self.cache.evict(key) {
                EvictOutcome::NotCached => return EvictHot::NotCached,
                EvictOutcome::Pending => backoff.wait(),
                EvictOutcome::Evicted { dirty: false, .. } => return EvictHot::Clean,
                EvictOutcome::Evicted {
                    value,
                    ts,
                    dirty: true,
                } => {
                    if self.is_home(key) {
                        let _ = self.write_back(key, &value, ts);
                        return EvictHot::WrittenBack { ts };
                    }
                    return EvictHot::WriteBackRemote { value, ts };
                }
            }
        }
    }

    /// Single-shot eviction probe for deterministic drivers: like
    /// [`CcNode::evict_hot`] but returns `None` instead of spinning in the
    /// internal backoff while a local write is still collecting
    /// acknowledgements. A single-threaded scheduler (the model checker)
    /// owns message delivery itself, so blocking here would wait on
    /// progress only the caller can make; it re-probes once the pending
    /// write has committed.
    pub fn try_evict_hot(&self, key: u64) -> Option<EvictHot> {
        match self.cache.evict(key) {
            EvictOutcome::NotCached => Some(EvictHot::NotCached),
            EvictOutcome::Pending => None,
            EvictOutcome::Evicted { dirty: false, .. } => Some(EvictHot::Clean),
            EvictOutcome::Evicted {
                value,
                ts,
                dirty: true,
            } => {
                if self.is_home(key) {
                    let _ = self.write_back(key, &value, ts);
                    Some(EvictHot::WrittenBack { ts })
                } else {
                    Some(EvictHot::WriteBackRemote { value, ts })
                }
            }
        }
    }

    /// Applies a write-back of an evicted dirty value to this node's KVS
    /// shard (this node is the key's home). Versioned: an older write-back
    /// racing with a newer one (every replica of a churning hot set evicts
    /// its own copy) is discarded. Returns whether the value was applied.
    pub fn write_back(&self, key: u64, value: &[u8], ts: Timestamp) -> Result<bool, KvError> {
        self.kvs.put_if_newer(0, key, value, ts.clock, ts.writer.0)
    }

    /// Whether `key` is cached (by symmetry, on every node).
    pub fn is_cached(&self, key: u64) -> bool {
        self.cache.contains(key)
    }

    /// Probes the cache for a read, retrying internally while the entry is
    /// unreadable (invalidated under Lin).
    pub fn cache_get(&self, key: u64) -> CacheGet {
        let mut backoff = StallBackoff::new();
        loop {
            match self.cache.read(key) {
                ReadOutcome::Hit { value, ts } => return CacheGet::Hit { value, ts },
                ReadOutcome::Miss => return CacheGet::Miss,
                ReadOutcome::Stall => backoff.wait(),
            }
        }
    }

    /// Single-shot cache read probe for deterministic drivers: like
    /// [`CcNode::cache_get`] but returns `None` instead of spinning in the
    /// internal backoff while the entry is invalidated under Lin. The model
    /// checker's scheduler delivers the unblocking update itself and
    /// re-probes; a thread that blocked here would deadlock it.
    pub fn try_cache_get(&self, key: u64) -> Option<CacheGet> {
        match self.cache.read(key) {
            ReadOutcome::Hit { value, ts } => Some(CacheGet::Hit { value, ts }),
            ReadOutcome::Miss => Some(CacheGet::Miss),
            ReadOutcome::Stall => None,
        }
    }

    /// Probes the cache for a write of `value` tagged `tag`, retrying
    /// internally while another local write to the key is in flight.
    pub fn cache_put(&self, key: u64, value: &[u8], tag: u64) -> CachePut {
        let mut backoff = StallBackoff::new();
        loop {
            match self.cache.write(key, value, tag) {
                WriteOutcome::Completed { ts, outgoing } => {
                    return CachePut::Done {
                        ts,
                        outgoing: attach(outgoing, Some(value)),
                    }
                }
                WriteOutcome::Pending { ts, outgoing } => {
                    return CachePut::Pending {
                        ts,
                        outgoing: attach(outgoing, None),
                    }
                }
                WriteOutcome::Miss => return CachePut::Miss,
                WriteOutcome::Stall => backoff.wait(),
            }
        }
    }

    /// Single-shot cache write probe for event-loop callers: like
    /// [`CcNode::cache_put`] but returns `None` instead of blocking in the
    /// internal backoff when the entry is stalled by another in-flight
    /// local write. A reactor shard must never wait for protocol progress
    /// it is itself responsible for delivering; callers route `None` (and
    /// `Miss`) to a thread that may block.
    pub fn try_cache_put(&self, key: u64, value: &[u8], tag: u64) -> Option<CachePut> {
        match self.cache.write(key, value, tag) {
            WriteOutcome::Completed { ts, outgoing } => Some(CachePut::Done {
                ts,
                outgoing: attach(outgoing, Some(value)),
            }),
            WriteOutcome::Pending { ts, outgoing } => Some(CachePut::Pending {
                ts,
                outgoing: attach(outgoing, None),
            }),
            WriteOutcome::Miss => Some(CachePut::Miss),
            WriteOutcome::Stall => None,
        }
    }

    /// Invalidations to reissue toward `peer` after its process crashed and
    /// restarted: one per local pending Lin write whose acknowledgement
    /// from that peer was never counted (the original invalidation — or
    /// its ack — may have died inside the peer's old process). The
    /// restarted peer acknowledges vacuously for keys it no longer caches,
    /// unblocking writers that would otherwise wait forever; per-node ack
    /// deduplication makes a reissue toward a peer that *did* ack a no-op.
    pub fn reissue_invalidations(&self, peer: NodeId) -> Vec<Outgoing> {
        attach(self.cache.reissue_invalidations(peer), None)
    }

    /// Blocks until the pending Lin write `(key, ts)` started by
    /// [`CcNode::cache_put`] commits (the transport delivering the final ack
    /// signals this through [`CcNode::deliver`]).
    pub fn wait_committed(&self, key: u64, ts: Timestamp) {
        let mut committed = self.committed.lock();
        while !committed.fired.remove(&(key, ts)) {
            self.committed_cv.wait(&mut committed);
        }
    }

    /// Registers a continuation for the pending Lin write `(key, ts)`
    /// started by [`CcNode::cache_put`] / [`CcNode::try_cache_put`]:
    /// instead of parking a thread in [`CcNode::wait_committed`], the hook
    /// runs as soon as the write's per-node ack bitmask
    /// ([`consistency::lin::PendingWrite`]) completes — inline on whatever
    /// thread delivers the final acknowledgement through
    /// [`CcNode::deliver`]. If the commit already fired (the final ack
    /// raced ahead of registration), the hook runs immediately on the
    /// calling thread. Each `(key, ts)` has exactly one waiter: a hook
    /// *or* a blocked `wait_committed` caller, never both.
    pub fn on_committed(&self, key: u64, ts: Timestamp, hook: CommitHook) {
        let mut committed = self.committed.lock();
        if committed.fired.remove(&(key, ts)) {
            drop(committed);
            hook();
        } else {
            committed.hooks.insert((key, ts), hook);
        }
    }

    /// Delivers a protocol message received from a peer, returning the
    /// messages to ship in response. Lin commits triggered by a final ack
    /// are signalled to the blocked writer internally — or, when the
    /// writer registered a continuation via [`CcNode::on_committed`], the
    /// hook runs here, on the delivery path, before this call returns.
    pub fn deliver(&self, msg: &ProtocolMsg, bytes: Option<&[u8]>) -> Vec<Outgoing> {
        let out = self.cache.deliver(msg, bytes);
        if let Some(ts) = out.committed {
            let mut committed = self.committed.lock();
            if let Some(hook) = committed.hooks.remove(&(msg.key(), ts)) {
                drop(committed);
                hook();
            } else {
                committed.fired.insert((msg.key(), ts));
                self.committed_cv.notify_all();
            }
        }
        // One shared allocation for the committed value; the update
        // broadcast fans it out to every peer by pointer.
        let commit_value: Option<Arc<[u8]>> = out.commit_value.map(Arc::from);
        out.outgoing
            .into_iter()
            .map(|(dest, msg)| {
                let bytes = match msg {
                    ProtocolMsg::Update { .. } => commit_value.clone(),
                    _ => None,
                };
                Outgoing { dest, msg, bytes }
            })
            .collect()
    }

    /// Serves a cache-missing read against the local KVS shard (the caller
    /// routed the request here because this node is the key's home).
    pub fn kvs_get(&self, key: u64) -> Vec<u8> {
        self.kvs.get(key).map(|v| v.value).unwrap_or_default()
    }

    /// Reads a key's value *and* stored version from the local KVS shard.
    /// The epoch coordinator fetches hot keys through this before installing
    /// them, so re-installed keys keep their Lamport clocks monotone.
    pub fn kvs_get_versioned(&self, key: u64) -> (Vec<u8>, Timestamp) {
        match self.kvs.get(key) {
            Some(v) => (v.value, Timestamp::new(v.version, NodeId(v.last_writer))),
            None => (Vec::new(), Timestamp::ZERO),
        }
    }

    /// Applies a cache-missing write to the local KVS shard with Lamport
    /// ordering (`tag` as the clock, `writer` breaking ties).
    ///
    /// Errors (value over capacity, shard full) are returned rather than
    /// panicking: the inputs originate from clients, so transports must be
    /// able to answer with an error instead of losing a server thread.
    pub fn kvs_put(
        &self,
        key: u64,
        value: &[u8],
        tag: u32,
        writer: u8,
    ) -> Result<(), kvstore::KvError> {
        self.kvs
            .put_if_newer(0, key, value, tag, writer)
            .map(|_| ())
    }
}

/// Adaptive wait for stalled cache probes: yield while the resolution is
/// likely sub-microsecond (in-process delivery), then sleep so a stall that
/// waits on a network round-trip (the TCP backend's Lin invalidation →
/// update window) does not pin an OS thread at 100% CPU and starve the
/// very thread that must deliver the unblocking message.
struct StallBackoff {
    spins: u32,
}

impl StallBackoff {
    const YIELD_SPINS: u32 = 64;

    fn new() -> Self {
        Self { spins: 0 }
    }

    fn wait(&mut self) {
        if self.spins < Self::YIELD_SPINS {
            self.spins += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}

fn attach(outgoing: Vec<(Destination, ProtocolMsg)>, value: Option<&[u8]>) -> Vec<Outgoing> {
    let shared: Option<Arc<[u8]>> = value.map(Arc::from);
    outgoing
        .into_iter()
        .map(|(dest, msg)| {
            let bytes = match msg {
                ProtocolMsg::Update { .. } => shared.clone(),
                _ => None,
            };
            Outgoing { dest, msg, bytes }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack(model: ConsistencyModel, nodes: usize) -> Vec<CcNode> {
        (0..nodes)
            .map(|n| CcNode::new(NodeConfig::small(model, n, nodes)))
            .collect()
    }

    /// Ships every outgoing message until quiescence (synchronous transport).
    fn pump(nodes: &[CcNode], from: usize, mut queue: Vec<Outgoing>) {
        let mut pending: Vec<(usize, Outgoing)> = queue.drain(..).map(|o| (from, o)).collect();
        while let Some((src, out)) = pending.pop() {
            let targets: Vec<usize> = match out.dest {
                Destination::Broadcast => (0..nodes.len()).filter(|&n| n != src).collect(),
                Destination::To(node) => vec![node.0 as usize],
            };
            for dst in targets {
                for next in nodes[dst].deliver(&out.msg, out.bytes.as_deref()) {
                    pending.push((dst, next));
                }
            }
        }
    }

    #[test]
    fn try_probes_report_stall_instead_of_blocking() {
        let nodes = rack(ConsistencyModel::Lin, 3);
        for node in &nodes {
            node.install_hot(7, b"old", Timestamp::ZERO);
        }
        // Start a Lin write but deliver nothing: the entry is pending.
        let outgoing = match nodes[1].try_cache_put(7, b"new", 9) {
            Some(CachePut::Pending { outgoing, .. }) => outgoing,
            other => panic!("expected pending Lin write, got {other:?}"),
        };
        // A second local write, an eviction and (on the invalidated peers,
        // once invalidations land) a read must all report "not now" rather
        // than spin: a deterministic single-threaded driver owns delivery.
        assert!(nodes[1].try_cache_put(7, b"newer", 10).is_none());
        assert!(nodes[1].try_evict_hot(7).is_none());
        pump(&nodes, 1, outgoing);
        // Committed: every probe resolves again.
        match nodes[2].try_cache_get(7) {
            Some(CacheGet::Hit { value, .. }) => assert_eq!(value, b"new"),
            other => panic!("expected hit after commit, got {other:?}"),
        }
        match nodes[1].try_evict_hot(7) {
            Some(EvictHot::WriteBackRemote { value, .. }) if !nodes[1].is_home(7) => {
                assert_eq!(value, b"new")
            }
            Some(EvictHot::WrittenBack { .. }) => assert!(nodes[1].is_home(7)),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        // Uncached key: a miss, not a stall.
        assert!(matches!(nodes[1].try_cache_get(999), Some(CacheGet::Miss)));
        assert!(matches!(
            nodes[1].try_evict_hot(999),
            Some(EvictHot::NotCached)
        ));
    }

    #[test]
    fn install_hot_seeds_only_the_home_shard() {
        let nodes = rack(ConsistencyModel::Sc, 3);
        let key = 42;
        for node in &nodes {
            assert!(node.install_hot(key, b"hot", Timestamp::ZERO));
        }
        let home = nodes[0].home_node(key);
        for (n, node) in nodes.iter().enumerate() {
            assert!(node.is_cached(key));
            assert_eq!(node.kvs().get(key).is_some(), n == home);
        }
    }

    #[test]
    fn sc_write_propagates_synchronously() {
        let nodes = rack(ConsistencyModel::Sc, 3);
        for node in &nodes {
            node.install_hot(7, b"old", Timestamp::ZERO);
        }
        match nodes[1].cache_put(7, b"new", 9) {
            CachePut::Done { outgoing, .. } => pump(&nodes, 1, outgoing),
            other => panic!("expected immediate SC completion, got {other:?}"),
        }
        for node in &nodes {
            match node.cache_get(7) {
                CacheGet::Hit { value, .. } => assert_eq!(value, b"new"),
                other => panic!("expected hit, got {other:?}"),
            }
        }
    }

    #[test]
    fn lin_write_commits_after_acks_and_unblocks_waiter() {
        let nodes = rack(ConsistencyModel::Lin, 3);
        for node in &nodes {
            node.install_hot(7, b"old", Timestamp::ZERO);
        }
        let (ts, outgoing) = match nodes[0].cache_put(7, b"new", 5) {
            CachePut::Pending { ts, outgoing } => (ts, outgoing),
            other => panic!("expected pending Lin write, got {other:?}"),
        };
        pump(&nodes, 0, outgoing);
        // All acks were delivered synchronously by pump, so the commit is
        // already recorded and wait_committed returns without blocking.
        nodes[0].wait_committed(7, ts);
        for node in &nodes {
            match node.cache_get(7) {
                CacheGet::Hit { value, ts: t } => {
                    assert_eq!(value, b"new");
                    assert_eq!(t, ts);
                }
                other => panic!("expected hit, got {other:?}"),
            }
        }
    }

    #[test]
    fn commit_hook_fires_on_the_final_ack_delivery() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let nodes = rack(ConsistencyModel::Lin, 3);
        for node in &nodes {
            node.install_hot(7, b"old", Timestamp::ZERO);
        }
        let (ts, outgoing) = match nodes[0].cache_put(7, b"new", 5) {
            CachePut::Pending { ts, outgoing } => (ts, outgoing),
            other => panic!("expected pending Lin write, got {other:?}"),
        };
        // Register the continuation before any ack arrives: it must fire
        // from inside the pump (the delivery path), not from a waiter.
        let fired = Arc::new(AtomicBool::new(false));
        let hook_fired = Arc::clone(&fired);
        nodes[0].on_committed(
            7,
            ts,
            Box::new(move || hook_fired.store(true, Ordering::SeqCst)),
        );
        assert!(!fired.load(Ordering::SeqCst));
        pump(&nodes, 0, outgoing);
        assert!(
            fired.load(Ordering::SeqCst),
            "the final ack must fire the registered continuation"
        );
    }

    #[test]
    fn commit_hook_registered_after_the_commit_fires_immediately() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let nodes = rack(ConsistencyModel::Lin, 3);
        for node in &nodes {
            node.install_hot(7, b"old", Timestamp::ZERO);
        }
        let (ts, outgoing) = match nodes[0].cache_put(7, b"new", 5) {
            CachePut::Pending { ts, outgoing } => (ts, outgoing),
            other => panic!("expected pending Lin write, got {other:?}"),
        };
        // All acks land before the registration (the race an event-loop
        // transport must survive): the hook runs on the registering thread.
        pump(&nodes, 0, outgoing);
        let fired = Arc::new(AtomicBool::new(false));
        let hook_fired = Arc::clone(&fired);
        nodes[0].on_committed(
            7,
            ts,
            Box::new(move || hook_fired.store(true, Ordering::SeqCst)),
        );
        assert!(
            fired.load(Ordering::SeqCst),
            "a hook registered after the commit must fire immediately"
        );
    }

    #[test]
    fn dirty_eviction_of_a_non_home_key_reaches_the_home_shard() {
        // Regression: evict_hot used to write back only when the evicting
        // node happened to be the key's home — a dirty value evicted
        // anywhere else was silently discarded.
        let nodes = rack(ConsistencyModel::Sc, 3);
        let key = 42;
        let home = nodes[0].home_node(key);
        let non_home = (home + 1) % nodes.len();
        for node in &nodes {
            assert!(node.install_hot(key, b"old", Timestamp::ZERO));
        }
        match nodes[non_home].cache_put(key, b"final-value", 9) {
            CachePut::Done { outgoing, .. } => pump(&nodes, non_home, outgoing),
            other => panic!("expected immediate SC completion, got {other:?}"),
        }
        // Evict on the non-home node: the dirty value must come back for
        // the transport to ship home.
        let (value, ts) = match nodes[non_home].evict_hot(key) {
            EvictHot::WriteBackRemote { value, ts } => (value, ts),
            other => panic!("expected remote write-back, got {other:?}"),
        };
        assert_eq!(value, b"final-value");
        assert!(nodes[home].write_back(key, &value, ts).expect("capacity"));
        assert_eq!(nodes[home].kvs_get(key), b"final-value");
        // The home node's own eviction writes back locally.
        match nodes[home].evict_hot(key) {
            EvictHot::WrittenBack { ts: t } => assert_eq!(t, ts),
            other => panic!("expected local write-back, got {other:?}"),
        }
        assert_eq!(nodes[home].kvs_get(key), b"final-value");
    }

    #[test]
    fn stale_write_back_loses_to_a_newer_one() {
        let nodes = rack(ConsistencyModel::Sc, 2);
        let key = 5;
        let home = nodes[0].home_node(key);
        let newer = Timestamp::new(7, consistency::lamport::NodeId(1));
        let older = Timestamp::new(3, consistency::lamport::NodeId(0));
        assert!(nodes[home].write_back(key, b"new", newer).unwrap());
        assert!(!nodes[home].write_back(key, b"old", older).unwrap());
        assert_eq!(nodes[home].kvs_get(key), b"new");
        let (_, ts) = nodes[home].kvs_get_versioned(key);
        assert_eq!(ts, newer);
    }

    #[test]
    fn lin_writer_commits_even_when_peers_evicted_the_key() {
        // During hot-set churn, replicas drop a key one by one; a writer
        // still collecting acks must not block forever because a peer
        // evicted the key before the invalidation arrived.
        let nodes = rack(ConsistencyModel::Lin, 3);
        for node in &nodes {
            node.install_hot(7, b"old", Timestamp::ZERO);
        }
        assert!(matches!(nodes[1].evict_hot(7), EvictHot::Clean));
        assert!(matches!(nodes[2].evict_hot(7), EvictHot::Clean));
        let (ts, outgoing) = match nodes[0].cache_put(7, b"new", 5) {
            CachePut::Pending { ts, outgoing } => (ts, outgoing),
            other => panic!("expected pending Lin write, got {other:?}"),
        };
        // Both peers answer the invalidation with an ack despite not
        // caching the key any more, so the write commits.
        pump(&nodes, 0, outgoing);
        nodes[0].wait_committed(7, ts);
        match nodes[0].evict_hot(7) {
            EvictHot::WriteBackRemote { value, .. } if !nodes[0].is_home(7) => {
                assert_eq!(value, b"new")
            }
            EvictHot::WrittenBack { .. } if nodes[0].is_home(7) => {
                assert_eq!(nodes[0].kvs_get(7), b"new")
            }
            other => panic!("dirty eviction lost the committed write: {other:?}"),
        }
    }

    #[test]
    fn kvs_miss_path_orders_by_lamport_tag() {
        let nodes = rack(ConsistencyModel::Sc, 2);
        let node = &nodes[0];
        node.kvs_put(99, b"v1", 3, 0).unwrap();
        node.kvs_put(99, b"stale", 2, 1).unwrap();
        assert_eq!(node.kvs_get(99), b"v1");
        node.kvs_put(99, b"v2", 3, 1).unwrap();
        assert_eq!(node.kvs_get(99), b"v2");
        assert!(node.kvs_get(1234).is_empty());
    }
}
