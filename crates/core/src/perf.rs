//! Performance model: ccKVS and the baselines as [`simnet`] node behaviours.
//!
//! The behaviours reproduce the request-processing paths of §6.1 over the
//! calibrated rack fabric:
//!
//! * every node runs a closed loop of client requests (clients keep a fixed
//!   number of requests outstanding per node, load-balanced as in §6);
//! * a request first occupies a *cache thread* (probe + protocol work), then
//!   either hits in the symmetric cache (served locally) or falls through to
//!   the key's home shard — locally on a *KVS thread*, or remotely via a
//!   request/response exchange over the fabric;
//! * cached writes trigger the consistency actions of the selected protocol:
//!   an update broadcast (SC) or an invalidation broadcast, acknowledgement
//!   collection and update broadcast (Lin), with credit-update messages
//!   batched as in §6.4;
//! * the baselines (`Base`, `Base-EREW`, `Uniform`) skip the cache entirely;
//!   `Base-EREW` additionally serialises each key's accesses on its owner
//!   core.
//!
//! Request coalescing (§8.5) batches cache-miss requests (and their
//! responses) destined to the same node into a single fabric packet.
//!
//! The absolute service-time constants are calibrated so that the 9-node,
//! α = 0.99 read-only configuration lands near the paper's operating point
//! (§8.1: Uniform ≈ 240 MRPS, ccKVS ≈ 690 MRPS); all trends then emerge from
//! the model rather than from curve fitting.

use crate::config::{SystemConfig, SystemKind};
use consistency::messages::ConsistencyModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{
    CompletionKind, Emit, Engine, FabricConfig, MessageSizes, NodeBehavior, Packet, ServerPool,
    SimStats, SimTime, TrafficClass, MICROSECOND,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use workload::{Dataset, ShardMap, ZipfGenerator};

/// Timer token that triggers the periodic coalescing flush.
const TOKEN_FLUSH: u64 = u64::MAX - 1;
/// Timer token that injects one new closed-loop client request (used to pace
/// the initial ramp-up so the measurement window is dominated by steady
/// state rather than a t = 0 burst).
const TOKEN_NEW_REQUEST: u64 = u64::MAX - 2;
/// Base for coalesced-batch identifiers (kept clear of request tokens).
const BATCH_TOKEN_BASE: u64 = 1 << 48;

/// Full description of one performance experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfConfig {
    /// The deployment to model.
    pub system: SystemConfig,
    /// Client requests kept outstanding per node (closed loop).
    pub inflight_per_node: usize,
    /// Coalescing factor for cache-miss traffic (`None` disables, §8.5).
    pub coalesce: Option<u32>,
    /// Simulated duration.
    pub horizon: SimTime,
    /// Cache-thread service time per request (probe / protocol work).
    pub cache_service_ns: SimTime,
    /// KVS-thread service time per access.
    pub kvs_service_ns: SimTime,
    /// Send one credit update per this many consistency messages received.
    pub credit_batch: u64,
    /// Seed for the workload randomness.
    pub seed: u64,
}

impl PerfConfig {
    /// Default experiment parameters used throughout the figure harness.
    pub fn paper_default(system: SystemConfig) -> Self {
        Self {
            system,
            inflight_per_node: 1024,
            coalesce: None,
            horizon: 200 * MICROSECOND,
            cache_service_ns: 150,
            kvs_service_ns: 220,
            credit_batch: 16,
            seed: 0xCC45,
        }
    }

    /// Short-horizon variant for unit tests (debug builds are slow).
    pub fn quick(system: SystemConfig) -> Self {
        Self {
            horizon: 80 * MICROSECOND,
            inflight_per_node: 512,
            ..Self::paper_default(system)
        }
    }

    /// Enables request coalescing with the given factor (builder style).
    pub fn with_coalescing(mut self, factor: u32) -> Self {
        self.coalesce = Some(factor);
        self
    }

    /// Sets the closed-loop concurrency (builder style).
    pub fn with_inflight(mut self, inflight: usize) -> Self {
        self.inflight_per_node = inflight;
        self
    }
}

/// Measured outcome of one experiment, in the units the paper reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Label of the system variant.
    pub label: String,
    /// Cluster-wide throughput in million requests per second.
    pub throughput_mrps: f64,
    /// Throughput served by cache hits (reads + writes that hit), MRPS.
    pub hit_mrps: f64,
    /// Throughput served by the KVS (local + remote misses), MRPS.
    pub miss_mrps: f64,
    /// Average per-node network utilisation in Gb/s (sent direction).
    pub per_node_gbps: f64,
    /// Fraction of fabric bytes per traffic class (Fig. 11).
    pub traffic_fraction: BTreeMap<TrafficClass, f64>,
    /// Mean end-to-end request latency in microseconds.
    pub avg_latency_us: f64,
    /// 95th-percentile request latency in microseconds.
    pub p95_latency_us: f64,
    /// Total completed requests in the simulated window.
    pub completions: u64,
}

impl ExperimentResult {
    fn from_stats(label: String, mut stats: SimStats) -> Self {
        let hit = stats.completions_of(CompletionKind::CacheHit)
            + stats.completions_of(CompletionKind::CacheWrite);
        let miss = stats.completions_of(CompletionKind::LocalMiss)
            + stats.completions_of(CompletionKind::RemoteMiss)
            + stats.completions_of(CompletionKind::MissWrite);
        let seconds = stats.elapsed as f64 / 1e9;
        let p95 = stats.latency.percentile(95.0);
        Self {
            label,
            throughput_mrps: stats.throughput_mrps(),
            hit_mrps: hit as f64 / 1e6 / seconds,
            miss_mrps: miss as f64 / 1e6 / seconds,
            per_node_gbps: stats.per_node_gbps(),
            traffic_fraction: stats.traffic_breakdown(),
            avg_latency_us: stats.latency.mean() / 1e3,
            p95_latency_us: p95 as f64 / 1e3,
            completions: stats.total_completions(),
        }
    }

    /// Fraction of fabric bytes spent on cache-miss traffic (req + resp).
    pub fn miss_traffic_fraction(&self) -> f64 {
        self.traffic_fraction
            .get(&TrafficClass::MissRequest)
            .copied()
            .unwrap_or(0.0)
            + self
                .traffic_fraction
                .get(&TrafficClass::MissResponse)
                .copied()
                .unwrap_or(0.0)
    }

    /// Fraction of fabric bytes spent on consistency actions.
    pub fn consistency_traffic_fraction(&self) -> f64 {
        [
            TrafficClass::Update,
            TrafficClass::Invalidation,
            TrafficClass::Ack,
        ]
        .iter()
        .map(|c| self.traffic_fraction.get(c).copied().unwrap_or(0.0))
        .sum()
    }

    /// Fraction of fabric bytes spent on flow control (credit updates).
    pub fn flow_control_fraction(&self) -> f64 {
        self.traffic_fraction
            .get(&TrafficClass::CreditUpdate)
            .copied()
            .unwrap_or(0.0)
    }
}

/// A deferred action executed when its timer fires.
#[derive(Debug, Clone, Default)]
struct Deferred {
    sends: Vec<Packet>,
    completions: Vec<(u64, CompletionKind)>,
}

/// State of one outstanding client request at its serving node.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    issued_at: SimTime,
    is_write: bool,
}

/// A pending Lin write awaiting invalidation acknowledgements.
#[derive(Debug, Clone, Copy)]
struct LinPending {
    acks: u32,
    needed: u32,
}

/// The per-node behaviour implementing ccKVS or one of the baselines.
struct PerfNode {
    id: usize,
    cfg: PerfConfig,
    sizes: MessageSizes,
    dataset: Dataset,
    shards: ShardMap,
    zipf: Option<ZipfGenerator>,
    rng: StdRng,
    cache_pool: ServerPool,
    /// CRCW: a single pool; EREW: one single-server pool per KVS thread.
    kvs_pools: Vec<ServerPool>,
    next_req: u64,
    next_timer: u64,
    next_batch: u64,
    outstanding: HashMap<u64, Outstanding>,
    deferred: HashMap<u64, Deferred>,
    lin_pending: HashMap<u64, LinPending>,
    /// Per-destination queues of (request token) awaiting coalesced dispatch.
    coalesce_queues: Vec<VecDeque<u64>>,
    /// Contents of coalesced batches we sent, keyed by batch token.
    batch_store: HashMap<u64, Vec<u64>>,
    consistency_msgs_seen: u64,
}

impl PerfNode {
    fn new(id: usize, cfg: PerfConfig, shared_zipf: Option<ZipfGenerator>) -> Self {
        let sys = cfg.system;
        let erew = sys.kind == SystemKind::BaseErew;
        let kvs_pools = if erew {
            (0..sys.kvs_threads).map(|_| ServerPool::new(1)).collect()
        } else {
            vec![ServerPool::new(sys.kvs_threads)]
        };
        Self {
            id,
            cfg,
            sizes: MessageSizes::for_value_size(sys.value_size as u32),
            dataset: Dataset::new(sys.dataset_keys, sys.value_size),
            shards: ShardMap::new(sys.nodes, sys.kvs_threads),
            zipf: shared_zipf,
            rng: StdRng::seed_from_u64(cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9)),
            cache_pool: ServerPool::new(sys.cache_threads),
            kvs_pools,
            next_req: 0,
            next_timer: 0,
            next_batch: BATCH_TOKEN_BASE + ((id as u64) << 40),
            outstanding: HashMap::new(),
            deferred: HashMap::new(),
            lin_pending: HashMap::new(),
            coalesce_queues: vec![VecDeque::new(); sys.nodes],
            batch_store: HashMap::new(),
            consistency_msgs_seen: 0,
        }
    }

    fn cache_model(&self) -> Option<ConsistencyModel> {
        match self.cfg.system.kind {
            SystemKind::CcKvs(m) => Some(m),
            _ => None,
        }
    }

    fn draw_rank(&mut self) -> u64 {
        match &self.zipf {
            Some(z) => z.sample(&mut self.rng),
            None => self.rng.gen_range(0..self.cfg.system.dataset_keys),
        }
    }

    fn home_of(&self, rank: u64) -> (usize, usize) {
        let key = self.dataset.key_of_rank(rank);
        self.shards.home_core(key)
    }

    fn defer(&mut self, now: SimTime, at: SimTime, action: Deferred) -> Vec<Emit> {
        self.next_timer += 1;
        let token = self.next_timer;
        self.deferred.insert(token, action);
        vec![Emit::Timer {
            delay: at.saturating_sub(now).max(1),
            token,
        }]
    }

    /// Broadcast of a consistency message class to every other node.
    fn broadcast(&self, class: TrafficClass, token: u64) -> Vec<Packet> {
        let bytes = self.sizes.of(class);
        (0..self.cfg.system.nodes)
            .filter(|&n| n != self.id)
            .map(|dst| Packet::single(self.id, dst, bytes, class, token))
            .collect()
    }

    /// Issues one new closed-loop client request.
    fn issue_request(&mut self, now: SimTime) -> Vec<Emit> {
        let req = ((self.id as u64) << 48) | self.next_req;
        self.next_req += 1;
        let rank = self.draw_rank();
        let is_write = self.rng.gen::<f64>() < self.cfg.system.write_ratio;
        self.outstanding.insert(
            req,
            Outstanding {
                issued_at: now,
                is_write,
            },
        );

        let cached =
            self.cfg.system.kind.has_cache() && rank < self.cfg.system.cache_entries as u64;
        // Every request first occupies a cache thread (request reception,
        // probe). Baselines use the same pool as their RPC-handling cost.
        let probe_done = self.cache_pool.enqueue(now, self.cfg.cache_service_ns);

        if cached {
            if !is_write {
                return self.defer(
                    now,
                    probe_done,
                    Deferred {
                        sends: Vec::new(),
                        completions: vec![(req, CompletionKind::CacheHit)],
                    },
                );
            }
            return match self.cache_model().expect("cached implies ccKVS") {
                ConsistencyModel::Sc => {
                    // Non-blocking: update broadcast + immediate completion.
                    let sends = self.broadcast(TrafficClass::Update, req);
                    self.defer(
                        now,
                        probe_done,
                        Deferred {
                            sends,
                            completions: vec![(req, CompletionKind::CacheWrite)],
                        },
                    )
                }
                ConsistencyModel::Lin => {
                    // Blocking: invalidations now, completion when all acks
                    // have arrived (handled in `on_packet`).
                    self.lin_pending.insert(
                        req,
                        LinPending {
                            acks: 0,
                            needed: (self.cfg.system.nodes - 1) as u32,
                        },
                    );
                    let sends = self.broadcast(TrafficClass::Invalidation, req);
                    self.defer(
                        now,
                        probe_done,
                        Deferred {
                            sends,
                            completions: Vec::new(),
                        },
                    )
                }
            };
        }

        // Cache miss (or no cache): go to the key's home shard.
        let (home, owner_thread) = self.home_of(rank);
        if home == self.id {
            let pool = if self.cfg.system.kind == SystemKind::BaseErew {
                &mut self.kvs_pools[owner_thread]
            } else {
                &mut self.kvs_pools[0]
            };
            let kvs_done = pool.enqueue(probe_done, self.cfg.kvs_service_ns);
            let kind = if is_write {
                CompletionKind::MissWrite
            } else {
                CompletionKind::LocalMiss
            };
            return self.defer(
                now,
                kvs_done,
                Deferred {
                    sends: Vec::new(),
                    completions: vec![(req, kind)],
                },
            );
        }

        // Remote access over the fabric.
        if let Some(factor) = self.cfg.coalesce {
            self.coalesce_queues[home].push_back(req);
            if self.coalesce_queues[home].len() as u32 >= factor {
                let sends = self.flush_destination(home);
                return self.defer(
                    now,
                    probe_done,
                    Deferred {
                        sends,
                        completions: Vec::new(),
                    },
                );
            }
            return Vec::new();
        }
        let token = (req << 8) | owner_thread as u64;
        let pkt = Packet::single(
            self.id,
            home,
            self.sizes.miss_request,
            TrafficClass::MissRequest,
            token,
        );
        self.defer(
            now,
            probe_done,
            Deferred {
                sends: vec![pkt],
                completions: Vec::new(),
            },
        )
    }

    /// Builds the coalesced miss-request packet for one destination.
    fn flush_destination(&mut self, dst: usize) -> Vec<Packet> {
        let queued: Vec<u64> = self.coalesce_queues[dst].drain(..).collect();
        if queued.is_empty() {
            return Vec::new();
        }
        let n = queued.len() as u32;
        self.next_batch += 1;
        let batch = self.next_batch;
        self.batch_store.insert(batch, queued);
        vec![Packet {
            src: self.id,
            dst,
            bytes: self.sizes.coalesced(TrafficClass::MissRequest, n),
            class: TrafficClass::MissRequest,
            messages: n,
            token: batch,
        }]
    }

    /// Completes a request and starts its closed-loop successor.
    fn complete(&mut self, now: SimTime, req: u64, kind: CompletionKind) -> Vec<Emit> {
        let Some(out) = self.outstanding.remove(&req) else {
            return Vec::new();
        };
        let kind = match (kind, out.is_write) {
            (CompletionKind::LocalMiss | CompletionKind::RemoteMiss, true) => {
                CompletionKind::MissWrite
            }
            (k, _) => k,
        };
        let mut emits = vec![Emit::Complete {
            kind,
            issued_at: out.issued_at,
        }];
        emits.extend(self.issue_request(now));
        emits
    }

    /// Sends a credit update every `credit_batch` consistency messages, back
    /// to the peer that sent the current one (§6.4 batched flow control).
    fn maybe_credit(&mut self, peer: usize) -> Vec<Packet> {
        self.consistency_msgs_seen += 1;
        if self
            .consistency_msgs_seen
            .is_multiple_of(self.cfg.credit_batch)
        {
            vec![Packet::single(
                self.id,
                peer,
                self.sizes.credit_update,
                TrafficClass::CreditUpdate,
                0,
            )]
        } else {
            Vec::new()
        }
    }
}

impl NodeBehavior for PerfNode {
    fn on_start(&mut self, now: SimTime) -> Vec<Emit> {
        // Ramp the closed loop up over the first few microseconds instead of
        // issuing every outstanding request at t = 0; the huge one-off burst
        // would otherwise dominate a short measurement window.
        let ramp = 10 * MICROSECOND;
        let mut emits: Vec<Emit> = (0..self.cfg.inflight_per_node)
            .map(|i| Emit::Timer {
                delay: 1 + (i as SimTime * ramp) / self.cfg.inflight_per_node as SimTime,
                token: TOKEN_NEW_REQUEST,
            })
            .collect();
        let _ = now;
        if self.cfg.coalesce.is_some() {
            emits.push(Emit::Timer {
                delay: 2 * MICROSECOND,
                token: TOKEN_FLUSH,
            });
        }
        emits
    }

    fn on_timer(&mut self, now: SimTime, token: u64) -> Vec<Emit> {
        if token == TOKEN_NEW_REQUEST {
            return self.issue_request(now);
        }
        if token == TOKEN_FLUSH {
            let mut emits = Vec::new();
            for dst in 0..self.cfg.system.nodes {
                for pkt in self.flush_destination(dst) {
                    emits.push(Emit::Send(pkt));
                }
            }
            emits.push(Emit::Timer {
                delay: 2 * MICROSECOND,
                token: TOKEN_FLUSH,
            });
            return emits;
        }
        let Some(action) = self.deferred.remove(&token) else {
            return Vec::new();
        };
        let mut emits: Vec<Emit> = action.sends.into_iter().map(Emit::Send).collect();
        for (req, kind) in action.completions {
            emits.extend(self.complete(now, req, kind));
        }
        emits
    }

    fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> Vec<Emit> {
        match pkt.class {
            TrafficClass::MissRequest => {
                // Serve the (possibly coalesced) remote access on KVS threads
                // and reply once the last access completes.
                let erew = self.cfg.system.kind == SystemKind::BaseErew;
                let mut done = now;
                for i in 0..pkt.messages {
                    let pool = if erew {
                        // Single (non-coalesced) requests carry the owner
                        // core in the low token bits; coalesced batches are
                        // not used with EREW and fall back to round-robin.
                        let idx = if pkt.messages == 1 {
                            (pkt.token & 0xFF) as usize % self.kvs_pools.len()
                        } else {
                            ((pkt.token as usize).wrapping_add(i as usize)) % self.kvs_pools.len()
                        };
                        &mut self.kvs_pools[idx]
                    } else {
                        &mut self.kvs_pools[0]
                    };
                    done = done.max(pool.enqueue(now, self.cfg.kvs_service_ns));
                }
                let reply = Packet {
                    src: self.id,
                    dst: pkt.src,
                    bytes: self
                        .sizes
                        .coalesced(TrafficClass::MissResponse, pkt.messages),
                    class: TrafficClass::MissResponse,
                    messages: pkt.messages,
                    token: pkt.token,
                };
                self.defer(
                    now,
                    done,
                    Deferred {
                        sends: vec![reply],
                        completions: Vec::new(),
                    },
                )
            }
            TrafficClass::MissResponse => {
                if pkt.messages > 1 {
                    let reqs = self.batch_store.remove(&pkt.token).unwrap_or_default();
                    let mut emits = Vec::new();
                    for req in reqs {
                        emits.extend(self.complete(now, req, CompletionKind::RemoteMiss));
                    }
                    emits
                } else {
                    self.complete(now, pkt.token >> 8, CompletionKind::RemoteMiss)
                }
            }
            TrafficClass::Invalidation => {
                // Cache-thread work, then acknowledge back to the writer.
                let done = self.cache_pool.enqueue(now, self.cfg.cache_service_ns);
                let ack = Packet::single(
                    self.id,
                    pkt.src,
                    self.sizes.ack,
                    TrafficClass::Ack,
                    pkt.token,
                );
                let mut emits = self.defer(
                    now,
                    done,
                    Deferred {
                        sends: vec![ack],
                        completions: Vec::new(),
                    },
                );
                emits.extend(self.maybe_credit(pkt.src).into_iter().map(Emit::Send));
                emits
            }
            TrafficClass::Ack => {
                let mut emits: Vec<Emit> = self
                    .maybe_credit(pkt.src)
                    .into_iter()
                    .map(Emit::Send)
                    .collect();
                let req = pkt.token;
                if let Some(pending) = self.lin_pending.get_mut(&req) {
                    pending.acks += 1;
                    if pending.acks >= pending.needed {
                        self.lin_pending.remove(&req);
                        // Commit: broadcast the value and complete the write.
                        for upd in self.broadcast(TrafficClass::Update, req) {
                            emits.push(Emit::Send(upd));
                        }
                        emits.extend(self.complete(now, req, CompletionKind::CacheWrite));
                    }
                }
                emits
            }
            TrafficClass::Update => {
                // Apply the update on a cache thread; no reply.
                let _ = self.cache_pool.enqueue(now, self.cfg.cache_service_ns);
                self.maybe_credit(pkt.src)
                    .into_iter()
                    .map(Emit::Send)
                    .collect()
            }
            TrafficClass::CreditUpdate => Vec::new(),
        }
    }
}

/// Runs one experiment and reports the measured quantities.
///
/// # Panics
///
/// Panics if the configuration does not validate.
pub fn run_experiment(cfg: &PerfConfig) -> ExperimentResult {
    cfg.system.validate().expect("invalid system configuration");
    // Share the Zipfian normalisation constant across nodes (it is the only
    // expensive part of workload setup).
    let shared_zipf = cfg
        .system
        .skew
        .map(|alpha| ZipfGenerator::new(cfg.system.dataset_keys, alpha));
    let nodes: Vec<PerfNode> = (0..cfg.system.nodes)
        .map(|id| PerfNode::new(id, *cfg, shared_zipf.clone()))
        .collect();
    let fabric = FabricConfig::paper_rack(cfg.system.nodes);
    let stats = Engine::new(nodes, fabric).run(cfg.horizon);
    ExperimentResult::from_stats(cfg.system.kind.label().to_string(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: SystemKind) -> PerfConfig {
        let mut system = SystemConfig::paper_default(kind);
        // Small dataset keeps Zipf setup cheap in debug test runs.
        system.dataset_keys = 100_000;
        system.cache_entries = 100;
        PerfConfig::quick(system)
    }

    #[test]
    fn cckvs_outperforms_base_on_read_only_skew() {
        let cckvs = run_experiment(&quick(SystemKind::CcKvs(ConsistencyModel::Sc)));
        let base = run_experiment(&quick(SystemKind::Base));
        let erew = run_experiment(&quick(SystemKind::BaseErew));
        assert!(
            cckvs.throughput_mrps > 2.0 * base.throughput_mrps,
            "ccKVS {} vs Base {}",
            cckvs.throughput_mrps,
            base.throughput_mrps
        );
        assert!(
            base.throughput_mrps > erew.throughput_mrps,
            "Base {} vs Base-EREW {}",
            base.throughput_mrps,
            erew.throughput_mrps
        );
        // The observed hit share should track the analytic expectation for
        // this cache fraction and skew (Fig. 3).
        let expected = quick(SystemKind::CcKvs(ConsistencyModel::Sc))
            .system
            .expected_hit_ratio();
        let observed = cckvs.hit_mrps / (cckvs.hit_mrps + cckvs.miss_mrps);
        assert!(
            (observed - expected).abs() < 0.15,
            "observed hit share {observed:.2} vs expected {expected:.2}"
        );
    }

    #[test]
    fn uniform_bounds_the_baselines() {
        let uniform = run_experiment(&quick(SystemKind::Uniform));
        let base = run_experiment(&quick(SystemKind::Base));
        assert!(
            uniform.throughput_mrps >= 0.9 * base.throughput_mrps,
            "Uniform {} should be at least on par with Base {}",
            uniform.throughput_mrps,
            base.throughput_mrps
        );
    }

    #[test]
    fn writes_cost_more_under_lin_than_sc() {
        let sc = run_experiment(&PerfConfig {
            system: quick(SystemKind::CcKvs(ConsistencyModel::Sc))
                .system
                .with_write_ratio(0.05),
            ..quick(SystemKind::CcKvs(ConsistencyModel::Sc))
        });
        let lin = run_experiment(&PerfConfig {
            system: quick(SystemKind::CcKvs(ConsistencyModel::Lin))
                .system
                .with_write_ratio(0.05),
            ..quick(SystemKind::CcKvs(ConsistencyModel::Lin))
        });
        let sc_1pct = run_experiment(&PerfConfig {
            system: quick(SystemKind::CcKvs(ConsistencyModel::Sc))
                .system
                .with_write_ratio(0.01),
            ..quick(SystemKind::CcKvs(ConsistencyModel::Sc))
        });
        let read_only = run_experiment(&quick(SystemKind::CcKvs(ConsistencyModel::Sc)));
        assert!(
            sc.throughput_mrps >= lin.throughput_mrps,
            "SC {} vs Lin {}",
            sc.throughput_mrps,
            lin.throughput_mrps
        );
        assert!(read_only.throughput_mrps > sc.throughput_mrps);
        // Consistency traffic appears only when there are writes and grows
        // with the write ratio.
        assert!(read_only.consistency_traffic_fraction() < 1e-9);
        assert!(sc.consistency_traffic_fraction() > sc_1pct.consistency_traffic_fraction());
        assert!(lin.consistency_traffic_fraction() > 0.0);
        assert!(
            lin.flow_control_fraction() < 0.05,
            "credit batching keeps flow control negligible"
        );
    }

    #[test]
    fn coalescing_improves_small_object_throughput() {
        let plain = run_experiment(&quick(SystemKind::CcKvs(ConsistencyModel::Sc)));
        let coalesced =
            run_experiment(&quick(SystemKind::CcKvs(ConsistencyModel::Sc)).with_coalescing(8));
        assert!(
            coalesced.throughput_mrps > 1.3 * plain.throughput_mrps,
            "coalesced {} vs plain {}",
            coalesced.throughput_mrps,
            plain.throughput_mrps
        );
    }

    #[test]
    fn latency_grows_with_load() {
        let light =
            run_experiment(&quick(SystemKind::CcKvs(ConsistencyModel::Sc)).with_inflight(16));
        let heavy =
            run_experiment(&quick(SystemKind::CcKvs(ConsistencyModel::Sc)).with_inflight(1024));
        assert!(heavy.throughput_mrps > light.throughput_mrps);
        assert!(heavy.p95_latency_us >= light.p95_latency_us);
        assert!(light.avg_latency_us > 0.0);
    }
}
