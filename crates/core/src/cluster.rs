//! Functional in-process ccKVS cluster (correctness backend).
//!
//! Every node is a full [`CcNode`] — a real [`symcache::SymmetricCache`]
//! (seqlock-backed, CRCW) plus a real [`kvstore::NodeKvs`] shard — shared
//! with the networked serving layer in `cckvs-net`. Protocol messages travel
//! through asynchronous "network" threads that deliver them with optional
//! jitter, so protocol interleavings comparable to a real rack (reordered
//! acks, racing invalidations, late updates) actually occur. Client
//! operations can be issued concurrently from many threads; every operation
//! on a cached key is recorded in a [`History`] that the consistency
//! checkers validate (per-key SC / per-key Lin, §5.1).

use crate::node::{
    CacheGet, CachePut, CcNode, EvictHot, NodeConfig, Outgoing, DEFAULT_KVS_THREADS,
};
use consistency::engine::Destination;
use consistency::history::{History, OpRecord, RecordKind};
use consistency::lamport::Timestamp;
use consistency::messages::{ConsistencyModel, ProtocolMsg};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a functional cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Consistency model for the symmetric caches.
    pub model: ConsistencyModel,
    /// Number of server nodes.
    pub nodes: usize,
    /// Symmetric-cache capacity (hot keys) per node.
    pub cache_capacity: usize,
    /// Back-end KVS capacity (objects) per node.
    pub kvs_capacity: usize,
    /// Maximum value size in bytes.
    pub value_capacity: usize,
    /// Number of asynchronous network-delivery threads (≥ 2 recommended so
    /// messages can genuinely reorder).
    pub network_threads: usize,
    /// Artificially jitter deliveries (spin for a pseudo-random short while)
    /// to widen the space of interleavings exercised.
    pub jitter: bool,
}

impl ClusterConfig {
    /// A small deployment suitable for tests and examples.
    pub fn small(model: ConsistencyModel) -> Self {
        Self {
            model,
            nodes: 3,
            cache_capacity: 256,
            kvs_capacity: 4096,
            value_capacity: 64,
            network_threads: 2,
            jitter: true,
        }
    }

    /// The per-node configuration this cluster config induces.
    pub fn node_config(&self, node: usize) -> NodeConfig {
        NodeConfig {
            model: self.model,
            node,
            nodes: self.nodes,
            cache_capacity: self.cache_capacity,
            kvs_capacity: self.kvs_capacity,
            value_capacity: self.value_capacity,
            kvs_threads: DEFAULT_KVS_THREADS,
        }
    }
}

/// The result of a client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// A get returned this value (empty if the key was never written).
    Value(Vec<u8>),
    /// A put completed.
    Done,
}

enum NetEvent {
    Deliver {
        dst: usize,
        msg: ProtocolMsg,
        /// Shared with every other delivery of the same broadcast.
        bytes: Option<Arc<[u8]>>,
    },
    Shutdown,
}

struct ClusterInner {
    cfg: ClusterConfig,
    nodes: Vec<CcNode>,
    net_tx: Sender<NetEvent>,
    clock: AtomicU64,
    tags: AtomicU64,
    history: Mutex<History>,
    session_seq: Mutex<HashMap<u32, u64>>,
}

impl ClusterInner {
    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn next_session_seq(&self, session: u32) -> u64 {
        let mut map = self.session_seq.lock();
        let seq = map.entry(session).or_insert(0);
        let out = *seq;
        *seq += 1;
        out
    }

    fn send(&self, from: usize, outgoing: Outgoing) {
        let Outgoing { dest, msg, bytes } = outgoing;
        match dest {
            Destination::Broadcast => {
                for dst in 0..self.cfg.nodes {
                    if dst != from {
                        self.net_tx
                            .send(NetEvent::Deliver {
                                dst,
                                msg,
                                bytes: bytes.clone(),
                            })
                            .expect("network thread alive");
                    }
                }
            }
            Destination::To(node) => {
                self.net_tx
                    .send(NetEvent::Deliver {
                        dst: node.0 as usize,
                        msg,
                        bytes,
                    })
                    .expect("network thread alive");
            }
        }
    }

    fn deliver(&self, dst: usize, msg: &ProtocolMsg, bytes: Option<&[u8]>) {
        for outgoing in self.nodes[dst].deliver(msg, bytes) {
            self.send(dst, outgoing);
        }
    }
}

/// A running functional cluster.
pub struct Cluster {
    inner: Arc<ClusterInner>,
    net_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Cluster {
    /// Starts a cluster with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero nodes or network threads).
    pub fn start(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0 && cfg.network_threads > 0);
        let (net_tx, net_rx): (Sender<NetEvent>, Receiver<NetEvent>) = unbounded();
        let nodes = (0..cfg.nodes)
            .map(|id| CcNode::new(cfg.node_config(id)))
            .collect();
        let inner = Arc::new(ClusterInner {
            cfg,
            nodes,
            net_tx,
            clock: AtomicU64::new(1),
            tags: AtomicU64::new(1),
            history: Mutex::new(History::new()),
            session_seq: Mutex::new(HashMap::new()),
        });
        let net_handles = (0..cfg.network_threads)
            .map(|t| {
                let inner = Arc::clone(&inner);
                let rx = net_rx.clone();
                std::thread::Builder::new()
                    .name(format!("cckvs-net-{t}"))
                    .spawn(move || {
                        let mut jitter_state: u64 = 0x243F_6A88_85A3_08D3 ^ t as u64;
                        while let Ok(event) = rx.recv() {
                            match event {
                                NetEvent::Shutdown => break,
                                NetEvent::Deliver { dst, msg, bytes } => {
                                    if inner.cfg.jitter {
                                        // Cheap xorshift-based spin to perturb
                                        // delivery order without sleeping.
                                        jitter_state ^= jitter_state << 13;
                                        jitter_state ^= jitter_state >> 7;
                                        jitter_state ^= jitter_state << 17;
                                        for _ in 0..(jitter_state % 256) {
                                            std::hint::spin_loop();
                                        }
                                    }
                                    inner.deliver(dst, &msg, bytes.as_deref());
                                }
                            }
                        }
                    })
                    .expect("spawn network thread")
            })
            .collect();
        Self { inner, net_handles }
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.inner.cfg
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.inner.cfg.nodes
    }

    /// Seeds a key into its home node's back-end KVS.
    pub fn seed_kvs(&self, key: u64, value: &[u8]) {
        let home = self.inner.nodes[0].home_node(key);
        self.inner.nodes[home]
            .kvs()
            .put(key, value, 0)
            .expect("seeding within capacity");
    }

    /// Installs a hot key into the symmetric cache of every node (what the
    /// cache coordinator does at the end of an epoch, §4). The key's home
    /// shard is seeded with the value as the write-back target; a key the
    /// home shard already stores is installed at its stored version so the
    /// per-key clock stays monotone across install/evict cycles.
    pub fn install_hot_key(&self, key: u64, value: &[u8]) {
        let home = self.inner.nodes[0].home_node(key);
        let (_, ts) = self.inner.nodes[home].kvs_get_versioned(key);
        for node in &self.inner.nodes {
            assert!(node.install_hot(key, value, ts), "cache capacity exceeded");
        }
    }

    /// Evicts a key from every node's symmetric cache (epoch change). Dirty
    /// values are written back to the key's home shard — directly here (the
    /// nodes share one address space), over the `WriteBack` RPC in the
    /// networked rack. Every replica's copy is offered to the home shard
    /// with its version; `put_if_newer` keeps the newest.
    pub fn evict_hot_key(&self, key: u64) {
        let home = self.inner.nodes[0].home_node(key);
        for node in &self.inner.nodes {
            if let EvictHot::WriteBackRemote { value, ts } = node.evict_hot(key) {
                let _ = self.inner.nodes[home].write_back(key, &value, ts);
            }
        }
    }

    /// Whether a key is currently cached (checked on node 0; by symmetry all
    /// nodes agree).
    pub fn is_cached(&self, key: u64) -> bool {
        self.inner.nodes[0].is_cached(key)
    }

    /// Executes a get on behalf of `session`, directed at `node` (clients
    /// load-balance across nodes; any node can serve any key).
    pub fn get(&self, session: u32, node: usize, key: u64) -> OpResult {
        let inner = &self.inner;
        let invoked_at = inner.now();
        match inner.nodes[node].cache_get(key) {
            CacheGet::Hit { value, ts } => {
                let completed_at = inner.now();
                let seq = inner.next_session_seq(session);
                inner.history.lock().record(OpRecord {
                    session,
                    key,
                    kind: RecordKind::Get {
                        value: value_tag_of(&value),
                    },
                    ts,
                    invoked_at,
                    completed_at,
                    session_seq: seq,
                });
                OpResult::Value(value)
            }
            CacheGet::Miss => {
                // Fall through to the (possibly remote) home shard.
                let home = inner.nodes[node].home_node(key);
                OpResult::Value(inner.nodes[home].kvs_get(key))
            }
        }
    }

    /// Executes a put on behalf of `session`, directed at `node`.
    pub fn put(&self, session: u32, node: usize, key: u64, value: &[u8]) -> OpResult {
        let inner = &self.inner;
        let invoked_at = inner.now();
        let tag = inner.tags.fetch_add(1, Ordering::Relaxed);
        match inner.nodes[node].cache_put(key, value, tag) {
            CachePut::Done { ts, outgoing } => {
                for out in outgoing {
                    inner.send(node, out);
                }
                self.record_put(session, key, value, ts, invoked_at);
                OpResult::Done
            }
            CachePut::Pending { ts, outgoing } => {
                for out in outgoing {
                    inner.send(node, out);
                }
                // Blocking write (Lin): wait until the commit is signalled
                // by the network thread that delivered the last ack.
                inner.nodes[node].wait_committed(key, ts);
                self.record_put(session, key, value, ts, invoked_at);
                OpResult::Done
            }
            CachePut::Miss => {
                // Forward to the home node, which performs the write.
                let home = inner.nodes[node].home_node(key);
                inner.nodes[home]
                    .kvs_put(key, value, tag as u32, node as u8)
                    .expect("miss-path write within KVS capacity");
                OpResult::Done
            }
        }
    }

    fn record_put(&self, session: u32, key: u64, value: &[u8], ts: Timestamp, invoked_at: u64) {
        let inner = &self.inner;
        let completed_at = inner.now();
        let seq = inner.next_session_seq(session);
        inner.history.lock().record(OpRecord {
            session,
            key,
            kind: RecordKind::Put {
                value: value_tag_of(value),
            },
            ts,
            invoked_at,
            completed_at,
            session_seq: seq,
        });
    }

    /// A snapshot of the recorded history of operations on cached keys.
    pub fn history(&self) -> History {
        self.inner.history.lock().clone()
    }

    /// Waits for the in-flight protocol traffic to drain (best effort: the
    /// network queue is unbounded and single-stage, so an empty queue plus a
    /// short grace period means quiescence for test purposes).
    pub fn quiesce(&self) {
        while !self.inner.net_tx.is_empty() {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    /// Reads a key's value directly from one node's cache, bypassing the
    /// protocol (diagnostics; returns `None` on a miss or unreadable entry).
    pub fn peek_cache(&self, node: usize, key: u64) -> Option<Vec<u8>> {
        match self.inner.nodes[node].cache().read(key) {
            symcache::ReadOutcome::Hit { value, .. } => Some(value),
            _ => None,
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for _ in 0..self.net_handles.len() {
            let _ = self.inner.net_tx.send(NetEvent::Shutdown);
        }
        for handle in self.net_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Derives the 64-bit tag recorded in the history for a read value. Writers
/// record the tag they wrote; readers must record the same number for the
/// same bytes, so the checkers can match reads to writes. Values written by
/// the cluster always carry their tag in the first 8 bytes when they are
/// cluster-generated; seeded values fall back to a hash.
pub fn value_tag_of(value: &[u8]) -> u64 {
    if value.len() >= 8 {
        u64::from_le_bytes(value[..8].try_into().expect("8 bytes"))
    } else {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in value {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(model: ConsistencyModel) -> Cluster {
        let cluster = Cluster::start(ClusterConfig::small(model));
        for key in 0..8u64 {
            cluster.install_hot_key(key, &0u64.to_le_bytes());
        }
        cluster
    }

    #[test]
    fn cached_reads_hit_on_every_node() {
        let cluster = start(ConsistencyModel::Sc);
        for node in 0..cluster.nodes() {
            match cluster.get(0, node, 3) {
                OpResult::Value(v) => assert_eq!(v, 0u64.to_le_bytes()),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(cluster.is_cached(3));
    }

    #[test]
    fn sc_write_propagates_to_all_caches() {
        let cluster = start(ConsistencyModel::Sc);
        cluster.put(1, 0, 5, &42u64.to_le_bytes());
        cluster.quiesce();
        for node in 0..cluster.nodes() {
            assert_eq!(
                cluster.peek_cache(node, 5).expect("readable"),
                42u64.to_le_bytes(),
                "node {node} did not receive the update"
            );
        }
    }

    #[test]
    fn lin_write_is_visible_everywhere_once_it_returns() {
        let cluster = start(ConsistencyModel::Lin);
        cluster.put(1, 2, 5, &7u64.to_le_bytes());
        // Under Lin the put returns only after every replica acknowledged the
        // invalidation, so a subsequent read anywhere must *not* return the
        // old value once the update lands; reads of an invalid entry block
        // until the update arrives.
        for node in 0..cluster.nodes() {
            match cluster.get(2, node, 5) {
                OpResult::Value(v) => assert_eq!(v, 7u64.to_le_bytes()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn evicting_a_dirty_hot_key_writes_back_to_the_home_shard() {
        // Regression for the dirty-eviction bug: a value written through the
        // cache must survive eviction no matter which nodes are evicted, and
        // reads fall through to the home shard afterwards.
        let cluster = start(ConsistencyModel::Sc);
        let key = 3;
        cluster.put(0, 1, key, &99u64.to_le_bytes());
        cluster.quiesce();
        cluster.evict_hot_key(key);
        assert!(!cluster.is_cached(key));
        for node in 0..cluster.nodes() {
            match cluster.get(0, node, key) {
                OpResult::Value(v) => assert_eq!(
                    v,
                    99u64.to_le_bytes(),
                    "write lost after eviction (read via node {node})"
                ),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Re-install from the home shard: the value and version survive the
        // round trip, so cached reads resume where the hot set left off.
        cluster.install_hot_key(key, &99u64.to_le_bytes());
        assert!(cluster.is_cached(key));
        cluster.put(0, 2, key, &123u64.to_le_bytes());
        cluster.quiesce();
        cluster.evict_hot_key(key);
        match cluster.get(0, 0, key) {
            OpResult::Value(v) => assert_eq!(v, 123u64.to_le_bytes()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn uncached_keys_fall_through_to_the_home_shard() {
        let cluster = start(ConsistencyModel::Sc);
        cluster.seed_kvs(1_000, b"cold-val");
        assert!(!cluster.is_cached(1_000));
        match cluster.get(0, 1, 1_000) {
            OpResult::Value(v) => assert_eq!(v, b"cold-val"),
            other => panic!("unexpected {other:?}"),
        }
        cluster.put(0, 2, 1_000, b"new-cold");
        match cluster.get(0, 0, 1_000) {
            OpResult::Value(v) => assert_eq!(v, b"new-cold"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_sessions_produce_consistent_histories() {
        for model in [ConsistencyModel::Sc, ConsistencyModel::Lin] {
            let cluster = Arc::new(start(model));
            let handles: Vec<_> = (0..4u32)
                .map(|session| {
                    let cluster = Arc::clone(&cluster);
                    std::thread::spawn(move || {
                        for i in 0..200u64 {
                            // Per-key SC is a per-session guarantee through the
                            // replica the session talks to: asynchronous update
                            // propagation does not provide monotonic reads when a
                            // session hops between replicas, so SC sessions stay
                            // sticky. Lin is a real-time (global) guarantee, so
                            // Lin sessions deliberately spread across nodes.
                            let node = match model {
                                ConsistencyModel::Sc => session as usize % cluster.nodes(),
                                ConsistencyModel::Lin => {
                                    (session as u64 + i) as usize % cluster.nodes()
                                }
                            };
                            let key = i % 4;
                            if (i + u64::from(session)) % 3 == 0 {
                                let mut value = [0u8; 16];
                                value[..8]
                                    .copy_from_slice(&(u64::from(session) << 32 | i).to_le_bytes());
                                cluster.put(session, node, key, &value);
                            } else {
                                cluster.get(session, node, key);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            cluster.quiesce();
            let history = cluster.history();
            assert!(history.len() >= 800);
            history
                .check_per_key_sc()
                .unwrap_or_else(|v| panic!("{model:?}: SC violated: {v}"));
            if model == ConsistencyModel::Lin {
                history
                    .check_per_key_lin()
                    .unwrap_or_else(|v| panic!("Lin violated: {v}"));
            }
        }
    }
}
