//! Deployment configuration shared by both execution backends.

use consistency::messages::ConsistencyModel;

/// Which system variant to run (§7.1, "Evaluated Systems").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// ccKVS with symmetric caches kept consistent by the given protocol.
    CcKvs(ConsistencyModel),
    /// The FaSST-style NUMA-abstraction baseline with the KVS partitioned at
    /// server granularity (CRCW).
    Base,
    /// The baseline with the KVS partitioned at core granularity (EREW),
    /// i.e. stock-MICA style.
    BaseErew,
    /// The `Base` design under a *uniform* access distribution — the upper
    /// bound of the baseline designs.
    Uniform,
}

impl SystemKind {
    /// Label used in figures and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::CcKvs(ConsistencyModel::Sc) => "ccKVS-SC",
            SystemKind::CcKvs(ConsistencyModel::Lin) => "ccKVS-Lin",
            SystemKind::Base => "Base",
            SystemKind::BaseErew => "Base-EREW",
            SystemKind::Uniform => "Uniform",
        }
    }

    /// Whether this variant deploys symmetric caches.
    pub fn has_cache(&self) -> bool {
        matches!(self, SystemKind::CcKvs(_))
    }
}

/// A complete description of a deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Which system to run.
    pub kind: SystemKind,
    /// Number of server nodes (the paper's rack has 9).
    pub nodes: usize,
    /// Cache threads per node (receive client requests, serve the cache).
    pub cache_threads: usize,
    /// KVS threads per node (serve the back-end store).
    pub kvs_threads: usize,
    /// Number of distinct keys in the dataset.
    pub dataset_keys: u64,
    /// Value size in bytes (40 / 256 / 1024 in the paper).
    pub value_size: usize,
    /// Symmetric-cache capacity in keys (the paper uses 0.1 % of the
    /// dataset). Ignored by the baselines.
    pub cache_entries: usize,
    /// Zipfian skew exponent; `None` means a uniform access distribution.
    pub skew: Option<f64>,
    /// Fraction of operations that are writes.
    pub write_ratio: f64,
}

impl SystemConfig {
    /// The paper's default 9-node configuration for a given system, scaled
    /// down in dataset size (the shape of every result depends only on the
    /// cache *fraction* and skew, not the absolute key count).
    pub fn paper_default(kind: SystemKind) -> Self {
        Self {
            kind,
            nodes: 9,
            cache_threads: 16,
            kvs_threads: 20,
            dataset_keys: 1_000_000,
            value_size: 40,
            cache_entries: 1_000,
            skew: match kind {
                SystemKind::Uniform => None,
                _ => Some(0.99),
            },
            write_ratio: 0.0,
        }
    }

    /// Sets the write ratio (builder style).
    pub fn with_write_ratio(mut self, write_ratio: f64) -> Self {
        self.write_ratio = write_ratio;
        self
    }

    /// Sets the skew exponent (builder style).
    pub fn with_skew(mut self, skew: Option<f64>) -> Self {
        self.skew = skew;
        self
    }

    /// Sets the value size (builder style).
    pub fn with_value_size(mut self, value_size: usize) -> Self {
        self.value_size = value_size;
        self
    }

    /// Sets the node count (builder style).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// The cache size as a fraction of the dataset.
    pub fn cache_fraction(&self) -> f64 {
        self.cache_entries as f64 / self.dataset_keys as f64
    }

    /// The expected symmetric-cache hit ratio for this configuration
    /// (Fig. 3 / §7.1).
    pub fn expected_hit_ratio(&self) -> f64 {
        if !self.kind.has_cache() {
            return 0.0;
        }
        match self.skew {
            Some(alpha) => {
                symcache::expected_hit_rate(self.dataset_keys, self.cache_entries as u64, alpha)
            }
            None => self.cache_fraction(),
        }
    }

    /// Basic sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("a deployment needs at least one node".into());
        }
        if self.cache_threads == 0 || self.kvs_threads == 0 {
            return Err("thread pools must be non-empty".into());
        }
        if self.dataset_keys == 0 {
            return Err("the dataset must contain keys".into());
        }
        if self.kind.has_cache() && self.cache_entries == 0 {
            return Err("ccKVS needs a non-empty symmetric cache".into());
        }
        if !(0.0..=1.0).contains(&self.write_ratio) {
            return Err(format!("write ratio {} outside [0,1]", self.write_ratio));
        }
        if let Some(a) = self.skew {
            if !(0.0..2.0).contains(&a) {
                return Err(format!("unsupported skew exponent {a}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(SystemKind::CcKvs(ConsistencyModel::Sc).label(), "ccKVS-SC");
        assert_eq!(
            SystemKind::CcKvs(ConsistencyModel::Lin).label(),
            "ccKVS-Lin"
        );
        assert_eq!(SystemKind::Base.label(), "Base");
        assert_eq!(SystemKind::BaseErew.label(), "Base-EREW");
        assert_eq!(SystemKind::Uniform.label(), "Uniform");
    }

    #[test]
    fn paper_default_validates_for_every_system() {
        for kind in [
            SystemKind::CcKvs(ConsistencyModel::Sc),
            SystemKind::CcKvs(ConsistencyModel::Lin),
            SystemKind::Base,
            SystemKind::BaseErew,
            SystemKind::Uniform,
        ] {
            let cfg = SystemConfig::paper_default(kind);
            assert!(cfg.validate().is_ok(), "{kind:?} default invalid");
            assert!((cfg.cache_fraction() - 0.001).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_hit_ratio_tracks_skew() {
        let sc = SystemConfig::paper_default(SystemKind::CcKvs(ConsistencyModel::Sc));
        let h99 = sc.expected_hit_ratio();
        assert!(
            h99 > 0.5,
            "0.1% cache at α=0.99 should exceed 50% hits: {h99}"
        );
        let h90 = sc.with_skew(Some(0.90)).expected_hit_ratio();
        assert!(h90 < h99);
        let base = SystemConfig::paper_default(SystemKind::Base);
        assert_eq!(base.expected_hit_ratio(), 0.0, "baselines have no cache");
        let uniform_cache = sc.with_skew(None).expected_hit_ratio();
        assert!((uniform_cache - 0.001).abs() < 1e-9);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let good = SystemConfig::paper_default(SystemKind::Base);
        assert!(good.with_nodes(0).validate().is_err());
        assert!(good.with_write_ratio(2.0).validate().is_err());
        let mut bad = good;
        bad.kvs_threads = 0;
        assert!(bad.validate().is_err());
        let mut bad = SystemConfig::paper_default(SystemKind::CcKvs(ConsistencyModel::Sc));
        bad.cache_entries = 0;
        assert!(bad.validate().is_err());
        assert!(good.with_skew(Some(5.0)).validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::paper_default(SystemKind::Base)
            .with_nodes(20)
            .with_write_ratio(0.05)
            .with_value_size(1024)
            .with_skew(Some(1.01));
        assert_eq!(cfg.nodes, 20);
        assert_eq!(cfg.write_ratio, 0.05);
        assert_eq!(cfg.value_size, 1024);
        assert_eq!(cfg.skew, Some(1.01));
    }
}
