//! Operation mixes and the combined workload generator.
//!
//! The paper evaluates read-only workloads and workloads with "modest" write
//! ratios (0–5 %, with 0.2 % highlighted as Facebook's reported ratio and 1 %
//! as the headline configuration).

use crate::keyspace::{Dataset, KeyId};
use crate::zipf::ZipfGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How keys are drawn from the dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessDistribution {
    /// Zipfian (power-law) popularity with the given exponent `α`.
    Zipfian {
        /// Skew exponent; the paper uses 0.90, 0.99 (default) and 1.01.
        exponent: f64,
    },
    /// Uniform popularity — the paper's `Uniform` upper-bound baseline.
    Uniform,
}

impl AccessDistribution {
    /// The YCSB default used throughout the paper's evaluation.
    pub fn ycsb_default() -> Self {
        AccessDistribution::Zipfian { exponent: 0.99 }
    }
}

/// Read/write operation mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// Fraction of operations that are writes (puts), in `[0, 1]`.
    pub write_ratio: f64,
}

impl Mix {
    /// A read-only mix.
    pub fn read_only() -> Self {
        Self { write_ratio: 0.0 }
    }

    /// A mix with the given write ratio.
    ///
    /// # Panics
    ///
    /// Panics if `write_ratio` is outside `[0, 1]`.
    pub fn with_write_ratio(write_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&write_ratio),
            "write ratio must be within [0,1], got {write_ratio}"
        );
        Self { write_ratio }
    }

    /// Facebook's reported production write ratio (0.2 %), cited in §7.2.
    pub fn facebook() -> Self {
        Self::with_write_ratio(0.002)
    }
}

/// The kind of a generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A `get` (read).
    Get,
    /// A `put` (write) carrying a fresh value.
    Put,
}

/// One client operation against the KVS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Target key.
    pub key: KeyId,
    /// Get or put.
    pub kind: OpKind,
    /// Popularity rank of the key (0 = hottest); retained so experiments can
    /// classify operations (e.g. expected cache hits) without re-ranking.
    pub rank: u64,
    /// For puts: a distinguishing value tag written by the client.
    pub value_tag: u64,
}

impl Op {
    /// Renders the value bytes a put should write on behalf of `session`:
    /// an 8-byte tag unique across sessions (the checkers match reads to
    /// writes through it) followed by zero padding to `value_size`.
    ///
    /// # Panics
    ///
    /// Panics if `value_size` cannot hold the 8-byte tag.
    pub fn value_bytes(&self, session: u32, value_size: usize) -> Vec<u8> {
        assert!(value_size >= 8, "value size must hold the 8-byte tag");
        let tag = (u64::from(session) << 40) | (self.value_tag & ((1 << 40) - 1));
        let mut value = vec![0u8; value_size];
        value[..8].copy_from_slice(&tag.to_le_bytes());
        value
    }
}

/// Pre-seeded generator producing a stream of [`Op`]s.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    dataset: Dataset,
    distribution: AccessDistribution,
    mix: Mix,
    zipf: Option<ZipfGenerator>,
    rng: StdRng,
    generated: u64,
}

impl WorkloadGen {
    /// Creates a workload generator.
    pub fn new(dataset: &Dataset, distribution: AccessDistribution, mix: Mix, seed: u64) -> Self {
        let zipf = match distribution {
            AccessDistribution::Zipfian { exponent } => {
                Some(ZipfGenerator::new(dataset.keys, exponent))
            }
            AccessDistribution::Uniform => None,
        };
        Self {
            dataset: *dataset,
            distribution,
            mix,
            zipf,
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
        }
    }

    /// Creates a generator sharing a precomputed Zipfian normalisation
    /// constant (avoids recomputing the harmonic sum for huge datasets).
    pub fn with_shared_zipf(dataset: &Dataset, zipf: ZipfGenerator, mix: Mix, seed: u64) -> Self {
        Self {
            dataset: *dataset,
            distribution: AccessDistribution::Zipfian {
                exponent: zipf.theta(),
            },
            mix,
            zipf: Some(zipf),
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
        }
    }

    /// The configured access distribution.
    pub fn distribution(&self) -> AccessDistribution {
        self.distribution
    }

    /// The configured operation mix.
    pub fn mix(&self) -> Mix {
        self.mix
    }

    /// The dataset this generator draws from.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// Number of operations generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let rank = match &self.zipf {
            Some(z) => z.sample(&mut self.rng),
            None => self.rng.gen_range(0..self.dataset.keys),
        };
        let key = self.dataset.key_of_rank(rank);
        let kind = if self.rng.gen::<f64>() < self.mix.write_ratio {
            OpKind::Put
        } else {
            OpKind::Get
        };
        self.generated += 1;
        Op {
            key,
            kind,
            rank,
            value_tag: self.generated,
        }
    }

    /// Draws a batch of operations.
    pub fn batch(&mut self, count: usize) -> Vec<Op> {
        (0..count).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::new(100_000, 40)
    }

    #[test]
    fn read_only_mix_produces_no_puts() {
        let mut gen = WorkloadGen::new(
            &dataset(),
            AccessDistribution::ycsb_default(),
            Mix::read_only(),
            1,
        );
        for _ in 0..10_000 {
            assert_eq!(gen.next_op().kind, OpKind::Get);
        }
    }

    #[test]
    fn write_ratio_is_respected() {
        let mut gen = WorkloadGen::new(
            &dataset(),
            AccessDistribution::Uniform,
            Mix::with_write_ratio(0.05),
            2,
        );
        let n = 100_000;
        let writes = gen
            .batch(n)
            .iter()
            .filter(|o| o.kind == OpKind::Put)
            .count();
        let ratio = writes as f64 / n as f64;
        assert!((ratio - 0.05).abs() < 0.01, "observed write ratio {ratio}");
    }

    #[test]
    fn zipfian_stream_is_skewed_uniform_is_not() {
        let ds = dataset();
        let mut zipf_gen =
            WorkloadGen::new(&ds, AccessDistribution::ycsb_default(), Mix::read_only(), 3);
        let mut uni_gen = WorkloadGen::new(&ds, AccessDistribution::Uniform, Mix::read_only(), 3);
        let n = 50_000;
        let zipf_top = zipf_gen.batch(n).iter().filter(|o| o.rank < 100).count();
        let uni_top = uni_gen.batch(n).iter().filter(|o| o.rank < 100).count();
        assert!(
            zipf_top as f64 / (n as f64) > 0.3,
            "zipf top-100 share too small"
        );
        assert!(
            uni_top as f64 / (n as f64) < 0.05,
            "uniform top-100 share too large"
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let ds = dataset();
        let a: Vec<_> = WorkloadGen::new(
            &ds,
            AccessDistribution::ycsb_default(),
            Mix::with_write_ratio(0.01),
            7,
        )
        .batch(1000);
        let b: Vec<_> = WorkloadGen::new(
            &ds,
            AccessDistribution::ycsb_default(),
            Mix::with_write_ratio(0.01),
            7,
        )
        .batch(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn facebook_mix_ratio() {
        assert!((Mix::facebook().write_ratio - 0.002).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_write_ratio_rejected() {
        let _ = Mix::with_write_ratio(1.5);
    }
}
