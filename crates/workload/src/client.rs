//! Client sessions.
//!
//! In ccKVS, clients "load balance their requests (both reads and writes)
//! across all nodes in a ccKVS deployment, e.g., by picking a server at
//! random or in a round-robin fashion" (§6). A client is also the unit of
//! *session order* used by the consistency models (§5.1): gets and puts of a
//! session must appear to take effect in the order the session issued them.

use crate::keyspace::Dataset;
use crate::mix::{AccessDistribution, Mix, Op, WorkloadGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// How a client chooses the server node for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalancePolicy {
    /// Pick a node uniformly at random per request.
    Random,
    /// Rotate through the nodes.
    RoundRobin,
    /// Always send to one node (used only in tests / pathological setups).
    Pinned(usize),
}

/// A request as issued by a client: an operation plus the server node chosen
/// by the load-balancing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRequest {
    /// The issuing session.
    pub client: ClientId,
    /// Target server node.
    pub server: usize,
    /// The operation itself.
    pub op: Op,
    /// Session-local sequence number (session order).
    pub seq: u64,
}

/// A client session generating a stream of [`ClientRequest`]s.
#[derive(Debug, Clone)]
pub struct ClientSession {
    id: ClientId,
    gen: WorkloadGen,
    policy: LoadBalancePolicy,
    nodes: usize,
    rr_next: usize,
    rng: StdRng,
    seq: u64,
}

impl ClientSession {
    /// Creates a client session over a deployment of `nodes` servers.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or a pinned policy points outside the
    /// deployment.
    pub fn new(
        id: ClientId,
        dataset: &Dataset,
        distribution: AccessDistribution,
        mix: Mix,
        policy: LoadBalancePolicy,
        nodes: usize,
        seed: u64,
    ) -> Self {
        assert!(nodes > 0, "deployment must have at least one node");
        if let LoadBalancePolicy::Pinned(n) = policy {
            assert!(n < nodes, "pinned node {n} outside deployment of {nodes}");
        }
        Self {
            id,
            gen: WorkloadGen::new(dataset, distribution, mix, seed ^ (id.0 as u64)),
            policy,
            nodes,
            rr_next: id.0 as usize % nodes,
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ id.0 as u64),
            seq: 0,
        }
    }

    /// The session id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of requests issued so far.
    pub fn issued(&self) -> u64 {
        self.seq
    }

    /// Issues the next request.
    pub fn next_request(&mut self) -> ClientRequest {
        let op = self.gen.next_op();
        let server = match self.policy {
            LoadBalancePolicy::Random => self.rng.gen_range(0..self.nodes),
            LoadBalancePolicy::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.nodes;
                s
            }
            LoadBalancePolicy::Pinned(n) => n,
        };
        let req = ClientRequest {
            client: self.id,
            server,
            op,
            seq: self.seq,
        };
        self.seq += 1;
        req
    }

    /// Issues a batch of requests.
    pub fn batch(&mut self, count: usize) -> Vec<ClientRequest> {
        (0..count).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(policy: LoadBalancePolicy) -> ClientSession {
        ClientSession::new(
            ClientId(3),
            &Dataset::new(10_000, 40),
            AccessDistribution::ycsb_default(),
            Mix::with_write_ratio(0.01),
            policy,
            9,
            11,
        )
    }

    #[test]
    fn round_robin_cycles_through_all_nodes() {
        let mut s = session(LoadBalancePolicy::RoundRobin);
        let servers: Vec<usize> = s.batch(18).iter().map(|r| r.server).collect();
        let mut seen = std::collections::HashSet::new();
        for w in servers.windows(2) {
            assert_eq!((w[0] + 1) % 9, w[1]);
        }
        seen.extend(servers);
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn random_policy_covers_all_nodes() {
        let mut s = session(LoadBalancePolicy::Random);
        let mut seen = std::collections::HashSet::new();
        for r in s.batch(2000) {
            assert!(r.server < 9);
            seen.insert(r.server);
        }
        assert_eq!(
            seen.len(),
            9,
            "random load balancing should reach every node"
        );
    }

    #[test]
    fn pinned_policy_stays_put() {
        let mut s = session(LoadBalancePolicy::Pinned(4));
        assert!(s.batch(100).iter().all(|r| r.server == 4));
    }

    #[test]
    fn sequence_numbers_are_session_order() {
        let mut s = session(LoadBalancePolicy::Random);
        let reqs = s.batch(50);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.client, ClientId(3));
        }
        assert_eq!(s.issued(), 50);
    }

    #[test]
    #[should_panic]
    fn pinned_outside_deployment_rejected() {
        let _ = session(LoadBalancePolicy::Pinned(9));
    }
}
