//! Hot-set churn workloads: a Zipfian hotspot that shifts over time.
//!
//! The paper's popularity tracking (§4) assumes the hot set "evolves
//! slowly", but it must keep the caches correct when it evolves at all.
//! This module generates the adversarial-but-realistic access pattern for
//! exercising that machinery: keys are still drawn from a Zipfian
//! popularity distribution, but the *identity* of the popular keys rotates
//! every `shift_every` operations — yesterday's viral keys go cold, new
//! ones take their ranks. Driving an epoch-churning deployment with this
//! workload forces live installs, evictions and dirty write-backs while
//! traffic runs.

use crate::keyspace::{Dataset, KeyId};
use crate::mix::{Mix, Op, OpKind};
use crate::zipf::ZipfGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipfian workload whose hotspot rotates through the keyspace.
///
/// Phase `p` (operations `[p * shift_every, (p+1) * shift_every)`) maps the
/// sampled popularity rank `r` to the key of rank
/// `(r + p * shift_step) mod keys`: the popularity *shape* is constant, the
/// keys occupying the head change by `shift_step` ranks per phase. With
/// `shift_step` comfortably larger than the cache size, consecutive phases
/// have (almost) disjoint hot sets — the worst case for the coordinator.
#[derive(Debug, Clone)]
pub struct ShiftingHotspot {
    dataset: Dataset,
    zipf: ZipfGenerator,
    mix: Mix,
    rng: StdRng,
    shift_every: u64,
    shift_step: u64,
    generated: u64,
}

impl ShiftingHotspot {
    /// Creates a shifting-hotspot generator.
    ///
    /// # Panics
    ///
    /// Panics if `shift_every` is zero (a hotspot must last at least one
    /// operation).
    pub fn new(
        dataset: &Dataset,
        exponent: f64,
        mix: Mix,
        shift_every: u64,
        shift_step: u64,
        seed: u64,
    ) -> Self {
        assert!(shift_every > 0, "a hotspot phase must span at least one op");
        Self {
            dataset: *dataset,
            zipf: ZipfGenerator::new(dataset.keys, exponent),
            mix,
            rng: StdRng::seed_from_u64(seed),
            shift_every,
            shift_step,
            generated: 0,
        }
    }

    /// The dataset this generator draws from.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The hotspot phase the *next* operation belongs to.
    pub fn phase(&self) -> u64 {
        self.generated / self.shift_every
    }

    /// Number of operations generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The key currently occupying popularity rank `rank` (phase-dependent).
    pub fn key_of_rank(&self, rank: u64) -> KeyId {
        let shifted = (rank + self.phase() * self.shift_step) % self.dataset.keys;
        self.dataset.key_of_rank(shifted)
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let rank = self.zipf.sample(&mut self.rng);
        let key = self.key_of_rank(rank);
        let kind = if self.rng.gen::<f64>() < self.mix.write_ratio {
            OpKind::Put
        } else {
            OpKind::Get
        };
        self.generated += 1;
        Op {
            key,
            kind,
            rank,
            value_tag: self.generated,
        }
    }

    /// Draws a batch of operations.
    pub fn batch(&mut self, count: usize) -> Vec<Op> {
        (0..count).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn generator(shift_every: u64, shift_step: u64) -> ShiftingHotspot {
        ShiftingHotspot::new(
            &Dataset::new(100_000, 40),
            0.99,
            Mix::with_write_ratio(0.05),
            shift_every,
            shift_step,
            7,
        )
    }

    #[test]
    fn phases_advance_with_generation() {
        let mut gen = generator(100, 1_000);
        assert_eq!(gen.phase(), 0);
        gen.batch(100);
        assert_eq!(gen.phase(), 1);
        gen.batch(250);
        assert_eq!(gen.phase(), 3);
    }

    #[test]
    fn hotspot_actually_moves_between_phases() {
        let mut gen = generator(20_000, 5_000);
        let phase0: HashSet<u64> = gen.batch(20_000).iter().map(|o| o.key.0).collect();
        assert_eq!(gen.phase(), 1);
        let head_now: Vec<u64> = (0..100).map(|r| gen.key_of_rank(r).0).collect();
        // The new phase's hottest keys were (essentially) absent from the
        // previous phase's traffic: the shift exceeds the sampled head.
        let overlap = head_now.iter().filter(|k| phase0.contains(k)).count();
        assert!(
            overlap < 30,
            "hotspot did not move: {overlap}/100 head keys already seen"
        );
        // Within a phase the head keys dominate the traffic, as with any
        // Zipfian draw.
        let phase1: Vec<u64> = gen.batch(20_000).iter().map(|o| o.key.0).collect();
        let head_set: HashSet<u64> = head_now.into_iter().collect();
        let head_hits = phase1.iter().filter(|k| head_set.contains(k)).count();
        assert!(
            head_hits as f64 / phase1.len() as f64 > 0.3,
            "phase traffic is not skewed toward the shifted head"
        );
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let a: Vec<Op> = generator(500, 64).batch(2_000);
        let b: Vec<Op> = generator(500, 64).batch(2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn write_ratio_is_respected() {
        let mut gen = generator(1_000, 64);
        let writes = gen
            .batch(50_000)
            .iter()
            .filter(|o| o.kind == OpKind::Put)
            .count();
        let ratio = writes as f64 / 50_000.0;
        assert!((ratio - 0.05).abs() < 0.01, "observed write ratio {ratio}");
    }

    #[test]
    #[should_panic]
    fn zero_phase_length_is_rejected() {
        let _ = generator(0, 64);
    }
}
