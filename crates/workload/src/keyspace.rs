//! Keys, datasets and the hash partitioning of keys onto server shards.
//!
//! ccKVS shards the dataset across server nodes (the paper uses 250 million
//! key-value pairs over 9 nodes, ~28 M keys per node). A key's *home node*
//! is determined by hashing, so any node can compute it locally; clients do
//! not need to know the placement because they load-balance requests across
//! all servers (the NUMA "black box" abstraction, §3).

/// Identifier of a logical key in the dataset.
///
/// In the evaluation, keys are 8 bytes; we use the key's rank-independent
/// 64-bit identity directly. The Zipfian *rank* of a key is decoupled from
/// its id by a permutation (see [`Dataset::key_of_rank`]) so that popular
/// keys are spread across shards, exactly as consistent hashing would do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

impl KeyId {
    /// A stable 64-bit hash of the key, used for shard selection and for the
    /// KVS index. SplitMix64 finalizer: cheap, well distributed, and
    /// deterministic across runs (important for reproducible experiments).
    pub fn hash64(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Description of the key-value dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// Number of distinct keys.
    pub keys: u64,
    /// Value size in bytes (the paper evaluates 40 B, 256 B and 1 KB).
    pub value_size: usize,
}

impl Dataset {
    /// Creates a dataset description.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn new(keys: u64, value_size: usize) -> Self {
        assert!(keys > 0, "dataset must contain at least one key");
        Self { keys, value_size }
    }

    /// The paper's default dataset: 250 M keys of 40-byte values.
    pub fn paper_default() -> Self {
        Self::new(250_000_000, 40)
    }

    /// Maps a popularity rank (0 = hottest) to a key id.
    ///
    /// Uses a Feistel-like mix so that consecutive ranks land on unrelated
    /// ids (and therefore unrelated shards), mimicking a hashed keyspace.
    /// The mapping is a bijection on `[0, keys)` obtained by searching from
    /// a mixed candidate — cheap and deterministic.
    pub fn key_of_rank(&self, rank: u64) -> KeyId {
        assert!(
            rank < self.keys,
            "rank {rank} outside dataset of {} keys",
            self.keys
        );
        // A multiplicative permutation: (rank * odd) mod 2^64 folded into the
        // key range via a second mix. To keep it a bijection on [0, keys) we
        // use the simple affine permutation (a*rank + b) mod keys with `a`
        // coprime to `keys` (any odd a works when keys is even; otherwise we
        // fall back to a += 1 until gcd == 1).
        let mut a: u64 = 6364136223846793005 % self.keys;
        if a == 0 {
            a = 1;
        }
        while gcd(a, self.keys) != 1 {
            a += 1;
        }
        let b: u64 = 1442695040888963407 % self.keys;
        KeyId(((a as u128 * rank as u128 + b as u128) % self.keys as u128) as u64)
    }

    /// Memory footprint of one object (key + value + the 8-byte metadata
    /// header described in §6.2).
    pub fn object_bytes(&self) -> usize {
        8 + self.value_size + 8
    }

    /// The coordinator's hot set at epoch start: the `n` globally hottest
    /// keys paired with zeroed values of the dataset's value size, ready
    /// for a symmetric-cache install. `n` is clamped to the dataset size.
    pub fn hot_entries(&self, n: usize) -> Vec<(u64, Vec<u8>)> {
        let n = (n as u64).min(self.keys);
        (0..n)
            .map(|rank| (self.key_of_rank(rank).0, vec![0u8; self.value_size]))
            .collect()
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Hash partitioning of the keyspace across `nodes` server nodes and, within
/// a node, across `threads_per_node` KVS threads (used by the EREW variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of server nodes in the deployment.
    pub nodes: usize,
    /// Number of KVS worker threads per node (EREW partitions at this grain).
    pub threads_per_node: usize,
}

impl ShardMap {
    /// Creates a shard map.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, threads_per_node: usize) -> Self {
        assert!(nodes > 0 && threads_per_node > 0);
        Self {
            nodes,
            threads_per_node,
        }
    }

    /// The home node of a key.
    pub fn home_node(&self, key: KeyId) -> usize {
        (key.hash64() % self.nodes as u64) as usize
    }

    /// The home (node, thread) pair of a key under EREW core-granularity
    /// partitioning (Base-EREW baseline, §7.1).
    pub fn home_core(&self, key: KeyId) -> (usize, usize) {
        let h = key.hash64();
        let node = (h % self.nodes as u64) as usize;
        let thread = ((h / self.nodes as u64) % self.threads_per_node as u64) as usize;
        (node, thread)
    }

    /// Total number of EREW partitions in the deployment.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.threads_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let a = KeyId(42).hash64();
        let b = KeyId(42).hash64();
        assert_eq!(a, b);
        assert_ne!(KeyId(1).hash64(), KeyId(2).hash64());
    }

    #[test]
    fn key_of_rank_is_injective_on_small_sets() {
        let ds = Dataset::new(10_000, 40);
        let mut seen = std::collections::HashSet::new();
        for r in 0..ds.keys {
            let k = ds.key_of_rank(r);
            assert!(k.0 < ds.keys);
            assert!(seen.insert(k.0), "rank {r} collided");
        }
    }

    #[test]
    fn key_of_rank_spreads_hot_keys_over_nodes() {
        // The hottest few hundred keys should not all land on one node.
        let ds = Dataset::new(1_000_000, 40);
        let shards = ShardMap::new(9, 20);
        let mut per_node = [0usize; 9];
        for r in 0..900 {
            per_node[shards.home_node(ds.key_of_rank(r))] += 1;
        }
        for (n, c) in per_node.iter().enumerate() {
            assert!(*c > 30, "node {n} got only {c} of 900 hot keys");
        }
    }

    #[test]
    fn home_node_within_bounds() {
        let shards = ShardMap::new(9, 20);
        for k in 0..10_000u64 {
            let n = shards.home_node(KeyId(k));
            assert!(n < 9);
            let (node, thread) = shards.home_core(KeyId(k));
            assert!(node < 9 && thread < 20);
        }
        assert_eq!(shards.total_cores(), 180);
    }

    #[test]
    fn object_bytes_accounts_for_header() {
        let ds = Dataset::new(10, 40);
        assert_eq!(ds.object_bytes(), 56);
    }

    #[test]
    fn hot_entries_are_the_hottest_ranks_clamped() {
        let ds = Dataset::new(10, 8);
        let entries = ds.hot_entries(3);
        assert_eq!(entries.len(), 3);
        for (rank, (key, value)) in entries.iter().enumerate() {
            assert_eq!(*key, ds.key_of_rank(rank as u64).0);
            assert_eq!(value.len(), 8);
        }
        // More entries than keys: clamp to the dataset.
        assert_eq!(ds.hot_entries(50).len(), 10);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        let _ = Dataset::new(0, 40);
    }
}
