//! Workload generation for the Scale-Out ccNUMA / ccKVS reproduction.
//!
//! The paper evaluates ccKVS under YCSB-like workloads whose key-popularity
//! follows a Zipfian distribution with exponent `α ∈ {0.90, 0.99, 1.01}`
//! (plus a uniform distribution as an upper-bound baseline) and write ratios
//! between 0 % and 5 %. This crate provides:
//!
//! * [`zipf`] — an exact Zipfian sampler (Gray et al. / YCSB algorithm) and
//!   the popularity CDF used for the analytic cache hit-rate curve (Fig. 3).
//! * [`keyspace`] — key identifiers, dataset descriptions and the
//!   hash-partitioning of keys onto server shards.
//! * [`mix`] — read/write operation mixes and operation generation.
//! * [`client`] — client sessions that load-balance requests over the
//!   deployment (random or round-robin), as described in §6.
//! * [`imbalance`] — per-server load statistics under skew (Fig. 1).
//! * [`churn`] — a shifting-hotspot Zipfian workload for exercising live
//!   hot-set churn (epoch installs/evictions while traffic runs).
//!
//! # Examples
//!
//! ```
//! use workload::prelude::*;
//!
//! let dataset = Dataset::new(100_000, 40);
//! let mut gen = WorkloadGen::new(
//!     &dataset,
//!     AccessDistribution::Zipfian { exponent: 0.99 },
//!     Mix::with_write_ratio(0.01),
//!     42,
//! );
//! let op = gen.next_op();
//! assert!(op.key.0 < 100_000);
//! ```

pub mod churn;
pub mod client;
pub mod imbalance;
pub mod keyspace;
pub mod mix;
pub mod zipf;

pub use churn::ShiftingHotspot;
pub use client::{ClientId, ClientSession, LoadBalancePolicy};
pub use imbalance::{normalized_server_load, ImbalanceReport};
pub use keyspace::{Dataset, KeyId, ShardMap};
pub use mix::{AccessDistribution, Mix, Op, OpKind, WorkloadGen};
pub use zipf::{zipf_cdf, ZipfGenerator};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::churn::ShiftingHotspot;
    pub use crate::client::{ClientId, ClientSession, LoadBalancePolicy};
    pub use crate::imbalance::{normalized_server_load, ImbalanceReport};
    pub use crate::keyspace::{Dataset, KeyId, ShardMap};
    pub use crate::mix::{AccessDistribution, Mix, Op, OpKind, WorkloadGen};
    pub use crate::zipf::{zipf_cdf, ZipfGenerator};
}
