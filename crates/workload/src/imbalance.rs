//! Load-imbalance analysis under skew (Fig. 1 of the paper).
//!
//! With the dataset sharded across servers and no skew mitigation, the server
//! holding the hottest keys receives a disproportionate share of requests.
//! The paper's Fig. 1 shows that in a 128-server deployment with α = 0.99 the
//! most loaded server receives over 7× the average load. This module computes
//! that distribution either analytically (from the Zipfian pmf) or from a
//! sampled access trace.

use crate::keyspace::{Dataset, ShardMap};
use crate::zipf::ZipfGenerator;

/// Per-server load report, normalised so that the average server load is 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceReport {
    /// Normalised load per server (index = server id), sorted descending.
    pub normalized_load: Vec<f64>,
}

impl ImbalanceReport {
    /// Load of the most loaded server relative to the average.
    pub fn max_load(&self) -> f64 {
        self.normalized_load.first().copied().unwrap_or(0.0)
    }

    /// Load of the least loaded server relative to the average.
    pub fn min_load(&self) -> f64 {
        self.normalized_load.last().copied().unwrap_or(0.0)
    }

    /// Ratio between the hottest and the average server (the "7×" of Fig. 1).
    pub fn hotspot_factor(&self) -> f64 {
        self.max_load()
    }
}

/// Computes the analytic normalised per-server load for a Zipfian workload
/// over a sharded dataset (Fig. 1).
///
/// The load of a server is the sum of the pmf of the keys homed on it. To
/// keep the computation tractable for very large datasets, only the hottest
/// `hot_keys_exact` keys are attributed individually; the tail mass is spread
/// evenly across servers (an excellent approximation because the tail is, by
/// construction, nearly uniform per server).
pub fn normalized_server_load(
    dataset: &Dataset,
    shards: &ShardMap,
    zipf_exponent: f64,
    hot_keys_exact: u64,
) -> ImbalanceReport {
    let zipf = ZipfGenerator::new(dataset.keys, zipf_exponent);
    let servers = shards.nodes;
    let mut load = vec![0.0f64; servers];

    let exact = hot_keys_exact.min(dataset.keys);
    let mut exact_mass = 0.0;
    for rank in 0..exact {
        let p = zipf.pmf(rank);
        exact_mass += p;
        let node = shards.home_node(dataset.key_of_rank(rank));
        load[node] += p;
    }
    // Spread the remaining tail mass uniformly.
    let tail = (1.0 - exact_mass).max(0.0) / servers as f64;
    for l in load.iter_mut() {
        *l += tail;
    }
    // Normalise to average = 1.
    let avg = 1.0 / servers as f64;
    let mut normalized: Vec<f64> = load.into_iter().map(|l| l / avg).collect();
    normalized.sort_by(|a, b| b.partial_cmp(a).expect("loads are finite"));
    ImbalanceReport {
        normalized_load: normalized,
    }
}

/// Computes the empirical normalised per-server load from a sampled trace of
/// key ranks (useful to validate the analytic computation).
pub fn sampled_server_load(dataset: &Dataset, shards: &ShardMap, ranks: &[u64]) -> ImbalanceReport {
    let servers = shards.nodes;
    let mut counts = vec![0u64; servers];
    for &rank in ranks {
        let node = shards.home_node(dataset.key_of_rank(rank));
        counts[node] += 1;
    }
    let avg = ranks.len() as f64 / servers as f64;
    let mut normalized: Vec<f64> = counts.into_iter().map(|c| c as f64 / avg).collect();
    normalized.sort_by(|a, b| b.partial_cmp(a).expect("loads are finite"));
    ImbalanceReport {
        normalized_load: normalized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_hotspot_factor_128_servers() {
        // Paper, Fig. 1: 128 servers, α = 0.99 — the hottest server receives
        // over 7x the average load (driven by the single hottest key, whose
        // pmf is ~5.5% of all accesses at 250M keys ≈ 7x of 1/128).
        let dataset = Dataset::new(
            if cfg!(debug_assertions) {
                2_500_000
            } else {
                250_000_000
            },
            40,
        );
        let shards = ShardMap::new(128, 1);
        let report = normalized_server_load(&dataset, &shards, 0.99, 100_000);
        assert!(
            report.hotspot_factor() > 5.0,
            "expected a pronounced hotspot, got {}",
            report.hotspot_factor()
        );
        assert!(report.min_load() > 0.5 && report.min_load() <= 1.05);
        // Total normalised load must equal the number of servers.
        let total: f64 = report.normalized_load.iter().sum();
        assert!((total - 128.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_tail_only_is_balanced() {
        let dataset = Dataset::new(1_000_000, 40);
        let shards = ShardMap::new(16, 1);
        // Attributing zero keys exactly spreads everything evenly.
        let report = normalized_server_load(&dataset, &shards, 0.99, 0);
        for l in &report.normalized_load {
            assert!((l - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_load_matches_analytic_shape() {
        let dataset = Dataset::new(100_000, 40);
        let shards = ShardMap::new(8, 1);
        let zipf = ZipfGenerator::new(dataset.keys, 0.99);
        let mut rng = StdRng::seed_from_u64(5);
        let ranks: Vec<u64> = (0..200_000).map(|_| zipf.sample(&mut rng)).collect();
        let sampled = sampled_server_load(&dataset, &shards, &ranks);
        let analytic = normalized_server_load(&dataset, &shards, 0.99, 10_000);
        // Hotspot factors should agree within 15%.
        let rel = (sampled.hotspot_factor() - analytic.hotspot_factor()).abs()
            / analytic.hotspot_factor();
        assert!(
            rel < 0.15,
            "sampled {} vs analytic {}",
            sampled.hotspot_factor(),
            analytic.hotspot_factor()
        );
    }

    #[test]
    fn more_servers_means_worse_hotspot() {
        // The hotspot factor (relative to average) grows with the number of
        // servers because the average shrinks while the hottest key's share
        // does not.
        let dataset = Dataset::new(1_000_000, 40);
        let small = normalized_server_load(&dataset, &ShardMap::new(8, 1), 0.99, 50_000);
        let large = normalized_server_load(&dataset, &ShardMap::new(64, 1), 0.99, 50_000);
        assert!(large.hotspot_factor() > small.hotspot_factor());
    }
}
