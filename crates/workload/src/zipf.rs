//! Zipfian popularity distribution.
//!
//! The paper (§2.1) models item popularity as a power law: the popularity of
//! the item with rank `r` is proportional to `r^-α`, with `α` close to unity
//! (0.90, 0.99 and 1.01 are evaluated). We implement the classic Gray et al.
//! "quick Zipf" sampler, which is also what YCSB uses, so the generated
//! access stream matches the paper's workload exactly in distribution.
//!
//! The module also exposes the popularity CDF, which directly yields the
//! expected cache hit rate when the hottest `C` keys are cached
//! (reproducing Fig. 3).

use rand::Rng;

/// Generalized harmonic number `H_{n,θ} = Σ_{i=1..n} 1/i^θ`.
///
/// This is the normalisation constant of the Zipfian distribution (called
/// `zeta(n, θ)` in the YCSB source). Computed by direct summation; the cost
/// is linear in `n` and paid once per generator.
pub fn harmonic(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// Cumulative probability that an access falls in the `top` most popular keys
/// of a Zipfian-distributed dataset of `n` keys with exponent `theta`.
///
/// This is exactly the expected hit rate of a cache holding the hottest
/// `top` keys (Fig. 3 of the paper): `H_{top,θ} / H_{n,θ}`.
///
/// # Examples
///
/// ```
/// // ~0.1% of a 1M-key dataset cached at α = 0.99 captures well over half
/// // of the accesses.
/// let hit = workload::zipf_cdf(1_000_000, 1_000, 0.99);
/// assert!(hit > 0.5 && hit < 0.8);
/// ```
pub fn zipf_cdf(n: u64, top: u64, theta: f64) -> f64 {
    assert!(n > 0, "dataset must be non-empty");
    let top = top.min(n);
    if top == 0 {
        return 0.0;
    }
    harmonic(top, theta) / harmonic(n, theta)
}

/// Zipfian random-rank generator over `{0, 1, ..., n-1}` where rank 0 is the
/// most popular item.
///
/// Implements the algorithm of Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD'94), the same sampler used by
/// YCSB. Sampling is O(1) after an O(n) setup that computes the harmonic
/// normalisation constant.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfGenerator {
    /// Creates a generator over `items` ranks with skew exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `theta` is not in `(0, 2)` (the paper only
    /// uses exponents near 1; `theta == 1.0` is handled like YCSB does by
    /// the same closed form since `alpha` stays finite for `theta != 1`).
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0, "Zipfian generator needs at least one item");
        assert!(
            theta > 0.0 && theta < 2.0 && (theta - 1.0).abs() > 1e-9,
            "unsupported zipf exponent {theta}"
        );
        let zetan = harmonic(items, theta);
        let zeta2 = harmonic(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Creates a generator from a precomputed harmonic constant.
    ///
    /// Useful when many generators over the same (large) dataset are needed:
    /// the O(n) harmonic sum is computed once and shared.
    pub fn with_harmonic(items: u64, theta: f64, zetan: f64) -> Self {
        assert!(items > 0);
        let zeta2 = harmonic(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// The number of distinct items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The skew exponent `α`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The harmonic normalisation constant `H_{n,θ}`.
    pub fn zetan(&self) -> f64 {
        self.zetan
    }

    /// Draws a rank in `[0, items)`; rank 0 is the hottest item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen::<f64>();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = ((self.items as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// Probability mass of the item with the given rank (rank 0 hottest).
    pub fn pmf(&self, rank: u64) -> f64 {
        assert!(rank < self.items);
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Probability that an access falls within the hottest `top` ranks.
    pub fn cdf_top(&self, top: u64) -> f64 {
        let top = top.min(self.items);
        harmonic(top, self.theta) / self.zetan
    }

    /// `zeta(2, θ)`, exposed for tests that validate against YCSB constants.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_small_values() {
        assert!((harmonic(1, 0.99) - 1.0).abs() < 1e-12);
        let h2 = harmonic(2, 1.0_f64.min(0.99));
        assert!((h2 - (1.0 + 1.0 / 2f64.powf(0.99))).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let n = 10_000;
        let mut prev = 0.0;
        for top in [1u64, 10, 100, 1_000, 10_000] {
            let c = zipf_cdf(n, top, 0.99);
            assert!(c >= prev, "cdf must be monotone");
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!((zipf_cdf(n, n, 0.99) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_hit_rates_match_paper_ballpark() {
        // Paper §7.1: with a cache of 0.1% of the dataset the expected hit
        // ratio is ~46%, ~65% and ~69% for α = 0.9, 0.99, 1.01.
        // The exact value depends on dataset size (paper: 250M keys); at 250M
        // the closed form gives values close to those. We use 250M here since
        // harmonic() is linear but still fast enough in release; in debug we
        // scale down to 2.5M keys, which gives slightly higher hit rates but
        // the same ordering.
        let n: u64 = if cfg!(debug_assertions) {
            2_500_000
        } else {
            250_000_000
        };
        let cache = n / 1000;
        let h90 = zipf_cdf(n, cache, 0.90);
        let h99 = zipf_cdf(n, cache, 0.99);
        let h101 = zipf_cdf(n, cache, 1.01);
        assert!(h90 < h99 && h99 < h101, "hit rate must grow with skew");
        assert!(h90 > 0.28 && h90 < 0.65, "α=0.90 hit rate {h90}");
        assert!(h99 > 0.50 && h99 < 0.80, "α=0.99 hit rate {h99}");
        assert!(h101 > 0.55 && h101 < 0.85, "α=1.01 hit rate {h101}");
    }

    #[test]
    fn sampler_respects_rank_ordering() {
        let n = 1000;
        let zipf = ZipfGenerator::new(n, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; n as usize];
        let draws = 200_000;
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 should be the clear winner and roughly match its pmf.
        let p0 = counts[0] as f64 / draws as f64;
        assert!(
            (p0 - zipf.pmf(0)).abs() < 0.02,
            "empirical {p0} vs pmf {}",
            zipf.pmf(0)
        );
        // Top-10 empirical mass should match the CDF within a small tolerance.
        let top10: u64 = counts[..10].iter().sum();
        let emp = top10 as f64 / draws as f64;
        assert!((emp - zipf.cdf_top(10)).abs() < 0.02);
        // All samples in range.
        assert!(counts.iter().sum::<u64>() == draws);
    }

    #[test]
    fn pmf_sums_to_one() {
        let zipf = ZipfGenerator::new(500, 1.01);
        let total: f64 = (0..500).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_harmonic_matches_new() {
        let a = ZipfGenerator::new(10_000, 0.99);
        let b = ZipfGenerator::with_harmonic(10_000, 0.99, a.zetan());
        assert_eq!(a.items(), b.items());
        assert!((a.pmf(0) - b.pmf(0)).abs() < 1e-12);
        assert!((a.cdf_top(100) - b.cdf_top(100)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_items_rejected() {
        let _ = ZipfGenerator::new(0, 0.99);
    }
}
