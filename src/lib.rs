//! Scale-Out ccNUMA — a reproduction of *"Scale-Out ccNUMA: Exploiting Skew
//! with Strongly Consistent Caching"* (Gavrielatos et al., EuroSys 2018) as a
//! Rust workspace.
//!
//! This facade crate re-exports the workspace members so examples, tests and
//! downstream users can depend on a single crate:
//!
//! * [`workload`] — Zipfian/uniform workload generation, clients, load
//!   imbalance analysis.
//! * [`kvstore`] — the MICA-style seqlock-protected key-value store
//!   substrate (EREW/CRCW).
//! * [`symcache`] — the symmetric cache, top-k popularity tracking and the
//!   epoch coordinator.
//! * [`consistency`] — the per-key SC and per-key Lin protocols, history
//!   checkers and the explicit-state model checker.
//! * [`simnet`] — the discrete-event simulated RDMA rack fabric.
//! * [`analytical`] — the §8.7 throughput model and break-even solver.
//! * [`cckvs`] — the ccKVS system itself: functional multi-threaded cluster
//!   and the calibrated performance simulator with all baselines.
//! * [`cckvs_net`] — the networked serving layer: TCP node servers speaking
//!   a compact binary wire protocol, a rack launcher, a load-balancing
//!   client library and per-node metrics endpoints.
//!
//! # Quickstart
//!
//! ```
//! use scale_out_ccnuma::prelude::*;
//!
//! // A small functional cluster with per-key linearizable symmetric caches.
//! let cluster = Cluster::start(ClusterConfig::small(ConsistencyModel::Lin));
//! cluster.install_hot_key(42, b"initial");
//! cluster.put(0, 1, 42, b"hello ccNUMA");
//! match cluster.get(1, 2, 42) {
//!     OpResult::Value(v) => assert_eq!(v, b"hello ccNUMA"),
//!     _ => unreachable!(),
//! }
//! ```

pub use analytical;
pub use cckvs;
pub use cckvs_net;
pub use consistency;
pub use kvstore;
pub use simnet;
pub use symcache;
pub use workload;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use analytical::{
        breakeven_write_ratio_lin, breakeven_write_ratio_sc, throughput_lin_mrps,
        throughput_sc_mrps, throughput_uniform_mrps, ModelParams,
    };
    pub use cckvs::prelude::*;
    pub use cckvs_net::prelude::*;
    pub use consistency::checker::{check, CheckOutcome, CheckerConfig};
    pub use consistency::messages::ConsistencyModel;
    pub use symcache::{expected_hit_rate, CacheCoordinator, EpochConfig, SpaceSaving};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Touch one item from each re-exported crate.
        let _ = analytical::ModelParams::paper_small_objects(9, 0.01);
        let _ = workload::Dataset::new(10, 8);
        let _ = kvstore::ConcurrencyModel::Crcw;
        let _ = consistency::messages::ConsistencyModel::Lin;
        let _ = simnet::MessageSizes::for_value_size(40);
        let _ = symcache::SpaceSaving::new(4);
        let _ = cckvs::SystemKind::Base;
        let _ = cckvs_net::Frame::Ping;
    }
}
