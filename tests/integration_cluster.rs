//! End-to-end integration tests: workload generation + coordinator-driven
//! cache fill + functional cluster + consistency checking.

use scale_out_ccnuma::prelude::*;
use std::sync::Arc;

/// Builds a cluster whose hot set was chosen by the epoch-based coordinator
/// from a sampled Zipfian stream, exactly like a ccKVS deployment would.
fn cluster_with_learned_hot_set(model: ConsistencyModel) -> (Cluster, Vec<u64>) {
    let dataset = Dataset::new(50_000, 40);
    let mut coordinator = CacheCoordinator::new(EpochConfig {
        cache_entries: 32,
        counter_capacity: 256,
        sampling: 2,
        epoch_length: 5_000,
    });
    let mut gen = WorkloadGen::new(
        &dataset,
        AccessDistribution::ycsb_default(),
        Mix::read_only(),
        3,
    );
    let hot = loop {
        if let Some(hot) = coordinator.observe(gen.next_op().rank) {
            break hot;
        }
    };
    let cluster = Cluster::start(ClusterConfig::small(model));
    for &rank in &hot.keys {
        let key = dataset.key_of_rank(rank).0;
        cluster.install_hot_key(key, &rank.to_le_bytes());
    }
    let keys = hot.keys.iter().map(|&r| dataset.key_of_rank(r).0).collect();
    (cluster, keys)
}

#[test]
fn learned_hot_set_serves_reads_from_every_node() {
    let (cluster, keys) = cluster_with_learned_hot_set(ConsistencyModel::Sc);
    assert!(!keys.is_empty());
    for (i, key) in keys.iter().enumerate() {
        let node = i % cluster.nodes();
        match cluster.get(0, node, *key) {
            OpResult::Value(v) => assert_eq!(v.len(), 8, "seeded 8-byte values"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(cluster.is_cached(*key));
    }
}

#[test]
fn mixed_workload_history_is_linearizable_under_lin() {
    let (cluster, keys) = cluster_with_learned_hot_set(ConsistencyModel::Lin);
    let cluster = Arc::new(cluster);
    let keys = Arc::new(keys);
    let handles: Vec<_> = (0..4u32)
        .map(|session| {
            let cluster = Arc::clone(&cluster);
            let keys = Arc::clone(&keys);
            std::thread::spawn(move || {
                for i in 0..150u64 {
                    let key = keys[(i as usize + session as usize) % keys.len().min(4)];
                    let node = (i as usize) % cluster.nodes();
                    if i % 4 == 0 {
                        let mut value = [0u8; 12];
                        value[..8].copy_from_slice(&((u64::from(session) << 40) | i).to_le_bytes());
                        cluster.put(session, node, key, &value);
                    } else {
                        cluster.get(session, node, key);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    cluster.quiesce();
    let history = cluster.history();
    assert!(history.len() >= 600);
    history
        .check_per_key_lin()
        .expect("per-key linearizability");
}

#[test]
fn sc_cluster_converges_after_concurrent_writes() {
    let cluster = Cluster::start(ClusterConfig::small(ConsistencyModel::Sc));
    cluster.install_hot_key(9, &0u64.to_le_bytes());
    let cluster = Arc::new(cluster);
    let writers: Vec<_> = (0..3u32)
        .map(|session| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    let value = ((u64::from(session) << 32) | i).to_le_bytes();
                    cluster.put(session, session as usize % cluster.nodes(), 9, &value);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    cluster.quiesce();
    // All replicas converge on the same value.
    let reference = cluster.peek_cache(0, 9).expect("readable");
    for node in 1..cluster.nodes() {
        assert_eq!(cluster.peek_cache(node, 9).expect("readable"), reference);
    }
    cluster.history().check_per_key_sc().expect("per-key SC");
}

#[test]
fn write_back_on_eviction_reaches_the_home_shard() {
    // Evicting a dirty key from the symmetric cache must not lose the write:
    // the cluster's miss path then serves the latest value from the KVS.
    let cluster = Cluster::start(ClusterConfig::small(ConsistencyModel::Sc));
    cluster.install_hot_key(77, b"original");
    cluster.put(0, 1, 77, b"dirty!!!");
    cluster.quiesce();
    // Reads hit the cache and see the dirty value.
    assert_eq!(cluster.get(0, 2, 77), OpResult::Value(b"dirty!!!".to_vec()));
}
