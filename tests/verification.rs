//! Cross-crate verification tests: the model checker validates the exact
//! protocol code the cache layer executes, for several bounded
//! configurations beyond the defaults.

use consistency::checker::{check, CheckOutcome, CheckerConfig, InjectedBug};
use consistency::messages::ConsistencyModel;

#[test]
fn lin_protocol_verifies_with_three_concurrent_writers() {
    let config = CheckerConfig {
        model: ConsistencyModel::Lin,
        nodes: 3,
        writers: 3,
        writes_per_writer: 1,
        bug: None,
    };
    match check(&config) {
        CheckOutcome::Verified(stats) => {
            assert!(
                stats.states > 1_000,
                "state space unexpectedly small: {stats:?}"
            );
        }
        CheckOutcome::Violation { description, .. } => panic!("violation: {description}"),
    }
}

#[test]
fn sc_protocol_verifies_with_four_replicas() {
    let config = CheckerConfig {
        model: ConsistencyModel::Sc,
        nodes: 4,
        writers: 2,
        writes_per_writer: 1,
        bug: None,
    };
    assert!(check(&config).is_verified());
}

#[test]
fn every_injected_bug_is_detected_in_every_configuration() {
    for bug in [
        InjectedBug::SkipAckWait,
        InjectedBug::IgnoreTimestampsOnUpdate,
    ] {
        for nodes in [2usize, 3] {
            let config = CheckerConfig {
                model: ConsistencyModel::Lin,
                nodes,
                writers: 2.min(nodes),
                writes_per_writer: 1,
                bug: Some(bug),
            };
            assert!(
                !check(&config).is_verified(),
                "{bug:?} with {nodes} nodes must be caught"
            );
        }
    }
}
