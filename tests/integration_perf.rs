//! Cross-crate integration tests of the performance model: the headline
//! trends of the paper's evaluation must emerge from the simulated rack.

use scale_out_ccnuma::prelude::*;
use simnet::MICROSECOND;

fn quick(kind: SystemKind) -> PerfConfig {
    let mut system = SystemConfig::paper_default(kind);
    system.dataset_keys = 100_000;
    system.cache_entries = 100;
    PerfConfig {
        horizon: 60 * MICROSECOND,
        inflight_per_node: 512,
        ..PerfConfig::paper_default(system)
    }
}

#[test]
fn headline_result_cckvs_beats_the_baselines_with_strong_consistency() {
    // §1: "ccKVS achieves 2.2x the throughput of the state-of-the-art KVS
    // while guaranteeing strong consistency" (1% writes, Lin).
    let mut lin = quick(SystemKind::CcKvs(ConsistencyModel::Lin));
    lin.system.write_ratio = 0.01;
    let mut base = quick(SystemKind::Base);
    base.system.write_ratio = 0.01;
    let lin_result = run_experiment(&lin);
    let base_result = run_experiment(&base);
    assert!(
        lin_result.throughput_mrps > 1.5 * base_result.throughput_mrps,
        "ccKVS-Lin {} vs Base {}",
        lin_result.throughput_mrps,
        base_result.throughput_mrps
    );
}

#[test]
fn cache_miss_throughput_tracks_the_uniform_bound() {
    // Fig. 9's observation: ccKVS's cache-miss throughput roughly equals the
    // entire throughput of Uniform, because both are network-bound.
    let cckvs = run_experiment(&quick(SystemKind::CcKvs(ConsistencyModel::Sc)));
    let uniform = run_experiment(&quick(SystemKind::Uniform));
    let ratio = cckvs.miss_mrps / uniform.throughput_mrps;
    assert!(
        (0.4..=1.6).contains(&ratio),
        "miss throughput {} vs uniform {}",
        cckvs.miss_mrps,
        uniform.throughput_mrps
    );
}

#[test]
fn analytical_model_and_simulator_agree_on_ordering() {
    let p = ModelParams::paper_small_objects(9, 0.01);
    let model_sc = throughput_sc_mrps(&p);
    let model_lin = throughput_lin_mrps(&p);
    let model_uniform = throughput_uniform_mrps(&p);
    assert!(model_sc > model_lin && model_lin > model_uniform);

    let mut sc = quick(SystemKind::CcKvs(ConsistencyModel::Sc));
    sc.system.write_ratio = 0.01;
    let mut lin = quick(SystemKind::CcKvs(ConsistencyModel::Lin));
    lin.system.write_ratio = 0.01;
    let sim_sc = run_experiment(&sc).throughput_mrps;
    let sim_lin = run_experiment(&lin).throughput_mrps;
    let sim_uniform = run_experiment(&quick(SystemKind::Uniform)).throughput_mrps;
    assert!(sim_sc >= sim_lin, "SC {sim_sc} vs Lin {sim_lin}");
    assert!(
        sim_lin > sim_uniform,
        "Lin {sim_lin} vs Uniform {sim_uniform}"
    );
}

#[test]
fn larger_objects_shrink_the_lin_penalty() {
    // Fig. 12: with 1 KB objects the SC/Lin gap nearly vanishes because data
    // payloads dominate the consistency-message overhead.
    let gap = |size: usize| {
        let mut sc = quick(SystemKind::CcKvs(ConsistencyModel::Sc));
        sc.system.write_ratio = 0.01;
        sc.system.value_size = size;
        let mut lin = sc;
        lin.system.kind = SystemKind::CcKvs(ConsistencyModel::Lin);
        let sc_t = run_experiment(&sc).throughput_mrps;
        let lin_t = run_experiment(&lin).throughput_mrps;
        (sc_t - lin_t).max(0.0) / sc_t
    };
    let small_gap = gap(40);
    let large_gap = gap(1024);
    assert!(
        large_gap <= small_gap + 0.05,
        "relative SC-Lin gap should not grow with object size: 40B {small_gap:.3} vs 1KB {large_gap:.3}"
    );
}

#[test]
fn expected_hit_ratio_matches_observed_hit_share() {
    let cfg = quick(SystemKind::CcKvs(ConsistencyModel::Sc));
    let expected = cfg.system.expected_hit_ratio();
    let r = run_experiment(&cfg);
    let observed = r.hit_mrps / (r.hit_mrps + r.miss_mrps);
    assert!(
        (observed - expected).abs() < 0.12,
        "observed hit share {observed:.2} vs expected {expected:.2}"
    );
}
