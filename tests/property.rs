//! Property-based tests of core data structures and protocol invariants.

use consistency::engine::{Destination, NodeEngine, ProtocolEngine};
use consistency::lamport::{NodeId, Timestamp};
use consistency::messages::{ConsistencyModel, ProtocolMsg};
use kvstore::object::{ObjectHeader, StoredObject};
use kvstore::{ConcurrencyModel, NodeKvs, SeqLock};
use proptest::prelude::*;
use std::collections::HashMap;
use workload::{zipf_cdf, Dataset, ShardMap, ZipfGenerator};

proptest! {
    /// A seqlock read always returns exactly the last payload written.
    #[test]
    fn seqlock_roundtrips_arbitrary_payloads(payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20)) {
        let lock = SeqLock::with_capacity(64);
        for payload in &payloads {
            lock.write(payload);
            let (read, version) = lock.read();
            prop_assert_eq!(&read, payload);
            prop_assert_eq!(version % 2, 0);
        }
        prop_assert_eq!(lock.write_count(), payloads.len() as u64);
    }

    /// Object headers encode/decode losslessly.
    #[test]
    fn object_header_roundtrip(state in any::<u8>(), clock in any::<u32>(), writer in any::<u8>(), acks in any::<u8>()) {
        let header = ObjectHeader { state, clock, last_writer: writer, acks };
        prop_assert_eq!(ObjectHeader::decode(&header.encode()), header);
    }

    /// A stored object never returns a header/value pair it was not given.
    #[test]
    fn stored_object_snapshots_are_never_torn(values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..10)) {
        let object = StoredObject::with_value_capacity(32);
        for (i, value) in values.iter().enumerate() {
            let header = ObjectHeader { clock: i as u32 + 1, ..ObjectHeader::default() };
            object.write(header, value);
            let snap = object.read();
            prop_assert_eq!(snap.header.clock, i as u32 + 1);
            prop_assert_eq!(&snap.value, value);
        }
    }

    /// The KVS behaves like a map: the latest put wins, under both
    /// concurrency models.
    #[test]
    fn kvs_matches_a_model_map(ops in prop::collection::vec((0u64..64, prop::collection::vec(any::<u8>(), 1..16)), 1..200),
                               crcw in any::<bool>()) {
        let model_kind = if crcw { ConcurrencyModel::Crcw } else { ConcurrencyModel::Erew };
        let kvs = NodeKvs::new(model_kind, 4, 1 << 12);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (version, (key, value)) in ops.iter().enumerate() {
            kvs.put(*key, value, version as u32 + 1).expect("capacity is sufficient");
            model.insert(*key, value.clone());
        }
        for (key, expected) in &model {
            let got = kvs.get(*key).expect("present");
            prop_assert_eq!(&got.value, expected);
        }
        prop_assert_eq!(kvs.len(), model.len());
    }

    /// Lamport timestamps are totally ordered and `next_for` is monotone.
    #[test]
    fn lamport_timestamps_are_monotone(clock in 0u32..u32::MAX - 2, a in any::<u8>(), b in any::<u8>()) {
        let base = Timestamp::new(clock, NodeId(a));
        let next = base.next_for(NodeId(b));
        prop_assert!(next > base);
        let again = next.next_for(NodeId(a));
        prop_assert!(again > next);
    }

    /// The Zipfian CDF is monotone in the cached fraction and bounded by 1.
    #[test]
    fn zipf_cdf_is_monotone(n in 100u64..50_000, top1 in 1u64..100, extra in 0u64..1000, theta in 0.5f64..1.3) {
        let theta = if (theta - 1.0).abs() < 1e-6 { 1.01 } else { theta };
        let c1 = zipf_cdf(n, top1, theta);
        let c2 = zipf_cdf(n, top1 + extra, theta);
        prop_assert!(c1 <= c2 + 1e-12);
        prop_assert!(c2 <= 1.0 + 1e-9);
        prop_assert!(c1 >= 0.0);
    }

    /// Zipf samples always fall inside the dataset and rank 0 is sampled at
    /// least as often as any other single rank in aggregate.
    #[test]
    fn zipf_samples_are_in_range(n in 10u64..10_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let zipf = ZipfGenerator::new(n, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut hottest = 0u64;
        for _ in 0..200 {
            let rank = zipf.sample(&mut rng);
            prop_assert!(rank < n);
            if rank == 0 {
                hottest += 1;
            }
        }
        // No strict bound on a small sample; just ensure the pmf agrees that
        // rank 0 carries the largest probability mass.
        prop_assert!(zipf.pmf(0) >= zipf.pmf(n - 1));
        let _ = hottest;
    }

    /// Key-to-shard routing is deterministic and within bounds.
    #[test]
    fn shard_routing_is_stable(keys in prop::collection::vec(any::<u64>(), 1..200), nodes in 1usize..32, threads in 1usize..32) {
        let dataset = Dataset::new(u64::MAX, 40);
        let _ = dataset;
        let shards = ShardMap::new(nodes, threads);
        for key in keys {
            let a = shards.home_core(workload::KeyId(key));
            let b = shards.home_core(workload::KeyId(key));
            prop_assert_eq!(a, b);
            prop_assert!(a.0 < nodes && a.1 < threads);
        }
    }

    /// The analytical model is monotone: more writes or more servers never
    /// increase ccKVS per-server efficiency relative to Uniform.
    #[test]
    fn analytical_model_is_monotone(nodes in 2usize..64, w1 in 0.0f64..0.2, dw in 0.0f64..0.2) {
        let p1 = analytical::ModelParams::paper_small_objects(nodes, w1);
        let p2 = analytical::ModelParams::paper_small_objects(nodes, (w1 + dw).min(1.0));
        prop_assert!(analytical::throughput_sc_mrps(&p2) <= analytical::throughput_sc_mrps(&p1) + 1e-9);
        prop_assert!(analytical::throughput_lin_mrps(&p2) <= analytical::throughput_sc_mrps(&p2) + 1e-9);
        prop_assert!((analytical::throughput_uniform_mrps(&p2) - analytical::throughput_uniform_mrps(&p1)).abs() < 1e-9);
    }
}

/// Delivers every outgoing message in a pseudo-random (seeded) order until
/// quiescence, returning the number of deliveries.
fn drain_randomly(
    engines: &mut [NodeEngine],
    mut pending: Vec<(usize, Destination, ProtocolMsg)>,
    seed: u64,
) -> usize {
    let mut deliveries = 0;
    let mut state = seed | 1;
    while !pending.is_empty() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let idx = (state as usize) % pending.len();
        let (from, dest, msg) = pending.swap_remove(idx);
        let targets: Vec<usize> = match dest {
            Destination::Broadcast => (0..engines.len()).filter(|&n| n != from).collect(),
            Destination::To(node) => vec![node.0 as usize],
        };
        for target in targets {
            let out = engines[target].deliver(msg);
            deliveries += 1;
            for (d, m) in out.outgoing {
                pending.push((target, d, m));
            }
        }
    }
    deliveries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever order messages are delivered in, concurrent writes under both
    /// protocols leave every replica converged on the same highest-timestamp
    /// value, and under Lin every write eventually completes (no deadlock).
    #[test]
    fn protocols_converge_under_random_delivery(
        writes in prop::collection::vec((0usize..4, 1u64..1_000_000), 1..6),
        seed in any::<u64>(),
        lin in any::<bool>(),
    ) {
        let model = if lin { ConsistencyModel::Lin } else { ConsistencyModel::Sc };
        let nodes = 4;
        let mut engines: Vec<NodeEngine> = (0..nodes)
            .map(|i| NodeEngine::new(model, NodeId(i as u8), nodes))
            .collect();
        for e in engines.iter_mut() {
            e.seed(1, 0);
        }
        // Issue all writes up front (they race with each other).
        let mut pending = Vec::new();
        for (node, value) in &writes {
            let out = engines[*node].client_put(1, *value);
            for (d, m) in out.outgoing {
                pending.push((*node, d, m));
            }
        }
        drain_randomly(&mut engines, pending, seed);
        // All replicas readable and identical.
        let reference = engines[0].inspect(1).expect("key tracked");
        for e in &engines {
            let (value, ts, readable) = e.inspect(1).expect("key tracked");
            prop_assert!(readable, "replica not readable after quiescence");
            prop_assert_eq!(value, reference.0);
            prop_assert_eq!(ts, reference.1);
        }
        // The winning value is one of the written values (or the seed if no
        // write happened, which cannot occur here).
        prop_assert!(writes.iter().any(|(_, v)| *v == reference.0));
    }
}
